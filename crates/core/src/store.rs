//! The filter's relational backing store: base metadata tables and the
//! materialized results of atomic rules.
//!
//! Tables (all held in an embedded [`Database`]):
//!
//! * `Statements(uri_reference, class, property, value)` — every registered
//!   atom, including the synthetic `rdf#subject` marker rows of Figure 4.
//!   This is the persistent superset of the per-batch `FilterData`.
//! * `Resources(uri_reference, class, document_uri)` — the resource registry.
//! * `RuleResults(rule_id, uri_reference)` — materialized results of atomic
//!   rules that join rules depend on (paper §3.4: "the results of atomic
//!   rules join rules depend on are materialized").

use mdv_rdf::{Document, Resource, Term, UriRef, RDF_SUBJECT};
use mdv_relstore::{ColumnDef, DataType, Database, IndexKind, StorageEngine, TableSchema, Value};

use crate::atoms::RuleId;
use crate::error::Result;

/// One decomposed document atom — a row of `FilterData` (Figure 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    pub uri: String,
    pub class: String,
    pub property: String,
    pub value: String,
}

impl Atom {
    /// Decomposes a resource into atoms, subject marker first (paper §3.2).
    pub fn from_resource(res: &Resource) -> Vec<Atom> {
        let mut out = Vec::with_capacity(res.properties().len() + 1);
        out.push(Atom {
            uri: res.uri().to_string(),
            class: res.class().to_owned(),
            property: RDF_SUBJECT.to_owned(),
            value: res.uri().to_string(),
        });
        for (prop, term) in res.properties() {
            out.push(Atom {
                uri: res.uri().to_string(),
                class: res.class().to_owned(),
                property: prop.clone(),
                value: term.lexical().to_owned(),
            });
        }
        out
    }

    /// Decomposes a whole document.
    pub fn from_document(doc: &Document) -> Vec<Atom> {
        doc.resources()
            .iter()
            .flat_map(Atom::from_resource)
            .collect()
    }
}

pub const T_STATEMENTS: &str = "Statements";
pub const T_RESOURCES: &str = "Resources";
pub const T_RULE_RESULTS: &str = "RuleResults";
pub const IDX_STMT_URI: &str = "Statements_by_uri";
pub const IDX_STMT_CP: &str = "Statements_by_class_prop";
pub const IDX_STMT_CPV: &str = "Statements_by_class_prop_value";
pub const IDX_RES_URI: &str = "Resources_by_uri";
pub const IDX_RES_CLASS: &str = "Resources_by_class";
pub const IDX_RES_DOC: &str = "Resources_by_document";
pub const IDX_RR_RULE: &str = "RuleResults_by_rule";
pub const IDX_RR_PAIR: &str = "RuleResults_by_rule_uri";

/// Creates the base tables in `db`.
pub fn create_base_tables<S: StorageEngine>(db: &mut S) -> Result<()> {
    db.create_table(TableSchema::new(
        T_STATEMENTS,
        vec![
            ColumnDef::new("uri_reference", DataType::Str),
            ColumnDef::new("class", DataType::Str),
            ColumnDef::new("property", DataType::Str),
            ColumnDef::new("value", DataType::Str),
        ],
    )?)?;
    db.create_index(
        T_STATEMENTS,
        IDX_STMT_URI,
        IndexKind::Hash,
        &["uri_reference"],
        false,
    )?;
    db.create_index(
        T_STATEMENTS,
        IDX_STMT_CP,
        IndexKind::Hash,
        &["class", "property"],
        false,
    )?;
    db.create_index(
        T_STATEMENTS,
        IDX_STMT_CPV,
        IndexKind::Hash,
        &["class", "property", "value"],
        false,
    )?;

    db.create_table(TableSchema::new(
        T_RESOURCES,
        vec![
            ColumnDef::new("uri_reference", DataType::Str),
            ColumnDef::new("class", DataType::Str),
            ColumnDef::new("document_uri", DataType::Str),
        ],
    )?)?;
    db.create_index(
        T_RESOURCES,
        IDX_RES_URI,
        IndexKind::Hash,
        &["uri_reference"],
        true,
    )?;
    db.create_index(
        T_RESOURCES,
        IDX_RES_CLASS,
        IndexKind::Hash,
        &["class"],
        false,
    )?;
    db.create_index(
        T_RESOURCES,
        IDX_RES_DOC,
        IndexKind::Hash,
        &["document_uri"],
        false,
    )?;

    db.create_table(TableSchema::new(
        T_RULE_RESULTS,
        vec![
            ColumnDef::new("rule_id", DataType::Int),
            ColumnDef::new("uri_reference", DataType::Str),
        ],
    )?)?;
    db.create_index(
        T_RULE_RESULTS,
        IDX_RR_RULE,
        IndexKind::Hash,
        &["rule_id"],
        false,
    )?;
    db.create_index(
        T_RULE_RESULTS,
        IDX_RR_PAIR,
        IndexKind::Hash,
        &["rule_id", "uri_reference"],
        true,
    )?;
    Ok(())
}

/// Typed accessors over the base tables.
pub struct BaseStore;

impl BaseStore {
    /// Inserts a resource's atoms and registry row.
    pub fn insert_resource<S: StorageEngine>(
        db: &mut S,
        res: &Resource,
        document_uri: &str,
    ) -> Result<()> {
        db.insert(
            T_RESOURCES,
            vec![
                Value::from(res.uri().as_str()),
                Value::from(res.class()),
                Value::from(document_uri),
            ],
        )?;
        for atom in Atom::from_resource(res) {
            db.insert(
                T_STATEMENTS,
                vec![
                    Value::from(atom.uri),
                    Value::from(atom.class),
                    Value::from(atom.property),
                    Value::from(atom.value),
                ],
            )?;
        }
        Ok(())
    }

    /// Removes a resource's atoms and registry row; a no-op when absent.
    pub fn remove_resource<S: StorageEngine>(db: &mut S, uri: &str) -> Result<()> {
        let key = vec![Value::from(uri)];
        let rows: Vec<_> = db
            .database()
            .table(T_STATEMENTS)?
            .index(IDX_STMT_URI)?
            .probe(&key);
        for rid in rows {
            db.delete(T_STATEMENTS, rid)?;
        }
        let rows: Vec<_> = db
            .database()
            .table(T_RESOURCES)?
            .index(IDX_RES_URI)?
            .probe(&key);
        for rid in rows {
            db.delete(T_RESOURCES, rid)?;
        }
        Ok(())
    }

    pub fn resource_exists(db: &Database, uri: &str) -> Result<bool> {
        Ok(!db
            .table(T_RESOURCES)?
            .index(IDX_RES_URI)?
            .probe(&vec![Value::from(uri)])
            .is_empty())
    }

    pub fn resource_class(db: &Database, uri: &str) -> Result<Option<String>> {
        let t = db.table(T_RESOURCES)?;
        let rows = t.index(IDX_RES_URI)?.probe(&vec![Value::from(uri)]);
        match rows.first() {
            Some(&rid) => Ok(Some(t.get(rid)?[1].to_string())),
            None => Ok(None),
        }
    }

    /// All resource URIs of a class.
    pub fn resources_of_class(db: &Database, class: &str) -> Result<Vec<String>> {
        let t = db.table(T_RESOURCES)?;
        let rows = t.index(IDX_RES_CLASS)?.probe(&vec![Value::from(class)]);
        rows.into_iter()
            .map(|rid| Ok(t.get(rid)?[0].to_string()))
            .collect()
    }

    /// Property values of one resource (`RDF_SUBJECT` yields the URI itself).
    pub fn values_of(db: &Database, uri: &str, property: &str) -> Result<Vec<String>> {
        if property == RDF_SUBJECT {
            return Ok(vec![uri.to_owned()]);
        }
        let t = db.table(T_STATEMENTS)?;
        let rows = t.index(IDX_STMT_URI)?.probe(&vec![Value::from(uri)]);
        let mut out = Vec::new();
        for rid in rows {
            let row = t.get(rid)?;
            if row[2].as_str() == Some(property) {
                out.push(row[3].to_string());
            }
        }
        Ok(out)
    }

    /// All statements of one resource as `(property, value)` pairs, subject
    /// marker excluded.
    pub fn statements_of(db: &Database, uri: &str) -> Result<Vec<(String, String)>> {
        let t = db.table(T_STATEMENTS)?;
        let rows = t.index(IDX_STMT_URI)?.probe(&vec![Value::from(uri)]);
        let mut out = Vec::new();
        for rid in rows {
            let row = t.get(rid)?;
            let prop = row[2].to_string();
            if prop != RDF_SUBJECT {
                out.push((prop, row[3].to_string()));
            }
        }
        Ok(out)
    }

    /// Reconstructs a resource from the base tables. Values that parse as
    /// URI references into registered resources become reference terms.
    pub fn resource(db: &Database, uri: &str) -> Result<Option<Resource>> {
        let Some(class) = Self::resource_class(db, uri)? else {
            return Ok(None);
        };
        let uri_ref = UriRef::from_absolute(uri);
        let mut res = Resource::new(uri_ref, class);
        for (prop, value) in Self::statements_of(db, uri)? {
            let term = if UriRef::parse(&value).is_some() && Self::resource_exists(db, &value)? {
                Term::resource(UriRef::from_absolute(value))
            } else {
                Term::literal(value)
            };
            res.add(prop, term);
        }
        Ok(Some(res))
    }

    /// Resources whose `property` value equals `value` exactly, restricted
    /// to `class` — the reverse-reference probe used by join evaluation.
    pub fn resources_with_value(
        db: &Database,
        class: &str,
        property: &str,
        value: &str,
    ) -> Result<Vec<String>> {
        let t = db.table(T_STATEMENTS)?;
        let rows = t.index(IDX_STMT_CPV)?.probe(&vec![
            Value::from(class),
            Value::from(property),
            Value::from(value),
        ]);
        rows.into_iter()
            .map(|rid| Ok(t.get(rid)?[0].to_string()))
            .collect()
    }

    /// All `(uri, value)` pairs of a `(class, property)` partition — the
    /// scan used for non-equality probes.
    pub fn partition(db: &Database, class: &str, property: &str) -> Result<Vec<(String, String)>> {
        let t = db.table(T_STATEMENTS)?;
        let rows = t
            .index(IDX_STMT_CP)?
            .probe(&vec![Value::from(class), Value::from(property)]);
        rows.into_iter()
            .map(|rid| {
                let row = t.get(rid)?;
                Ok((row[0].to_string(), row[3].to_string()))
            })
            .collect()
    }

    // ---- RuleResults (materialization) ----

    pub fn result_contains(db: &Database, rule: RuleId, uri: &str) -> Result<bool> {
        let t = db.table(T_RULE_RESULTS)?;
        Ok(!t
            .index(IDX_RR_PAIR)?
            .probe(&vec![Value::from(rule.0 as i64), Value::from(uri)])
            .is_empty())
    }

    /// Inserts a result tuple; returns false when it was already present.
    pub fn result_insert<S: StorageEngine>(db: &mut S, rule: RuleId, uri: &str) -> Result<bool> {
        if Self::result_contains(db.database(), rule, uri)? {
            return Ok(false);
        }
        db.insert(
            T_RULE_RESULTS,
            vec![Value::from(rule.0 as i64), Value::from(uri)],
        )?;
        Ok(true)
    }

    /// Removes a result tuple; returns false when it was absent.
    pub fn result_remove<S: StorageEngine>(db: &mut S, rule: RuleId, uri: &str) -> Result<bool> {
        let rows = db
            .database()
            .table(T_RULE_RESULTS)?
            .index(IDX_RR_PAIR)?
            .probe(&vec![Value::from(rule.0 as i64), Value::from(uri)]);
        let removed = !rows.is_empty();
        for rid in rows {
            db.delete(T_RULE_RESULTS, rid)?;
        }
        Ok(removed)
    }

    /// All materialized results of a rule.
    pub fn results_of(db: &Database, rule: RuleId) -> Result<Vec<String>> {
        let t = db.table(T_RULE_RESULTS)?;
        let rows = t
            .index(IDX_RR_RULE)?
            .probe(&vec![Value::from(rule.0 as i64)]);
        rows.into_iter()
            .map(|rid| Ok(t.get(rid)?[1].to_string()))
            .collect()
    }

    /// Drops every materialized result of a rule (rule retraction).
    pub fn results_drop_rule<S: StorageEngine>(db: &mut S, rule: RuleId) -> Result<usize> {
        let rows = db
            .database()
            .table(T_RULE_RESULTS)?
            .index(IDX_RR_RULE)?
            .probe(&vec![Value::from(rule.0 as i64)]);
        let n = rows.len();
        for rid in rows {
            db.delete(T_RULE_RESULTS, rid)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_resource() -> Resource {
        Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider")
            .with("serverHost", Term::literal("pirates.uni-passau.de"))
            .with("serverPort", Term::literal("5874"))
            .with(
                "serverInformation",
                Term::resource(UriRef::new("doc.rdf", "info")),
            )
    }

    fn db_with_sample() -> Database {
        let mut db = Database::new();
        create_base_tables(&mut db).unwrap();
        BaseStore::insert_resource(&mut db, &sample_resource(), "doc.rdf").unwrap();
        BaseStore::insert_resource(
            &mut db,
            &Resource::new(UriRef::new("doc.rdf", "info"), "ServerInformation")
                .with("memory", Term::literal("92"))
                .with("cpu", Term::literal("600")),
            "doc.rdf",
        )
        .unwrap();
        db
    }

    #[test]
    fn atoms_match_figure_4() {
        // Figure 4: seven rows for the Figure 1 document
        let mut doc = Document::new("doc.rdf");
        doc.add_resource(sample_resource()).unwrap();
        doc.add_resource(
            Resource::new(UriRef::new("doc.rdf", "info"), "ServerInformation")
                .with("memory", Term::literal("92"))
                .with("cpu", Term::literal("600")),
        )
        .unwrap();
        let atoms = Atom::from_document(&doc);
        assert_eq!(atoms.len(), 7);
        assert_eq!(
            atoms[0],
            Atom {
                uri: "doc.rdf#host".into(),
                class: "CycleProvider".into(),
                property: RDF_SUBJECT.into(),
                value: "doc.rdf#host".into(),
            }
        );
        assert_eq!(atoms[2].property, "serverPort");
        assert_eq!(atoms[2].value, "5874");
        assert_eq!(atoms[3].value, "doc.rdf#info");
        assert_eq!(atoms[5].property, "memory");
        assert_eq!(atoms[5].value, "92");
    }

    #[test]
    fn insert_and_lookup() {
        let db = db_with_sample();
        assert!(BaseStore::resource_exists(&db, "doc.rdf#host").unwrap());
        assert!(!BaseStore::resource_exists(&db, "doc.rdf#nope").unwrap());
        assert_eq!(
            BaseStore::resource_class(&db, "doc.rdf#info")
                .unwrap()
                .as_deref(),
            Some("ServerInformation")
        );
        assert_eq!(
            BaseStore::values_of(&db, "doc.rdf#info", "memory").unwrap(),
            vec!["92".to_owned()]
        );
        assert_eq!(
            BaseStore::values_of(&db, "doc.rdf#info", RDF_SUBJECT).unwrap(),
            vec!["doc.rdf#info".to_owned()]
        );
        let mut of_class = BaseStore::resources_of_class(&db, "CycleProvider").unwrap();
        of_class.sort();
        assert_eq!(of_class, vec!["doc.rdf#host".to_owned()]);
    }

    #[test]
    fn reverse_value_probe() {
        let db = db_with_sample();
        let holders = BaseStore::resources_with_value(
            &db,
            "CycleProvider",
            "serverInformation",
            "doc.rdf#info",
        )
        .unwrap();
        assert_eq!(holders, vec!["doc.rdf#host".to_owned()]);
        let partition = BaseStore::partition(&db, "ServerInformation", "memory").unwrap();
        assert_eq!(
            partition,
            vec![("doc.rdf#info".to_owned(), "92".to_owned())]
        );
    }

    #[test]
    fn remove_resource_cleans_everything() {
        let mut db = db_with_sample();
        BaseStore::remove_resource(&mut db, "doc.rdf#host").unwrap();
        assert!(!BaseStore::resource_exists(&db, "doc.rdf#host").unwrap());
        assert!(BaseStore::values_of(&db, "doc.rdf#host", "serverPort")
            .unwrap()
            .is_empty());
        // idempotent
        BaseStore::remove_resource(&mut db, "doc.rdf#host").unwrap();
    }

    #[test]
    fn resource_reconstruction() {
        let db = db_with_sample();
        let res = BaseStore::resource(&db, "doc.rdf#host").unwrap().unwrap();
        assert_eq!(res.class(), "CycleProvider");
        assert_eq!(res.property("serverPort").unwrap().as_int(), Some(5874));
        // the reference is reconstructed as a reference term
        assert!(res.property("serverInformation").unwrap().is_resource());
        assert!(BaseStore::resource(&db, "doc.rdf#nope").unwrap().is_none());
    }

    #[test]
    fn rule_results_set_semantics() {
        let mut db = Database::new();
        create_base_tables(&mut db).unwrap();
        let r = RuleId(7);
        assert!(BaseStore::result_insert(&mut db, r, "a#1").unwrap());
        assert!(
            !BaseStore::result_insert(&mut db, r, "a#1").unwrap(),
            "duplicate rejected"
        );
        assert!(BaseStore::result_insert(&mut db, r, "a#2").unwrap());
        assert!(BaseStore::result_contains(&db, r, "a#1").unwrap());
        let mut all = BaseStore::results_of(&db, r).unwrap();
        all.sort();
        assert_eq!(all, vec!["a#1".to_owned(), "a#2".to_owned()]);
        assert!(BaseStore::result_remove(&mut db, r, "a#1").unwrap());
        assert!(!BaseStore::result_remove(&mut db, r, "a#1").unwrap());
        assert_eq!(BaseStore::results_drop_rule(&mut db, r).unwrap(), 1);
        assert!(BaseStore::results_of(&db, r).unwrap().is_empty());
    }
}
