//! Subscription bookkeeping: ids, registered rule texts, and the
//! publications the filter emits towards subscribers.

use std::fmt;

use crate::atoms::RuleId;

/// Identifier of a subscription (one registered rule of one LMR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// A registered subscription. One surface rule may decompose into several
/// conjunctive rules (after `or`-elimination), each with its own end rule;
/// the subscription matches the union of their results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription {
    pub id: SubscriptionId,
    pub rule_text: String,
    pub end_rules: Vec<RuleId>,
}

/// What an MDP publishes to one subscriber after a registration, update, or
/// deletion (paper §2.2/§3.5). Resources are referenced by URI; the caller
/// resolves full resource contents (and the strong-reference closure) when
/// shipping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Publication {
    pub subscription: SubscriptionId,
    /// Resources that newly match the subscription.
    pub added: Vec<String>,
    /// Resources that still match but whose content changed.
    pub updated: Vec<String>,
    /// Resources that no longer match (or were deleted).
    pub removed: Vec<String>,
}

impl Publication {
    pub fn new(subscription: SubscriptionId) -> Self {
        Publication {
            subscription,
            added: Vec::new(),
            updated: Vec::new(),
            removed: Vec::new(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.updated.is_empty() && self.removed.is_empty()
    }
}

/// Groups per-end-rule match lists into per-subscription publications,
/// deduplicating and sorting for deterministic output.
pub fn assemble_publications(
    mut pubs: std::collections::BTreeMap<SubscriptionId, Publication>,
) -> Vec<Publication> {
    let mut out: Vec<Publication> = pubs
        .iter_mut()
        .map(|(_, p)| {
            let mut p = std::mem::replace(p, Publication::new(p.subscription));
            for list in [&mut p.added, &mut p.updated, &mut p.removed] {
                list.sort();
                list.dedup();
            }
            // a resource that is re-added must not simultaneously be removed
            p.removed
                .retain(|r| !p.added.contains(r) && !p.updated.contains(r));
            p
        })
        .filter(|p| !p.is_empty())
        .collect();
    out.sort_by_key(|p| p.subscription);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn publication_emptiness() {
        let mut p = Publication::new(SubscriptionId(1));
        assert!(p.is_empty());
        p.added.push("a#1".into());
        assert!(!p.is_empty());
    }

    #[test]
    fn assemble_dedups_and_sorts() {
        let mut map = BTreeMap::new();
        let mut p = Publication::new(SubscriptionId(2));
        p.added = vec!["b".into(), "a".into(), "b".into()];
        p.removed = vec!["a".into(), "z".into()];
        map.insert(SubscriptionId(2), p);
        map.insert(SubscriptionId(1), Publication::new(SubscriptionId(1)));
        let out = assemble_publications(map);
        // the empty publication is dropped
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].added, vec!["a".to_owned(), "b".to_owned()]);
        // "a" was re-added, so it is not removed
        assert_eq!(out[0].removed, vec!["z".to_owned()]);
    }
}
