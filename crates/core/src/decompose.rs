//! Decomposition of normalized subscription rules into atomic rules
//! (paper §3.3.1).
//!
//! 1. Every predicate with a constant becomes a **triggering rule**.
//! 2. Search-clause variables without such a predicate get a predicate-less
//!    triggering rule.
//! 3. A variable with several triggering rules folds them with identity
//!    joins (`a = b` — the paper's RuleE).
//! 4. Remaining join predicates are eliminated one at a time, always joining
//!    a *leaf* variable of the rule's join graph into the rest; the join
//!    rule registers the surviving variable's resources. The final join rule
//!    (or lone triggering rule) is the **end rule** producing the
//!    subscription's results.
//!
//! The output is a list of *proto rules* connected by local indices; the
//! dependency-graph merge ([`crate::depgraph`]) resolves them to global,
//! deduplicated rule ids.

use std::collections::HashMap;

use mdv_rdf::RDF_SUBJECT;
use mdv_rulelang::{Const, NormOperand, NormPred, NormalizedRule};

use crate::atoms::{JoinPred, Side, TriggerOp, TriggerPred};
use crate::error::{Error, Result};

/// An atomic rule before global id assignment; inputs are indices into the
/// owning [`ProtoRules::rules`] vector.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoRule {
    Trigger {
        class: String,
        pred: Option<TriggerPred>,
    },
    Join {
        left: usize,
        right: usize,
        left_class: String,
        right_class: String,
        register: Side,
        pred: JoinPred,
    },
}

impl ProtoRule {
    /// The class of resources this proto rule registers.
    pub fn type_class(&self) -> &str {
        match self {
            ProtoRule::Trigger { class, .. } => class,
            ProtoRule::Join {
                left_class,
                right_class,
                register,
                ..
            } => match register {
                Side::Left => left_class,
                Side::Right => right_class,
            },
        }
    }
}

/// The decomposition result: proto rules in dependency order (inputs always
/// precede the joins that use them) plus the end rule's index.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoRules {
    pub rules: Vec<ProtoRule>,
    pub end: usize,
}

impl ProtoRules {
    pub fn triggers(&self) -> impl Iterator<Item = &ProtoRule> {
        self.rules
            .iter()
            .filter(|r| matches!(r, ProtoRule::Trigger { .. }))
    }

    pub fn joins(&self) -> impl Iterator<Item = &ProtoRule> {
        self.rules
            .iter()
            .filter(|r| matches!(r, ProtoRule::Join { .. }))
    }
}

/// Decomposes a normalized (and typechecked) rule.
pub fn decompose(rule: &NormalizedRule) -> Result<ProtoRules> {
    let mut rules: Vec<ProtoRule> = Vec::new();
    // current producer (proto index) for each variable
    let mut current: HashMap<&str, usize> = HashMap::new();
    let mut join_preds: Vec<&NormPred> = Vec::new();

    // 1. constant predicates → triggering rules
    let mut trigger_lists: HashMap<&str, Vec<usize>> = HashMap::new();
    for pred in &rule.predicates {
        match (&pred.lhs, &pred.rhs) {
            (lhs, NormOperand::Const(c)) => {
                let (var, property) = operand_slot(lhs)?;
                let class = rule
                    .class_of(var)
                    .ok_or_else(|| Error::Decompose(format!("variable '{var}' is unbound")))?;
                let op = TriggerOp::classify(pred.op, c.is_numeric()).ok_or_else(|| {
                    Error::Decompose(format!(
                        "operator '{}' cannot apply to this constant (typecheck the rule first)",
                        pred.op
                    ))
                })?;
                let proto = ProtoRule::Trigger {
                    class: class.to_owned(),
                    pred: Some(TriggerPred {
                        property: property.to_owned(),
                        op,
                        value: const_lexical(c),
                    }),
                };
                rules.push(proto);
                trigger_lists.entry(var).or_default().push(rules.len() - 1);
            }
            (NormOperand::Const(_), _) => {
                return Err(Error::Decompose(
                    "constants must be on the right-hand side (normalize the rule first)".into(),
                ))
            }
            _ => join_preds.push(pred),
        }
    }

    // 2. variables without a constant predicate → predicate-less triggers
    for binding in &rule.bindings {
        if !trigger_lists.contains_key(binding.var.as_str()) {
            rules.push(ProtoRule::Trigger {
                class: binding.class.clone(),
                pred: None,
            });
            trigger_lists.insert(&binding.var, vec![rules.len() - 1]);
        }
    }

    // 3. fold multiple triggers per variable with identity joins
    for binding in &rule.bindings {
        let list = &trigger_lists[binding.var.as_str()];
        let mut cur = list[0];
        for &next in &list[1..] {
            rules.push(ProtoRule::Join {
                left: cur,
                right: next,
                left_class: binding.class.clone(),
                right_class: binding.class.clone(),
                register: Side::Left,
                pred: JoinPred::identity(),
            });
            cur = rules.len() - 1;
        }
        current.insert(&binding.var, cur);
    }

    // 4. eliminate join predicates leaf-first
    let mut remaining: Vec<&NormPred> = join_preds;
    let mut alive: Vec<&str> = rule.bindings.iter().map(|b| b.var.as_str()).collect();
    while !remaining.is_empty() {
        let degree = |v: &str| {
            remaining
                .iter()
                .filter(|p| pred_vars(p).is_ok_and(|(a, b)| a == v || b == v))
                .count()
        };
        // choose a predicate with a leaf endpoint that is not the registered
        // variable; the leaf is eliminated, the other side survives
        let mut chosen: Option<(usize, &str)> = None; // (pred index, eliminated var)
        for (i, p) in remaining.iter().enumerate() {
            let (a, b) = pred_vars(p)?;
            if a == b {
                return Err(Error::Decompose(format!(
                    "predicate '{p}' compares two properties of the same variable; \
                     this shape is not supported"
                )));
            }
            for (elim, _survivor) in [(a, b), (b, a)] {
                if elim != rule.register && degree(elim) == 1 {
                    chosen = Some((i, elim));
                    break;
                }
            }
            if chosen.is_some() {
                break;
            }
        }
        // last resort: a predicate whose both endpoints are the register var
        // and one other leaf — or a pure cycle (unsupported)
        let (pred_idx, elim_var) = match chosen {
            Some(c) => c,
            None => {
                return Err(Error::Decompose(
                    "the rule's join graph is cyclic or disconnected; only tree-shaped \
                     join graphs are supported"
                        .into(),
                ))
            }
        };
        let pred = remaining.remove(pred_idx);
        let (a, b) = pred_vars(pred)?;
        let survivor = if elim_var == a { b } else { a };
        let (a_prop, b_prop) = (operand_slot(&pred.lhs)?.1, operand_slot(&pred.rhs)?.1);
        let (left_var, left_prop, right_var, right_prop) = (a, a_prop, b, b_prop);
        let class_of = |v: &str| rule.class_of(v).expect("bindings complete").to_owned();
        rules.push(ProtoRule::Join {
            left: current[left_var],
            right: current[right_var],
            left_class: class_of(left_var),
            right_class: class_of(right_var),
            register: if survivor == left_var {
                Side::Left
            } else {
                Side::Right
            },
            pred: JoinPred {
                left_prop: left_prop.to_owned(),
                op: pred.op,
                right_prop: right_prop.to_owned(),
            },
        });
        current.insert(survivor, rules.len() - 1);
        alive.retain(|v| *v != elim_var);
    }

    if alive.len() > 1 {
        return Err(Error::Decompose(format!(
            "variables {:?} are not connected to '{}' by join predicates; \
             cartesian products are not supported",
            alive
                .iter()
                .filter(|v| **v != rule.register)
                .collect::<Vec<_>>(),
            rule.register
        )));
    }

    let end = current[rule.register.as_str()];
    Ok(ProtoRules { rules, end })
}

/// The (variable, property) slot an operand addresses; `RDF_SUBJECT` for
/// bare variables.
fn operand_slot(op: &NormOperand) -> Result<(&str, &str)> {
    match op {
        NormOperand::Subject(v) => Ok((v, RDF_SUBJECT)),
        NormOperand::Prop { var, prop, .. } => Ok((var, prop)),
        NormOperand::Const(_) => Err(Error::Decompose(
            "constant operand where a variable was expected".into(),
        )),
    }
}

/// Both variables of a join predicate.
fn pred_vars(pred: &NormPred) -> Result<(&str, &str)> {
    let (a, _) = operand_slot(&pred.lhs)?;
    let (b, _) = operand_slot(&pred.rhs)?;
    Ok((a, b))
}

/// The lexical form constants are stored in (paper §3.3.4).
fn const_lexical(c: &Const) -> String {
    c.lexical()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::RdfSchema;
    use mdv_rulelang::{normalize, parse_rule};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn decompose_text(text: &str) -> ProtoRules {
        let n = normalize(&parse_rule(text).unwrap(), &schema()).unwrap();
        decompose(&n).unwrap()
    }

    #[test]
    fn paper_331_example() {
        // §3.3.1: memory>64, cpu>500, contains, then RuleE (identity) and
        // RuleF (reference join registering c) — five atomic rules
        let d = decompose_text(
            "search CycleProvider c, ServerInformation s register c \
             where c.serverHost contains 'uni-passau.de' \
             and c.serverInformation = s \
             and s.memory > 64 and s.cpu > 500",
        );
        assert_eq!(d.triggers().count(), 3);
        assert_eq!(d.joins().count(), 2);
        assert_eq!(d.rules.len(), 5);
        // end rule registers CycleProvider resources
        assert_eq!(d.rules[d.end].type_class(), "CycleProvider");
        // the identity join folds the two ServerInformation triggers
        let identity_joins: Vec<_> = d
            .rules
            .iter()
            .filter(|r| matches!(r, ProtoRule::Join { pred, .. } if *pred == JoinPred::identity()))
            .collect();
        assert_eq!(identity_joins.len(), 1);
    }

    #[test]
    fn trigger_only_rules() {
        // OID rule: bare variable = URI → single string-equality trigger
        let d = decompose_text("search CycleProvider c register c where c = 'doc.rdf#host'");
        assert_eq!(d.rules.len(), 1);
        match &d.rules[0] {
            ProtoRule::Trigger {
                class,
                pred: Some(p),
            } => {
                assert_eq!(class, "CycleProvider");
                assert_eq!(p.property, RDF_SUBJECT);
                assert_eq!(p.op, TriggerOp::EqStr);
                assert_eq!(p.value, "doc.rdf#host");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(d.end, 0);

        // COMP rule: numeric comparison trigger
        let d = decompose_text("search CycleProvider c register c where c.serverPort > 1024");
        assert_eq!(d.rules.len(), 1);
        match &d.rules[0] {
            ProtoRule::Trigger { pred: Some(p), .. } => assert_eq!(p.op, TriggerOp::Gt),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_only_rule() {
        let d = decompose_text("search CycleProvider c register c");
        assert_eq!(d.rules.len(), 1);
        assert!(matches!(&d.rules[0], ProtoRule::Trigger { pred: None, .. }));
    }

    #[test]
    fn path_rule_produces_join() {
        // PATH benchmark rule shape
        let d = decompose_text(
            "search CycleProvider c register c where c.serverInformation.memory = 92",
        );
        // triggers: memory=92 on ServerInformation + no-pred on CycleProvider,
        // then the reference join
        assert_eq!(d.triggers().count(), 2);
        assert_eq!(d.joins().count(), 1);
        assert_eq!(d.rules[d.end].type_class(), "CycleProvider");
        match &d.rules[d.end] {
            ProtoRule::Join {
                pred,
                register,
                left_class,
                ..
            } => {
                assert_eq!(pred.op, mdv_rulelang::RuleOp::Eq);
                // the register side must be the CycleProvider input
                let reg_class = if *register == Side::Left {
                    left_class.as_str()
                } else {
                    "ServerInformation"
                };
                assert_eq!(reg_class, "CycleProvider");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn numeric_trigger_value_is_lexical() {
        let d = decompose_text("search ServerInformation s register s where s.memory > 64");
        match &d.rules[0] {
            ProtoRule::Trigger { pred: Some(p), .. } => {
                assert_eq!(p.value, "64", "constants stored as strings");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chain_of_three_variables() {
        // r - a - b path: must eliminate b then a, never the register var
        let s = RdfSchema::builder()
            .class("C", |c| c.strong_ref("r1", "D"))
            .class("D", |c| c.strong_ref("r2", "E"))
            .class("E", |c| c.int("x"))
            .build()
            .unwrap();
        let n = normalize(
            &parse_rule("search C c register c where c.r1.r2.x > 5").unwrap(),
            &s,
        )
        .unwrap();
        let d = decompose(&n).unwrap();
        // triggers: x>5 on E, no-pred on C, no-pred on D; joins: D⋈E then C⋈(D⋈E)
        assert_eq!(d.triggers().count(), 3);
        assert_eq!(d.joins().count(), 2);
        assert_eq!(d.rules[d.end].type_class(), "C");
    }

    #[test]
    fn same_variable_value_comparison_rejected() {
        let s = RdfSchema::builder()
            .class("S", |c| c.int("a").int("b"))
            .build()
            .unwrap();
        let n = normalize(
            &parse_rule("search S s register s where s.a = s.b").unwrap(),
            &s,
        )
        .unwrap();
        let err = decompose(&n).unwrap_err();
        assert!(err.to_string().contains("same variable"));
    }

    #[test]
    fn disconnected_variables_rejected() {
        let s = RdfSchema::builder()
            .class("C", |c| c.int("x"))
            .class("D", |c| c.int("y"))
            .build()
            .unwrap();
        let n = normalize(
            &parse_rule("search C c, D d register c where d.y > 1").unwrap(),
            &s,
        )
        .unwrap();
        let err = decompose(&n).unwrap_err();
        assert!(err.to_string().contains("not connected"));
    }

    #[test]
    fn dependency_order_invariant() {
        // every join's inputs precede it in the rules vector
        let d = decompose_text(
            "search CycleProvider c, ServerInformation s register c \
             where c.serverInformation = s and s.memory > 64 and s.cpu > 500 \
             and c.serverHost contains 'x'",
        );
        for (i, r) in d.rules.iter().enumerate() {
            if let ProtoRule::Join { left, right, .. } = r {
                assert!(*left < i && *right < i);
            }
        }
        assert_eq!(d.end, d.rules.len() - 1);
    }
}
