//! The filter's rule-side tables (paper §3.3.4, Figures 7 and 8):
//! `AtomicRules`, `RuleDependencies`, `RuleGroups`, and the family of
//! triggering-rule index tables `FilterRules` / `FilterRules<OP>`.
//!
//! Physical design follows the paper: the filter tables act as indexes from
//! newly registered metadata to the triggering rules it affects.
//! String-equality rules (including the `rdf#subject` rules behind OID
//! subscriptions) are probed through a hash index on
//! `(class, property, value)` — which is why OID registration cost is
//! independent of the rule-base size (Figure 11). All other operators are
//! probed through `(class, property)` and compare values after string→number
//! reconversion, which makes their cost grow with the rule-base partition
//! (Figures 12–14).

use mdv_relstore::{ColumnDef, DataType, Database, IndexKind, StorageEngine, TableSchema, Value};

use crate::atoms::{AtomicRule, AtomicRuleKind, RuleId, TriggerOp};
use crate::error::Result;

pub const T_ATOMIC_RULES: &str = "AtomicRules";
pub const T_RULE_DEPS: &str = "RuleDependencies";
pub const T_RULE_GROUPS: &str = "RuleGroups";
pub const T_FILTER_RULES: &str = "FilterRules";

/// All trigger-table operators in a fixed order (table creation, rendering).
pub const TRIGGER_OPS: [TriggerOp; 9] = [
    TriggerOp::EqStr,
    TriggerOp::NeStr,
    TriggerOp::Contains,
    TriggerOp::EqNum,
    TriggerOp::NeNum,
    TriggerOp::Lt,
    TriggerOp::Le,
    TriggerOp::Gt,
    TriggerOp::Ge,
];

/// The table name for an operator's triggering rules.
pub fn filter_table_name(op: TriggerOp) -> String {
    format!("{T_FILTER_RULES}{}", op.table_suffix())
}

fn by_rule_index(table: &str) -> String {
    format!("{table}_by_rule")
}

/// Creates all rule-side tables in `db`.
pub fn create_rule_tables<S: StorageEngine>(db: &mut S) -> Result<()> {
    db.create_table(TableSchema::new(
        T_ATOMIC_RULES,
        vec![
            ColumnDef::new("rule_id", DataType::Int),
            ColumnDef::new("rule_text", DataType::Str),
            ColumnDef::new("type_class", DataType::Str),
            ColumnDef::new("kind", DataType::Str),
            ColumnDef::new("group_id", DataType::Int).nullable(),
        ],
    )?)?;
    db.create_index(
        T_ATOMIC_RULES,
        &by_rule_index(T_ATOMIC_RULES),
        IndexKind::Hash,
        &["rule_id"],
        true,
    )?;

    db.create_table(TableSchema::new(
        T_RULE_DEPS,
        vec![
            ColumnDef::new("source_rule_id", DataType::Int),
            ColumnDef::new("target_rule_id", DataType::Int),
            // denormalized for efficiency, exactly as the paper notes
            ColumnDef::new("target_group_id", DataType::Int),
        ],
    )?)?;
    db.create_index(
        T_RULE_DEPS,
        "RuleDeps_by_source",
        IndexKind::Hash,
        &["source_rule_id"],
        false,
    )?;
    db.create_index(
        T_RULE_DEPS,
        "RuleDeps_by_target",
        IndexKind::Hash,
        &["target_rule_id"],
        false,
    )?;

    db.create_table(TableSchema::new(
        T_RULE_GROUPS,
        vec![
            ColumnDef::new("group_id", DataType::Int),
            ColumnDef::new("shape", DataType::Str),
        ],
    )?)?;
    db.create_index(
        T_RULE_GROUPS,
        "RuleGroups_by_id",
        IndexKind::Hash,
        &["group_id"],
        true,
    )?;

    // the predicate-less triggering rules: indexed by class
    db.create_table(TableSchema::new(
        T_FILTER_RULES,
        vec![
            ColumnDef::new("rule_id", DataType::Int),
            ColumnDef::new("class", DataType::Str),
        ],
    )?)?;
    db.create_index(
        T_FILTER_RULES,
        "FilterRules_by_class",
        IndexKind::Hash,
        &["class"],
        false,
    )?;
    db.create_index(
        T_FILTER_RULES,
        &by_rule_index(T_FILTER_RULES),
        IndexKind::Hash,
        &["rule_id"],
        false,
    )?;

    // one table per operator
    for op in TRIGGER_OPS {
        let name = filter_table_name(op);
        db.create_table(TableSchema::new(
            name.clone(),
            vec![
                ColumnDef::new("rule_id", DataType::Int),
                ColumnDef::new("class", DataType::Str),
                ColumnDef::new("property", DataType::Str),
                ColumnDef::new("value", DataType::Str),
            ],
        )?)?;
        if op == TriggerOp::EqStr {
            // point-probe index: flat cost in rule-base size
            db.create_index(
                &name,
                &format!("{name}_by_cpv"),
                IndexKind::Hash,
                &["class", "property", "value"],
                false,
            )?;
        } else {
            // partition index: probe returns all rules of the partition,
            // values compared after reconversion
            db.create_index(
                &name,
                &format!("{name}_by_cp"),
                IndexKind::Hash,
                &["class", "property"],
                false,
            )?;
        }
        db.create_index(
            &name,
            &by_rule_index(&name),
            IndexKind::Hash,
            &["rule_id"],
            false,
        )?;
    }
    Ok(())
}

/// Mirrors a newly created atomic rule into the rule tables.
pub fn insert_atomic<S: StorageEngine>(db: &mut S, rule: &AtomicRule, text: &str) -> Result<()> {
    db.insert(
        T_ATOMIC_RULES,
        vec![
            Value::from(rule.id.0 as i64),
            Value::from(text),
            Value::from(rule.type_class.as_str()),
            Value::from(if rule.is_trigger() { "trigger" } else { "join" }),
            rule.group.map_or(Value::Null, |g| Value::from(g.0 as i64)),
        ],
    )?;
    match &rule.kind {
        AtomicRuleKind::Trigger { class, pred: None } => {
            db.insert(
                T_FILTER_RULES,
                vec![Value::from(rule.id.0 as i64), Value::from(class.as_str())],
            )?;
        }
        AtomicRuleKind::Trigger {
            class,
            pred: Some(p),
        } => {
            db.insert(
                filter_table_name(p.op).as_str(),
                vec![
                    Value::from(rule.id.0 as i64),
                    Value::from(class.as_str()),
                    Value::from(p.property.as_str()),
                    Value::from(p.value.as_str()),
                ],
            )?;
        }
        AtomicRuleKind::Join(spec) => {
            let gid = rule.group.expect("join rules always belong to a group");
            for input in [&spec.left, &spec.right] {
                db.insert(
                    T_RULE_DEPS,
                    vec![
                        Value::from(input.rule.0 as i64),
                        Value::from(rule.id.0 as i64),
                        Value::from(gid.0 as i64),
                    ],
                )?;
            }
            // create the group row if this is its first member
            let existing = db
                .database()
                .table(T_RULE_GROUPS)?
                .index("RuleGroups_by_id")?
                .probe(&vec![Value::from(gid.0 as i64)]);
            if existing.is_empty() {
                db.insert(
                    T_RULE_GROUPS,
                    vec![
                        Value::from(gid.0 as i64),
                        Value::from(spec.group_key().to_string()),
                    ],
                )?;
            }
        }
    }
    Ok(())
}

/// Removes a retracted atomic rule from the rule tables. `group_emptied`
/// signals that the rule was the last member of its group.
pub fn remove_atomic<S: StorageEngine>(
    db: &mut S,
    rule: &AtomicRule,
    group_emptied: bool,
) -> Result<()> {
    let key = vec![Value::from(rule.id.0 as i64)];
    let rows = db
        .database()
        .table(T_ATOMIC_RULES)?
        .index(&by_rule_index(T_ATOMIC_RULES))?
        .probe(&key);
    for rid in rows {
        db.delete(T_ATOMIC_RULES, rid)?;
    }
    match &rule.kind {
        AtomicRuleKind::Trigger { pred: None, .. } => {
            let rows = db
                .database()
                .table(T_FILTER_RULES)?
                .index(&by_rule_index(T_FILTER_RULES))?
                .probe(&key);
            for rid in rows {
                db.delete(T_FILTER_RULES, rid)?;
            }
        }
        AtomicRuleKind::Trigger { pred: Some(p), .. } => {
            let name = filter_table_name(p.op);
            let rows = db
                .database()
                .table(&name)?
                .index(&by_rule_index(&name))?
                .probe(&key);
            for rid in rows {
                db.delete(&name, rid)?;
            }
        }
        AtomicRuleKind::Join(_) => {
            let rows = db
                .database()
                .table(T_RULE_DEPS)?
                .index("RuleDeps_by_target")?
                .probe(&key);
            for rid in rows {
                db.delete(T_RULE_DEPS, rid)?;
            }
            if group_emptied {
                let gid = rule.group.expect("join rules always belong to a group");
                let rows = db
                    .database()
                    .table(T_RULE_GROUPS)?
                    .index("RuleGroups_by_id")?
                    .probe(&vec![Value::from(gid.0 as i64)]);
                for rid in rows {
                    db.delete(T_RULE_GROUPS, rid)?;
                }
            }
        }
    }
    Ok(())
}

/// Triggering rules of a `(class)` probe on the predicate-less table.
pub fn class_triggers(db: &Database, class: &str) -> Result<Vec<RuleId>> {
    let t = db.table(T_FILTER_RULES)?;
    let rows = t
        .index("FilterRules_by_class")?
        .probe(&vec![Value::from(class)]);
    rows.into_iter()
        .map(|rid| {
            Ok(RuleId(
                t.get(rid)?[0].as_int().expect("rule_id is INT") as u64
            ))
        })
        .collect()
}

/// Triggering rules matching one document atom in one operator table,
/// plus the number of per-rule comparisons evaluated.
/// EqStr probes `(class, property, value)` hash-exactly (zero comparisons);
/// other operators probe `(class, property)` and evaluate the comparison
/// per candidate rule — the scan baseline the trigger index replaces
/// (DESIGN.md §10). Matches come back in rule-insertion order, which is
/// ascending rule-id order because ids are assigned monotonically.
pub fn matching_triggers(
    db: &Database,
    op: TriggerOp,
    class: &str,
    property: &str,
    doc_value: &str,
) -> Result<(Vec<RuleId>, u64)> {
    let name = filter_table_name(op);
    let t = db.table(&name)?;
    if op == TriggerOp::EqStr {
        let rows = t.index(&format!("{name}_by_cpv"))?.probe(&vec![
            Value::from(class),
            Value::from(property),
            Value::from(doc_value),
        ]);
        let hits = rows
            .into_iter()
            .map(|rid| {
                Ok(RuleId(
                    t.get(rid)?[0].as_int().expect("rule_id is INT") as u64
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        return Ok((hits, 0));
    }
    let rows = t
        .index(&format!("{name}_by_cp"))?
        .probe(&vec![Value::from(class), Value::from(property)]);
    let evals = rows.len() as u64;
    let mut out = Vec::new();
    for rid in rows {
        let row = t.get(rid)?;
        let rule_value = row[3].as_str().expect("value is STR");
        if op.matches(doc_value, rule_value) {
            out.push(RuleId(row[0].as_int().expect("rule_id is INT") as u64));
        }
    }
    Ok((out, evals))
}

/// Renders a table as fixed-width text (for the paper-walkthrough example
/// reproducing Figures 4, 7, 8, 9).
pub fn render_table(db: &Database, name: &str) -> Result<String> {
    let t = db.table(name)?;
    let headers: Vec<&str> = t
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    let mut rows: Vec<Vec<String>> = t
        .iter()
        .map(|(_, row)| row.iter().map(|v| v.to_string()).collect())
        .collect();
    rows.sort();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&format!("{name}\n"));
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push_str(&format!(
        "|{}\n",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2) + "|")
            .collect::<String>()
    ));
    for row in &rows {
        out.push_str(&fmt_row(row, &widths));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::TriggerPred;

    fn trigger(id: u64, class: &str, pred: Option<TriggerPred>) -> AtomicRule {
        AtomicRule {
            id: RuleId(id),
            type_class: class.to_owned(),
            kind: AtomicRuleKind::Trigger {
                class: class.to_owned(),
                pred,
            },
            group: None,
        }
    }

    fn db() -> Database {
        let mut db = Database::new();
        create_rule_tables(&mut db).unwrap();
        db
    }

    #[test]
    fn figure8_trigger_tables() {
        // the triggering rules of §3.3.1: memory>64, cpu>500, contains
        let mut db = db();
        let rules = [
            trigger(
                1,
                "ServerInformation",
                Some(TriggerPred {
                    property: "memory".into(),
                    op: TriggerOp::Gt,
                    value: "64".into(),
                }),
            ),
            trigger(
                2,
                "ServerInformation",
                Some(TriggerPred {
                    property: "cpu".into(),
                    op: TriggerOp::Gt,
                    value: "500".into(),
                }),
            ),
            trigger(
                3,
                "CycleProvider",
                Some(TriggerPred {
                    property: "serverHost".into(),
                    op: TriggerOp::Contains,
                    value: "uni-passau.de".into(),
                }),
            ),
        ];
        for r in &rules {
            insert_atomic(&mut db, r, "text").unwrap();
        }
        assert_eq!(db.table("FilterRulesGT").unwrap().len(), 2);
        assert_eq!(db.table("FilterRulesCON").unwrap().len(), 1);

        // matching: memory=92 matches rule 1 only
        let (hits, evals) =
            matching_triggers(&db, TriggerOp::Gt, "ServerInformation", "memory", "92").unwrap();
        assert_eq!(hits, vec![RuleId(1)]);
        assert_eq!(evals, 1, "scan evaluates every rule of the partition");
        let (hits, _) =
            matching_triggers(&db, TriggerOp::Gt, "ServerInformation", "memory", "32").unwrap();
        assert!(hits.is_empty());
        let (hits, _) = matching_triggers(
            &db,
            TriggerOp::Contains,
            "CycleProvider",
            "serverHost",
            "pirates.uni-passau.de",
        )
        .unwrap();
        assert_eq!(hits, vec![RuleId(3)]);
    }

    #[test]
    fn eqstr_point_probe() {
        let mut db = db();
        for i in 0..100 {
            insert_atomic(
                &mut db,
                &trigger(
                    i,
                    "CycleProvider",
                    Some(TriggerPred {
                        property: "rdf#subject".into(),
                        op: TriggerOp::EqStr,
                        value: format!("doc{i}.rdf#host"),
                    }),
                ),
                "text",
            )
            .unwrap();
        }
        let (hits, evals) = matching_triggers(
            &db,
            TriggerOp::EqStr,
            "CycleProvider",
            "rdf#subject",
            "doc42.rdf#host",
        )
        .unwrap();
        assert_eq!(hits, vec![RuleId(42)]);
        assert_eq!(evals, 0, "hash point probe evaluates no comparisons");
    }

    #[test]
    fn class_trigger_probe() {
        let mut db = db();
        insert_atomic(&mut db, &trigger(5, "CycleProvider", None), "text").unwrap();
        insert_atomic(&mut db, &trigger(6, "ServerInformation", None), "text").unwrap();
        assert_eq!(
            class_triggers(&db, "CycleProvider").unwrap(),
            vec![RuleId(5)]
        );
        assert!(class_triggers(&db, "Unknown").unwrap().is_empty());
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut db = db();
        let r = trigger(
            9,
            "ServerInformation",
            Some(TriggerPred {
                property: "memory".into(),
                op: TriggerOp::Gt,
                value: "64".into(),
            }),
        );
        insert_atomic(&mut db, &r, "text").unwrap();
        assert_eq!(db.table("AtomicRules").unwrap().len(), 1);
        remove_atomic(&mut db, &r, false).unwrap();
        assert_eq!(db.table("AtomicRules").unwrap().len(), 0);
        assert_eq!(db.table("FilterRulesGT").unwrap().len(), 0);
        assert!(
            matching_triggers(&db, TriggerOp::Gt, "ServerInformation", "memory", "92")
                .unwrap()
                .0
                .is_empty()
        );
    }

    #[test]
    fn render_table_formats() {
        let mut db = db();
        insert_atomic(
            &mut db,
            &trigger(
                1,
                "ServerInformation",
                Some(TriggerPred {
                    property: "memory".into(),
                    op: TriggerOp::Gt,
                    value: "64".into(),
                }),
            ),
            "search ServerInformation s register s where s.memory > 64",
        )
        .unwrap();
        let text = render_table(&db, "FilterRulesGT").unwrap();
        assert!(text.contains("ServerInformation"));
        assert!(text.contains("memory"));
        assert!(text.contains("64"));
        assert!(text.starts_with("FilterRulesGT"));
    }
}
