//! Execution traces and statistics of filter runs.

use std::fmt;

use crate::atoms::RuleId;

/// The trace of one filter execution: the contents of `ResultObjects` after
/// each iteration (paper Figure 9).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterRun {
    /// Iteration 0 holds the affected triggering rules; iteration *k* holds
    /// the join-rule results of the *k*-th dependency-graph step.
    pub iterations: Vec<Vec<(String, RuleId)>>,
    /// Matches of end rules (rules with subscriptions attached), across all
    /// iterations.
    pub end_matches: Vec<(RuleId, String)>,
}

impl FilterRun {
    /// Renders the trace in the style of Figure 9.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, iter) in self.iterations.iter().enumerate() {
            let title = if i == 0 {
                "Initial Iteration".to_owned()
            } else {
                format!("Iteration {i}")
            };
            out.push_str(&format!("{title}\n"));
            out.push_str("| uri_reference | rule_id |\n");
            let mut rows = iter.clone();
            rows.sort();
            for (uri, rule) in rows {
                out.push_str(&format!("| {uri} | {rule} |\n"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FilterRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Cumulative statistics of a filter engine, for benchmarks and ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Documents registered through `register_batch`.
    pub documents_registered: u64,
    /// Document atoms pushed through trigger matching.
    pub atoms_processed: u64,
    /// Tuples produced by trigger matching (iteration 0).
    pub trigger_matches: u64,
    /// Constant predicates evaluated during trigger matching: partition-scan
    /// rows, inverted-index candidate verifications, and subsumption
    /// frontier/cascade steps (DESIGN.md §10). String-equality hash probes
    /// and class-trigger probes count zero. Unlike the other counters this
    /// one legitimately varies with the [`crate::FilterConfig`] matching
    /// knobs — it is how the ablation benchmarks measure the work saved.
    pub trigger_evals: u64,
    /// Join-rule evaluations (member × delta resource).
    pub join_evaluations: u64,
    /// Counterpart probes answered from the rule-group probe cache.
    pub probe_cache_hits: u64,
    /// Counterpart probes actually executed against the store.
    pub probes_executed: u64,
    /// Filter iterations run (including iteration 0 of each run).
    pub iterations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_figure9_shape() {
        let run = FilterRun {
            iterations: vec![
                vec![
                    ("doc.rdf#info".into(), RuleId(1)),
                    ("doc.rdf#info".into(), RuleId(2)),
                    ("doc.rdf#host".into(), RuleId(3)),
                ],
                vec![("doc.rdf#info".into(), RuleId(4))],
                vec![("doc.rdf#host".into(), RuleId(5))],
            ],
            end_matches: vec![(RuleId(5), "doc.rdf#host".into())],
        };
        let text = run.render();
        assert!(text.contains("Initial Iteration"));
        assert!(text.contains("Iteration 2"));
        assert!(text.contains("| doc.rdf#host | 5 |"));
    }
}
