//! The global dependency graph (paper §3.3.2).
//!
//! Dependency trees of newly registered rules are merged into one directed
//! acyclic graph. Atomic rules are deduplicated by canonical text, so
//! equivalent rules and predicates shared between subscriptions are
//! evaluated only once; reference counts track sharing so that
//! unregistering a subscription retracts exactly the atomic rules nothing
//! else uses. Join rules with identical shape are assigned to rule groups
//! (paper §3.3.3).

use std::collections::HashMap;

use crate::atoms::{AtomicRule, AtomicRuleKind, GroupId, GroupKey, InputRef, JoinSpec, RuleId};
use crate::decompose::{ProtoRule, ProtoRules};

/// Outcome of merging one decomposed rule into the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOutcome {
    /// The end rule producing the subscription's results.
    pub end: RuleId,
    /// Atomic rules newly created by this merge, in dependency order.
    pub created: Vec<RuleId>,
    /// Atomic rules reused from previous registrations.
    pub reused: Vec<RuleId>,
}

/// The global dependency graph of atomic rules.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    rules: HashMap<RuleId, AtomicRule>,
    /// Canonical rule text → rule id (paper: "no duplicates").
    canon: HashMap<String, RuleId>,
    /// input rule → join rules depending on it.
    dependents: HashMap<RuleId, Vec<RuleId>>,
    /// Reference counts: one per parent join rule plus one per subscription
    /// attached to the rule as an end rule.
    refcount: HashMap<RuleId, usize>,
    groups: HashMap<GroupKey, GroupId>,
    group_members: HashMap<GroupId, Vec<RuleId>>,
    group_keys: HashMap<GroupId, GroupKey>,
    next_rule: u64,
    next_group: u64,
}

impl DepGraph {
    pub fn new() -> Self {
        DepGraph::default()
    }

    pub fn rule(&self, id: RuleId) -> Option<&AtomicRule> {
        self.rules.get(&id)
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Join rules that consume `id`'s results.
    pub fn dependents_of(&self, id: RuleId) -> &[RuleId] {
        self.dependents.get(&id).map_or(&[], |v| v.as_slice())
    }

    pub fn refcount_of(&self, id: RuleId) -> usize {
        self.refcount.get(&id).copied().unwrap_or(0)
    }

    pub fn group_members(&self, group: GroupId) -> &[RuleId] {
        self.group_members.get(&group).map_or(&[], |v| v.as_slice())
    }

    pub fn group_key(&self, group: GroupId) -> Option<&GroupKey> {
        self.group_keys.get(&group)
    }

    /// All rules, sorted by id (deterministic iteration for tests/rendering).
    pub fn rules_sorted(&self) -> Vec<&AtomicRule> {
        let mut v: Vec<&AtomicRule> = self.rules.values().collect();
        v.sort_by_key(|r| r.id);
        v
    }

    /// Number of distinct rule groups.
    pub fn group_count(&self) -> usize {
        self.group_members.len()
    }

    /// Merges a decomposed rule, deduplicating against existing atomic
    /// rules. The end rule's reference count is **not** incremented here;
    /// the caller attaches subscriptions via [`DepGraph::retain`].
    pub fn merge(&mut self, proto: &ProtoRules) -> MergeOutcome {
        let mut created = Vec::new();
        let mut reused = Vec::new();
        // local proto index → global rule id
        let mut resolved: Vec<RuleId> = Vec::with_capacity(proto.rules.len());
        for proto_rule in &proto.rules {
            let kind = match proto_rule {
                ProtoRule::Trigger { class, pred } => AtomicRuleKind::Trigger {
                    class: class.clone(),
                    pred: pred.clone(),
                },
                ProtoRule::Join {
                    left,
                    right,
                    left_class,
                    right_class,
                    register,
                    pred,
                } => {
                    let spec = JoinSpec {
                        left: InputRef {
                            rule: resolved[*left],
                            class: left_class.clone(),
                        },
                        right: InputRef {
                            rule: resolved[*right],
                            class: right_class.clone(),
                        },
                        register: *register,
                        pred: pred.clone(),
                    }
                    .canonicalize();
                    AtomicRuleKind::Join(spec)
                }
            };
            let text = AtomicRule::canonical_text(&kind);
            let id = match self.canon.get(&text) {
                Some(&id) => {
                    if !reused.contains(&id) && !created.contains(&id) {
                        reused.push(id);
                    }
                    id
                }
                None => {
                    let id = self.insert_rule(kind, text);
                    created.push(id);
                    id
                }
            };
            resolved.push(id);
        }
        MergeOutcome {
            end: resolved[proto.end],
            created,
            reused,
        }
    }

    fn insert_rule(&mut self, kind: AtomicRuleKind, text: String) -> RuleId {
        let id = RuleId(self.next_rule);
        self.next_rule += 1;
        let (type_class, group) = match &kind {
            AtomicRuleKind::Trigger { class, .. } => (class.clone(), None),
            AtomicRuleKind::Join(spec) => {
                // a new parent reference for each input
                for input in [&spec.left, &spec.right] {
                    *self.refcount.entry(input.rule).or_insert(0) += 1;
                    self.dependents.entry(input.rule).or_default().push(id);
                }
                let key = spec.group_key();
                let gid = match self.groups.get(&key) {
                    Some(&gid) => gid,
                    None => {
                        let gid = GroupId(self.next_group);
                        self.next_group += 1;
                        self.groups.insert(key.clone(), gid);
                        self.group_keys.insert(gid, key.clone());
                        gid
                    }
                };
                self.group_members.entry(gid).or_default().push(id);
                (spec.register_input().class.clone(), Some(gid))
            }
        };
        self.canon.insert(text, id);
        self.refcount.entry(id).or_insert(0);
        self.rules.insert(
            id,
            AtomicRule {
                id,
                kind,
                type_class,
                group,
            },
        );
        id
    }

    /// Attaches one external reference (a subscription) to a rule.
    pub fn retain(&mut self, id: RuleId) {
        *self.refcount.entry(id).or_insert(0) += 1;
    }

    /// Releases one external reference. Rules whose reference count drops to
    /// zero are removed, cascading releases to their inputs. Returns the
    /// removed rules (most-derived first).
    pub fn release(&mut self, id: RuleId) -> Vec<AtomicRule> {
        let mut removed = Vec::new();
        self.release_inner(id, &mut removed);
        removed
    }

    fn release_inner(&mut self, id: RuleId, removed: &mut Vec<AtomicRule>) {
        let rc = self.refcount.get_mut(&id).expect("releasing unknown rule");
        assert!(*rc > 0, "refcount underflow for rule {id}");
        *rc -= 1;
        if *rc > 0 {
            return;
        }
        // remove the rule entirely
        self.refcount.remove(&id);
        let rule = self.rules.remove(&id).expect("rule exists");
        self.canon.remove(&AtomicRule::canonical_text(&rule.kind));
        self.dependents.remove(&id);
        if let AtomicRuleKind::Join(spec) = &rule.kind {
            if let Some(gid) = rule.group {
                let members = self.group_members.get_mut(&gid).expect("group exists");
                members.retain(|m| *m != id);
                if members.is_empty() {
                    self.group_members.remove(&gid);
                    let key = self.group_keys.remove(&gid).expect("group key exists");
                    self.groups.remove(&key);
                }
            }
            let inputs = [spec.left.rule, spec.right.rule];
            for input in inputs {
                if let Some(deps) = self.dependents.get_mut(&input) {
                    // remove one occurrence (an identity self-join references
                    // the same input twice and holds two refs)
                    if let Some(pos) = deps.iter().position(|d| *d == id) {
                        deps.remove(pos);
                    }
                }
            }
            removed.push(rule);
            for input in inputs {
                self.release_inner(input, removed);
            }
        } else {
            removed.push(rule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use mdv_rdf::RdfSchema;
    use mdv_rulelang::{normalize, parse_rule};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn proto(text: &str) -> ProtoRules {
        decompose(&normalize(&parse_rule(text).unwrap(), &schema()).unwrap()).unwrap()
    }

    #[test]
    fn merge_assigns_ids_in_dependency_order() {
        let mut g = DepGraph::new();
        let out = g.merge(&proto(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        ));
        assert_eq!(out.created.len(), 3); // 2 triggers + 1 join
        assert!(out.reused.is_empty());
        assert_eq!(g.len(), 3);
        let end = g.rule(out.end).unwrap();
        assert!(end.is_join());
        assert_eq!(end.type_class, "CycleProvider");
    }

    #[test]
    fn identical_rules_fully_dedupe() {
        let mut g = DepGraph::new();
        let text = "search CycleProvider c register c where c.serverInformation.memory > 64";
        let a = g.merge(&proto(text));
        let b = g.merge(&proto(text));
        assert_eq!(a.end, b.end);
        assert!(b.created.is_empty());
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn alpha_equivalent_rules_dedupe() {
        // variable names need not be equal (paper footnote 3)
        let mut g = DepGraph::new();
        let a = g.merge(&proto(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        ));
        let b = g.merge(&proto(
            "search CycleProvider xyz register xyz where xyz.serverInformation.memory > 64",
        ));
        assert_eq!(a.end, b.end);
        assert!(b.created.is_empty());
    }

    #[test]
    fn paper_333_shared_trigger_and_rule_groups() {
        // §3.3.3: the two rules share RuleA (the CycleProvider trigger) and
        // their join rules fall into one rule group
        let mut g = DepGraph::new();
        let a = g.merge(&proto(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        ));
        let b = g.merge(&proto(
            "search CycleProvider c register c where c.serverInformation.cpu > 500",
        ));
        // the predicate-less CycleProvider trigger is shared
        assert_eq!(b.reused.len(), 1);
        assert_eq!(b.created.len(), 2);
        // five distinct atomic rules total (RuleA, B1, C1, B2, C2)
        assert_eq!(g.len(), 5);
        // both end rules are join rules in the same group
        let (ea, eb) = (g.rule(a.end).unwrap(), g.rule(b.end).unwrap());
        assert_ne!(a.end, b.end);
        assert_eq!(ea.group, eb.group);
        let gid = ea.group.unwrap();
        assert_eq!(g.group_members(gid).len(), 2);
        assert_eq!(g.group_count(), 1);
    }

    #[test]
    fn dependents_track_join_inputs() {
        let mut g = DepGraph::new();
        let out = g.merge(&proto(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        ));
        let end = g.rule(out.end).unwrap();
        let AtomicRuleKind::Join(spec) = &end.kind else {
            panic!("end is a join")
        };
        assert_eq!(g.dependents_of(spec.left.rule), &[out.end]);
        assert_eq!(g.dependents_of(spec.right.rule), &[out.end]);
        assert!(g.dependents_of(out.end).is_empty());
    }

    #[test]
    fn release_cascades_and_respects_sharing() {
        let mut g = DepGraph::new();
        let a = g.merge(&proto(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        ));
        g.retain(a.end);
        let b = g.merge(&proto(
            "search CycleProvider c register c where c.serverInformation.cpu > 500",
        ));
        g.retain(b.end);
        assert_eq!(g.len(), 5);

        // releasing b removes its join + cpu trigger but keeps the shared
        // CycleProvider trigger (still referenced by a's join)
        let removed = g.release(b.end);
        assert_eq!(removed.len(), 2);
        assert_eq!(g.len(), 3);
        assert_eq!(g.group_count(), 1);

        // releasing a empties the graph
        let removed = g.release(a.end);
        assert_eq!(removed.len(), 3);
        assert!(g.is_empty());
        assert_eq!(g.group_count(), 0);
    }

    #[test]
    fn double_subscription_to_same_rule() {
        let mut g = DepGraph::new();
        let text = "search CycleProvider c register c where c.serverPort > 1024";
        let a = g.merge(&proto(text));
        g.retain(a.end);
        let b = g.merge(&proto(text));
        g.retain(b.end);
        assert_eq!(a.end, b.end);
        assert_eq!(g.refcount_of(a.end), 2);
        assert!(g.release(a.end).is_empty(), "still referenced");
        assert_eq!(g.release(b.end).len(), 1);
        assert!(g.is_empty());
    }

    #[test]
    fn group_key_rendering() {
        let mut g = DepGraph::new();
        let out = g.merge(&proto(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        ));
        let gid = g.rule(out.end).unwrap().group.unwrap();
        let key = g.group_key(gid).unwrap();
        let text = key.to_string();
        assert!(
            text.contains("CycleProvider"),
            "group shape mentions classes: {text}"
        );
    }
}
