//! Atomic rules (paper §3.3): the units subscription rules decompose into.
//!
//! * A **triggering rule** refers to a single class and carries no predicate
//!   or one comparison with a constant.
//! * A **join rule** joins the results of two other atomic rules with a
//!   single join predicate and registers the resources of one input side.
//!
//! Atomic rules are deduplicated by canonical text (paper §3.3.2 — "no rules
//! having the same rule text but different rule_ids"), so shared predicates
//! across subscriptions are evaluated once.

use std::fmt;

use mdv_rdf::RDF_SUBJECT;
use mdv_rulelang::RuleOp;

/// Identifier of an atomic rule, unique within one filter engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u64);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a rule group (paper §3.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u64);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The comparison of a triggering rule. The operator fixes both the
/// comparison semantics and the physical `FilterRules*` table the rule is
/// stored in (paper §3.3.4): string-equality rules live in a table indexed
/// on `(class, property, value)` (point probes); all others live in tables
/// indexed on `(class, property)` and compare values after reconversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerOp {
    /// String equality — probed via full-key hash index.
    EqStr,
    /// String inequality.
    NeStr,
    /// Substring containment (`contains`).
    Contains,
    /// Numeric comparisons; constants stored as strings, reconverted when
    /// joining (paper §3.3.4).
    EqNum,
    NeNum,
    Lt,
    Le,
    Gt,
    Ge,
}

impl TriggerOp {
    /// The suffix of the `FilterRules*` table this operator's rules live in.
    pub fn table_suffix(self) -> &'static str {
        match self {
            TriggerOp::EqStr => "EQ",
            TriggerOp::NeStr => "NE",
            TriggerOp::Contains => "CON",
            TriggerOp::EqNum => "EQN",
            TriggerOp::NeNum => "NEN",
            TriggerOp::Lt => "LT",
            TriggerOp::Le => "LE",
            TriggerOp::Gt => "GT",
            TriggerOp::Ge => "GE",
        }
    }

    /// Classifies a rule-language operator and constant into a trigger
    /// operator. `numeric` is whether the constant is a numeric literal.
    pub fn classify(op: RuleOp, numeric: bool) -> Option<TriggerOp> {
        match (op, numeric) {
            (RuleOp::Eq, false) => Some(TriggerOp::EqStr),
            (RuleOp::Ne, false) => Some(TriggerOp::NeStr),
            (RuleOp::Eq, true) => Some(TriggerOp::EqNum),
            (RuleOp::Ne, true) => Some(TriggerOp::NeNum),
            (RuleOp::Lt, true) => Some(TriggerOp::Lt),
            (RuleOp::Le, true) => Some(TriggerOp::Le),
            (RuleOp::Gt, true) => Some(TriggerOp::Gt),
            (RuleOp::Ge, true) => Some(TriggerOp::Ge),
            (RuleOp::Contains, false) => Some(TriggerOp::Contains),
            // the typechecker rejects these earlier; classification is None
            (RuleOp::Contains, true)
            | (RuleOp::Lt | RuleOp::Le | RuleOp::Gt | RuleOp::Ge, false) => None,
        }
    }

    /// Evaluates `doc_value op rule_value` with the operator's semantics.
    pub fn matches(self, doc_value: &str, rule_value: &str) -> bool {
        match self {
            TriggerOp::EqStr => doc_value == rule_value,
            TriggerOp::NeStr => doc_value != rule_value,
            TriggerOp::Contains => doc_value.contains(rule_value),
            TriggerOp::EqNum
            | TriggerOp::NeNum
            | TriggerOp::Lt
            | TriggerOp::Le
            | TriggerOp::Gt
            | TriggerOp::Ge => {
                // reconversion: both sides must parse as numbers
                let (Ok(d), Ok(r)) = (
                    doc_value.trim().parse::<f64>(),
                    rule_value.trim().parse::<f64>(),
                ) else {
                    return false;
                };
                match self {
                    TriggerOp::EqNum => d == r,
                    TriggerOp::NeNum => d != r,
                    TriggerOp::Lt => d < r,
                    TriggerOp::Le => d <= r,
                    TriggerOp::Gt => d > r,
                    TriggerOp::Ge => d >= r,
                    _ => unreachable!("outer match covers string operators"),
                }
            }
        }
    }
}

impl fmt::Display for TriggerOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TriggerOp::EqStr | TriggerOp::EqNum => "=",
            TriggerOp::NeStr | TriggerOp::NeNum => "!=",
            TriggerOp::Contains => "contains",
            TriggerOp::Lt => "<",
            TriggerOp::Le => "<=",
            TriggerOp::Gt => ">",
            TriggerOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// The constant predicate of a triggering rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriggerPred {
    pub property: String,
    pub op: TriggerOp,
    /// Constant in lexical (string) form — the paper stores all constants as
    /// strings and reconverts numeric ones when joining (§3.3.4).
    pub value: String,
}

impl fmt::Display for TriggerPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v.{} {} '{}'", self.property, self.op, self.value)
    }
}

/// Which input side of a join rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    Left,
    Right,
}

impl Side {
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// One input of a join rule: the atomic rule producing the extension and the
/// class of its resources.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InputRef {
    pub rule: RuleId,
    pub class: String,
}

/// The join predicate `left.left_prop op right.right_prop`, where either
/// property may be [`RDF_SUBJECT`] to denote the resource's own URI
/// reference. This uniformly encodes the three paper shapes:
///
/// * intersection `a = b` — `subject = subject`,
/// * reference join `c.serverInformation = a` — `prop = subject`,
/// * value join `a.memory = b.cpu` — `prop = prop`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinPred {
    pub left_prop: String,
    pub op: RuleOp,
    pub right_prop: String,
}

impl JoinPred {
    pub fn identity() -> Self {
        JoinPred {
            left_prop: RDF_SUBJECT.into(),
            op: RuleOp::Eq,
            right_prop: RDF_SUBJECT.into(),
        }
    }

    /// Evaluates the predicate on two property values (lexical forms).
    /// Equality and inequality compare the *exact lexical form* — reference
    /// joins are URI-string equality, and equality probes run through the
    /// `(class, property, value)` hash index, so the evaluated semantics
    /// must agree with the indexed ones. Ordering operators reconvert both
    /// sides to numbers (paper §3.3.4).
    pub fn value_matches(&self, left: &str, right: &str) -> bool {
        let numeric = || -> Option<(f64, f64)> {
            Some((left.trim().parse().ok()?, right.trim().parse().ok()?))
        };
        match self.op {
            RuleOp::Eq => left == right,
            RuleOp::Ne => left != right,
            RuleOp::Contains => left.contains(right),
            RuleOp::Lt | RuleOp::Le | RuleOp::Gt | RuleOp::Ge => match numeric() {
                Some((l, r)) => match self.op {
                    RuleOp::Lt => l < r,
                    RuleOp::Le => l <= r,
                    RuleOp::Gt => l > r,
                    RuleOp::Ge => l >= r,
                    _ => unreachable!("outer match restricts to ordering operators"),
                },
                None => false,
            },
        }
    }
}

impl fmt::Display for JoinPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |p: &str| {
            if p == RDF_SUBJECT {
                "<self>".to_owned()
            } else {
                format!(".{p}")
            }
        };
        write!(
            f,
            "a{} {} b{}",
            side(&self.left_prop),
            self.op,
            side(&self.right_prop)
        )
    }
}

/// A join rule: inputs, predicate, and which side it registers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinSpec {
    pub left: InputRef,
    pub right: InputRef,
    pub register: Side,
    pub pred: JoinPred,
}

impl JoinSpec {
    /// Canonicalizes operand order so that equal joins written in either
    /// orientation deduplicate: the side with the smaller
    /// `(class, property, rule)` key becomes the left input, mirroring the
    /// operator. Ordering by class/property first keeps every member of a
    /// rule group in the *same* orientation (they differ only in input rule
    /// ids), which lets the group evaluator share counterpart probes.
    /// `contains` cannot be mirrored and keeps its orientation.
    pub fn canonicalize(mut self) -> JoinSpec {
        let Some(mirrored) = self.pred.op.mirrored() else {
            return self;
        };
        let left_key = (
            self.left.class.clone(),
            self.pred.left_prop.clone(),
            self.left.rule,
        );
        let right_key = (
            self.right.class.clone(),
            self.pred.right_prop.clone(),
            self.right.rule,
        );
        if right_key < left_key {
            std::mem::swap(&mut self.left, &mut self.right);
            std::mem::swap(&mut self.pred.left_prop, &mut self.pred.right_prop);
            self.pred.op = mirrored;
            self.register = self.register.other();
        }
        self
    }

    pub fn input(&self, side: Side) -> &InputRef {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// The input whose resources this join registers.
    pub fn register_input(&self) -> &InputRef {
        self.input(self.register)
    }

    /// The shape shared by all members of a rule group (paper §3.3.3): equal
    /// where part with variables bound to the same classes — input *rules*
    /// excluded. The key is orientation-canonical (ordered by class and
    /// property, not by input rule ids), so joins that
    /// [`JoinSpec::canonicalize`] oriented differently still share a group.
    pub fn group_key(&self) -> GroupKey {
        let mut key = GroupKey {
            left_class: self.left.class.clone(),
            right_class: self.right.class.clone(),
            register: self.register,
            pred: self.pred.clone(),
        };
        if let Some(mirrored) = key.pred.op.mirrored() {
            let left_k = (&key.left_class, &key.pred.left_prop);
            let right_k = (&key.right_class, &key.pred.right_prop);
            if right_k < left_k {
                std::mem::swap(&mut key.left_class, &mut key.right_class);
                std::mem::swap(&mut key.pred.left_prop, &mut key.pred.right_prop);
                key.pred.op = mirrored;
                key.register = key.register.other();
            }
        }
        key
    }
}

/// The grouping key of a join rule (see [`JoinSpec::group_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupKey {
    pub left_class: String,
    pub right_class: String,
    pub register: Side,
    pub pred: JoinPred,
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "search {} a, {} b register {} where {}",
            self.left_class,
            self.right_class,
            if self.register == Side::Left {
                "a"
            } else {
                "b"
            },
            self.pred
        )
    }
}

/// The body of an atomic rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AtomicRuleKind {
    Trigger {
        class: String,
        pred: Option<TriggerPred>,
    },
    Join(JoinSpec),
}

/// A registered atomic rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicRule {
    pub id: RuleId,
    pub kind: AtomicRuleKind,
    /// The class of the resources this rule registers (the rule's *type*,
    /// paper §3.3.1).
    pub type_class: String,
    /// The group a join rule belongs to; `None` for triggering rules.
    pub group: Option<GroupId>,
}

impl AtomicRule {
    /// Canonical rule text used for deduplication. Join-rule texts embed the
    /// ids of their (already deduplicated) inputs, so equality is recursive.
    pub fn canonical_text(kind: &AtomicRuleKind) -> String {
        match kind {
            AtomicRuleKind::Trigger { class, pred: None } => {
                format!("search {class} v register v")
            }
            AtomicRuleKind::Trigger {
                class,
                pred: Some(p),
            } => {
                format!("search {class} v register v where {p}")
            }
            AtomicRuleKind::Join(j) => format!(
                "search ({}:{}) a, ({}:{}) b register {} where {}",
                j.left.rule,
                j.left.class,
                j.right.rule,
                j.right.class,
                if j.register == Side::Left { "a" } else { "b" },
                j.pred
            ),
        }
    }

    pub fn is_trigger(&self) -> bool {
        matches!(self.kind, AtomicRuleKind::Trigger { .. })
    }

    pub fn is_join(&self) -> bool {
        matches!(self.kind, AtomicRuleKind::Join(_))
    }
}

impl fmt::Display for AtomicRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}",
            self.id,
            AtomicRule::canonical_text(&self.kind)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_op_classification() {
        assert_eq!(
            TriggerOp::classify(RuleOp::Eq, false),
            Some(TriggerOp::EqStr)
        );
        assert_eq!(
            TriggerOp::classify(RuleOp::Eq, true),
            Some(TriggerOp::EqNum)
        );
        assert_eq!(TriggerOp::classify(RuleOp::Gt, true), Some(TriggerOp::Gt));
        assert_eq!(TriggerOp::classify(RuleOp::Gt, false), None);
        assert_eq!(
            TriggerOp::classify(RuleOp::Contains, false),
            Some(TriggerOp::Contains)
        );
        assert_eq!(TriggerOp::classify(RuleOp::Contains, true), None);
    }

    #[test]
    fn trigger_op_matching() {
        assert!(TriggerOp::Gt.matches("92", "64"));
        assert!(!TriggerOp::Gt.matches("32", "64"));
        assert!(
            TriggerOp::Gt.matches("92.5", "64"),
            "reconversion handles floats"
        );
        assert!(!TriggerOp::Gt.matches("not-a-number", "64"));
        assert!(
            TriggerOp::EqNum.matches("064", "64"),
            "numeric equality ignores lexical form"
        );
        assert!(TriggerOp::EqStr.matches("doc.rdf#host", "doc.rdf#host"));
        assert!(
            !TriggerOp::EqStr.matches("064", "64"),
            "string equality is exact"
        );
        assert!(TriggerOp::Contains.matches("pirates.uni-passau.de", "uni-passau.de"));
        assert!(TriggerOp::NeNum.matches("1", "2"));
        assert!(TriggerOp::Le.matches("64", "64"));
        assert!(TriggerOp::Ge.matches("64", "64"));
        assert!(TriggerOp::Lt.matches("63", "64"));
    }

    #[test]
    fn join_pred_value_matching() {
        let eq = JoinPred {
            left_prop: "p".into(),
            op: RuleOp::Eq,
            right_prop: "q".into(),
        };
        assert!(eq.value_matches("doc.rdf#info", "doc.rdf#info"));
        assert!(
            !eq.value_matches("64", "64.0"),
            "equality is exact-lexical (indexable)"
        );
        assert!(!eq.value_matches("doc.rdf#a", "doc.rdf#b"));
        let lt = JoinPred {
            left_prop: "p".into(),
            op: RuleOp::Lt,
            right_prop: "q".into(),
        };
        assert!(lt.value_matches("3", "4"));
        assert!(!lt.value_matches("uri", "4"), "ordering requires numbers");
        let con = JoinPred {
            left_prop: "p".into(),
            op: RuleOp::Contains,
            right_prop: "q".into(),
        };
        assert!(con.value_matches("abcdef", "cde"));
    }

    #[test]
    fn join_canonicalization_dedupes_orientations() {
        let a = JoinSpec {
            left: InputRef {
                rule: RuleId(5),
                class: "C".into(),
            },
            right: InputRef {
                rule: RuleId(3),
                class: "S".into(),
            },
            register: Side::Left,
            pred: JoinPred {
                left_prop: "serverInformation".into(),
                op: RuleOp::Eq,
                right_prop: RDF_SUBJECT.into(),
            },
        }
        .canonicalize();
        let b = JoinSpec {
            left: InputRef {
                rule: RuleId(3),
                class: "S".into(),
            },
            right: InputRef {
                rule: RuleId(5),
                class: "C".into(),
            },
            register: Side::Right,
            pred: JoinPred {
                left_prop: RDF_SUBJECT.into(),
                op: RuleOp::Eq,
                right_prop: "serverInformation".into(),
            },
        }
        .canonicalize();
        assert_eq!(a, b);
        assert_eq!(
            AtomicRule::canonical_text(&AtomicRuleKind::Join(a)),
            AtomicRule::canonical_text(&AtomicRuleKind::Join(b))
        );
    }

    #[test]
    fn contains_join_keeps_orientation() {
        let j = JoinSpec {
            left: InputRef {
                rule: RuleId(9),
                class: "C".into(),
            },
            right: InputRef {
                rule: RuleId(1),
                class: "D".into(),
            },
            register: Side::Left,
            pred: JoinPred {
                left_prop: "text".into(),
                op: RuleOp::Contains,
                right_prop: "pat".into(),
            },
        };
        let c = j.clone().canonicalize();
        assert_eq!(j, c);
    }

    #[test]
    fn group_key_ignores_input_rules() {
        // paper §3.3.3: RuleC1 and RuleC2 differ only in inputs
        let mk = |right_rule: u64| JoinSpec {
            left: InputRef {
                rule: RuleId(0),
                class: "CycleProvider".into(),
            },
            right: InputRef {
                rule: RuleId(right_rule),
                class: "ServerInformation".into(),
            },
            register: Side::Left,
            pred: JoinPred {
                left_prop: "serverInformation".into(),
                op: RuleOp::Eq,
                right_prop: RDF_SUBJECT.into(),
            },
        };
        assert_eq!(mk(1).group_key(), mk(2).group_key());
        assert_ne!(
            AtomicRule::canonical_text(&AtomicRuleKind::Join(mk(1))),
            AtomicRule::canonical_text(&AtomicRuleKind::Join(mk(2)))
        );
    }

    #[test]
    fn canonical_text_distinguishes_triggers() {
        let t1 = AtomicRuleKind::Trigger {
            class: "C".into(),
            pred: None,
        };
        let t2 = AtomicRuleKind::Trigger {
            class: "C".into(),
            pred: Some(TriggerPred {
                property: "p".into(),
                op: TriggerOp::Gt,
                value: "64".into(),
            }),
        };
        assert_ne!(
            AtomicRule::canonical_text(&t1),
            AtomicRule::canonical_text(&t2)
        );
    }
}
