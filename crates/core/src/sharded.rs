//! Sharded filter execution (DESIGN.md §8).
//!
//! A [`ShardedFilterEngine`] partitions one MDP's filter work across N
//! independent [`FilterEngine`] shards:
//!
//! * **Rules** are assigned to shards by FNV-1a hash of their full rule
//!   text. Identical rules (and, within a shard, rules of the same shape)
//!   still deduplicate into the shard's dependency graph and rule groups,
//!   so the paper's probe sharing (§3.3.3) is preserved *per shard*; a
//!   group whose members are spread over several shards re-executes its
//!   counterpart probes once per shard — the documented cost of scaling.
//! * **Documents** are replicated into every shard's base tables (each
//!   shard sees the full metadata). The hash of the subject URI picks the
//!   *owning* shard for point reads ([`ShardedFilterEngine::document`],
//!   [`ShardedFilterEngine::resource`]); replication is what makes every
//!   shard's join probes complete without any cross-shard traffic.
//!
//! The read-heavy phases — validation, atomization, trigger matching,
//! counterpart probes, join-candidate evaluation — run shard-parallel with
//! zero cross-shard locking (`std::thread::scope`, one worker per shard,
//! multiplied by [`FilterConfig::threads`] inside each shard). The merge
//! phase is sequential: shard-local subscription ids are remapped to the
//! wrapper's global ids and the per-subscription lists pass through
//! [`assemble_publications`], whose sort/dedup canonicalization makes the
//! published output byte-identical for every shard count.
//!
//! `shards = 1` (the default) routes everything through a single inner
//! engine whose subscription-id sequence advances in lockstep with the
//! wrapper's, so publications, traces, and stats are bit-for-bit those of
//! a bare [`FilterEngine`].

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mdv_rdf::{Document, RdfSchema, Resource};
use mdv_relstore::{Database, StorageEngine};

use crate::atoms::{AtomicRule, AtomicRuleKind, RuleId, Side};
use crate::depgraph::DepGraph;
use crate::engine::{FilterConfig, FilterEngine};
use crate::error::{Error, Result};
use crate::registry::{assemble_publications, Publication, Subscription, SubscriptionId};
use crate::trace::{FilterRun, FilterStats};

/// FNV-1a (64-bit); the stable shard-routing hash for rule texts and
/// subject URIs.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A shard-invariant identity for a traced rule. [`AtomicRule::canonical_text`]
/// embeds the shard-local ids of a join's input rules, so it cannot be
/// compared across shard counts; this expands each input reference into the
/// input's own identity, recursively, and re-canonicalizes the operand
/// orientation with the identities (not the local ids) as tie-breaker.
fn rule_identity(graph: &DepGraph, id: RuleId, memo: &mut HashMap<RuleId, String>) -> String {
    if let Some(text) = memo.get(&id) {
        return text.clone();
    }
    let rule = graph.rule(id).expect("traced rule exists in its shard");
    let text = match &rule.kind {
        AtomicRuleKind::Trigger { .. } => AtomicRule::canonical_text(&rule.kind),
        AtomicRuleKind::Join(spec) => {
            let mut j = spec.clone();
            let mut left_id = rule_identity(graph, j.left.rule, memo);
            let mut right_id = rule_identity(graph, j.right.rule, memo);
            if let Some(mirrored) = j.pred.op.mirrored() {
                let left_key = (
                    j.left.class.clone(),
                    j.pred.left_prop.clone(),
                    left_id.clone(),
                );
                let right_key = (
                    j.right.class.clone(),
                    j.pred.right_prop.clone(),
                    right_id.clone(),
                );
                if right_key < left_key {
                    std::mem::swap(&mut j.left, &mut j.right);
                    std::mem::swap(&mut j.pred.left_prop, &mut j.pred.right_prop);
                    j.pred.op = mirrored;
                    j.register = j.register.other();
                    std::mem::swap(&mut left_id, &mut right_id);
                }
            }
            format!(
                "search [{left_id}:{}] a, [{right_id}:{}] b register {} where {}",
                j.left.class,
                j.right.class,
                if j.register == Side::Left { "a" } else { "b" },
                j.pred
            )
        }
    };
    memo.insert(id, text.clone());
    text
}

/// N independent filter shards behind the one-engine API (DESIGN.md §8).
#[derive(Debug, Clone)]
pub struct ShardedFilterEngine<S: StorageEngine = Database> {
    shards: Vec<FilterEngine<S>>,
    /// Global subscription registry (global ids; `end_rules` are ids in the
    /// owning shard's dependency graph).
    subs: BTreeMap<SubscriptionId, Subscription>,
    /// global id → (owning shard, shard-local id).
    routes: BTreeMap<SubscriptionId, (usize, SubscriptionId)>,
    /// Per shard: shard-local id → global id.
    rev: Vec<HashMap<SubscriptionId, SubscriptionId>>,
    next_sub: u64,
    /// Merged view of the shard stats (see [`ShardedFilterEngine::stats`]).
    stats: FilterStats,
    config: FilterConfig,
}

impl ShardedFilterEngine<Database> {
    pub fn new(schema: RdfSchema) -> Self {
        Self::with_config(schema, FilterConfig::default())
    }

    /// Builds `config.shards` in-memory shards.
    pub fn with_config(schema: RdfSchema, config: FilterConfig) -> Self {
        let n = config.shards.max(1);
        let stores = (0..n).map(|_| Database::new()).collect();
        Self::with_storages(stores, schema, config)
    }
}

impl ShardedFilterEngine<Database> {
    /// Explains a rule without registering it, against the rule's owning
    /// shard (so sharing with already registered rules is reported the way
    /// the rule would actually experience it).
    pub fn explain_rule(&self, rule_text: &str) -> Result<String> {
        self.shards[self.rule_shard(rule_text)].explain_rule(rule_text)
    }
}

impl<S: StorageEngine + Send + Sync> ShardedFilterEngine<S> {
    /// Builds one shard per storage backend (the shard count is
    /// `stores.len()`, overriding `config.shards`). The system tier uses
    /// this to give every shard its own durable WAL.
    pub fn with_storages(stores: Vec<S>, schema: RdfSchema, config: FilterConfig) -> Self {
        Self::try_with_storages(stores, schema, config)
            .expect("storage backends accept the filter DDL")
    }

    /// Fallible [`ShardedFilterEngine::with_storages`]: a backend that
    /// fails its initial DDL commit (a disk fault during WAL append or
    /// sync) surfaces `Error::Store` instead of panicking.
    pub fn try_with_storages(
        stores: Vec<S>,
        schema: RdfSchema,
        mut config: FilterConfig,
    ) -> Result<Self> {
        assert!(
            !stores.is_empty(),
            "a sharded engine needs at least one store"
        );
        config.shards = stores.len();
        let shards: Vec<FilterEngine<S>> = stores
            .into_iter()
            .map(|store| FilterEngine::try_with_storage(store, schema.clone(), config))
            .collect::<Result<_>>()?;
        let rev = vec![HashMap::new(); shards.len()];
        Ok(ShardedFilterEngine {
            shards,
            subs: BTreeMap::new(),
            routes: BTreeMap::new(),
            rev,
            next_sub: 0,
            stats: FilterStats::default(),
            config,
        })
    }

    // ------------------------------------------------------------------
    // Shard topology
    // ------------------------------------------------------------------

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's inner engine (introspection: per-shard graphs, stats).
    pub fn shard(&self, i: usize) -> &FilterEngine<S> {
        &self.shards[i]
    }

    /// Every shard's storage backend, in shard order (shard 0 first).
    pub fn shard_storages(&self) -> impl Iterator<Item = &S> {
        self.shards.iter().map(|s| s.storage())
    }

    /// Mutable access to every shard's backend, in shard order (durability
    /// controls: per-shard checkpointing).
    pub fn shard_storages_mut(&mut self) -> impl Iterator<Item = &mut S> {
        self.shards.iter_mut().map(|s| s.storage_mut())
    }

    /// The shard owning a rule text.
    pub fn rule_shard(&self, rule_text: &str) -> usize {
        (fnv1a64(rule_text.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// The shard owning a subject URI (data is replicated; the owner only
    /// decides which shard answers point reads).
    pub fn document_shard(&self, uri: &str) -> usize {
        (fnv1a64(uri.as_bytes()) % self.shards.len() as u64) as usize
    }

    // ------------------------------------------------------------------
    // Read API (mirrors FilterEngine; replicated state answers anywhere)
    // ------------------------------------------------------------------

    pub fn schema(&self) -> &RdfSchema {
        self.shards[0].schema()
    }

    /// Shard 0's database (base tables are replicated in every shard).
    pub fn db(&self) -> &Database {
        self.shards[0].db()
    }

    /// Shard 0's storage backend. The system tier keeps its `Sys*` mirror
    /// tables here; per-shard WAL statistics go through
    /// [`ShardedFilterEngine::shard_storages`].
    pub fn storage(&self) -> &S {
        self.shards[0].storage()
    }

    /// Mutable access to shard 0's backend (system-tier mirror tables).
    pub fn storage_mut(&mut self) -> &mut S {
        self.shards[0].storage_mut()
    }

    /// Shard 0's dependency graph. With `shards = 1` (the default) this is
    /// the complete graph; otherwise each shard owns the subgraph of its
    /// rules (see [`ShardedFilterEngine::shard`]).
    pub fn graph(&self) -> &DepGraph {
        self.shards[0].graph()
    }

    /// Merged statistics: `documents_registered` and `atoms_processed` are
    /// shard 0's (every shard processes every document, so the counters are
    /// equal across shards); the trigger/join/probe/iteration counters sum
    /// over shards. With `shards = 1` this is exactly the inner engine's
    /// stats. Across *different* shard counts the summed counters may
    /// legitimately differ (a rule group split over shards re-probes per
    /// shard); the document counters and all published output do not.
    pub fn stats(&self) -> &FilterStats {
        &self.stats
    }

    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// Sets the per-shard worker-thread count (total parallelism is
    /// `shards × threads`). Output is identical for every value.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
        for shard in &mut self.shards {
            shard.set_threads(threads);
        }
    }

    pub fn subscription(&self, id: SubscriptionId) -> Option<&Subscription> {
        self.subs.get(&id)
    }

    pub fn subscriptions(&self) -> impl Iterator<Item = &Subscription> {
        self.subs.values()
    }

    /// The registered document with this URI, answered by its owning shard.
    pub fn document(&self, uri: &str) -> Option<&Document> {
        self.shards[self.document_shard(uri)].document(uri)
    }

    /// All registered documents (arbitrary order; shard 0's replica).
    pub fn documents(&self) -> impl Iterator<Item = &Document> {
        self.shards[0].documents()
    }

    pub fn document_count(&self) -> usize {
        self.shards[0].document_count()
    }

    /// Reconstructs a resource from its owning shard's base tables.
    pub fn resource(&self, uri: &str) -> Result<Option<Resource>> {
        self.shards[self.document_shard(uri)].resource(uri)
    }

    /// See [`FilterEngine::strong_closure`]; base data is replicated, so
    /// shard 0 answers.
    pub fn strong_closure(&self, seeds: &[String]) -> Result<Vec<String>> {
        self.shards[0].strong_closure(seeds)
    }

    /// See [`FilterEngine::strong_referrers`].
    pub fn strong_referrers(&self, uri: &str) -> Result<Vec<String>> {
        self.shards[0].strong_referrers(uri)
    }

    // ------------------------------------------------------------------
    // Commit groups (system tier)
    // ------------------------------------------------------------------

    /// Opens one commit group on *every* shard's backend (depth-counted;
    /// see `StorageEngine::begin`).
    pub fn begin_group(&mut self) {
        for shard in &mut self.shards {
            shard.storage_mut().begin();
        }
    }

    /// Commits the group on every shard's backend, in shard order.
    pub fn commit_group(&mut self) -> Result<()> {
        for shard in &mut self.shards {
            shard.storage_mut().commit()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Subscriptions
    // ------------------------------------------------------------------

    /// Registers a rule on its owning shard and returns the wrapper-global
    /// subscription id. With one shard, global and local ids advance in
    /// lockstep (both only on success), so the wrapper is invisible.
    pub fn register_subscription(
        &mut self,
        rule_text: &str,
    ) -> Result<(SubscriptionId, Vec<String>)> {
        let shard = self.rule_shard(rule_text);
        let (local, initial) = self.shards[shard].register_subscription(rule_text)?;
        let global = SubscriptionId(self.next_sub);
        self.next_sub += 1;
        let end_rules = self.shards[shard]
            .subscription(local)
            .expect("freshly registered subscription exists")
            .end_rules
            .clone();
        self.routes.insert(global, (shard, local));
        self.rev[shard].insert(local, global);
        self.subs.insert(
            global,
            Subscription {
                id: global,
                rule_text: rule_text.to_owned(),
                end_rules,
            },
        );
        Ok((global, initial))
    }

    /// Unregisters a subscription on its owning shard.
    pub fn unregister_subscription(&mut self, id: SubscriptionId) -> Result<()> {
        let (shard, local) = *self
            .routes
            .get(&id)
            .ok_or_else(|| Error::Subscription(format!("unknown subscription {id}")))?;
        self.shards[shard].unregister_subscription(local)?;
        self.routes.remove(&id);
        self.rev[shard].remove(&local);
        self.subs.remove(&id);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Documents (broadcast to every shard, shard-parallel)
    // ------------------------------------------------------------------

    /// Registers a single document. See [`ShardedFilterEngine::register_batch`].
    pub fn register_document(&mut self, doc: &Document) -> Result<Vec<Publication>> {
        self.register_batch(std::slice::from_ref(doc))
    }

    /// Registers a batch on every shard in parallel and merges the
    /// per-shard publications into global-id order.
    pub fn register_batch(&mut self, docs: &[Document]) -> Result<Vec<Publication>> {
        let results = self.broadcast(|engine| engine.register_batch(docs));
        self.collect_pubs(results)
    }

    /// Like [`ShardedFilterEngine::register_batch`], also returning each
    /// shard's Figure-9 trace (`shards` runs, in shard order; with one
    /// shard the run is verbatim the bare engine's). Cross-shard-comparable
    /// traces come from [`ShardedFilterEngine::canonical_trace`].
    pub fn register_batch_traced(
        &mut self,
        docs: &[Document],
    ) -> Result<(Vec<Publication>, Vec<FilterRun>)> {
        let results = self.broadcast(|engine| engine.register_batch_traced(docs));
        let mut pubs = Vec::with_capacity(results.len());
        let mut runs = Vec::with_capacity(results.len());
        let mut first_err = None;
        for result in results {
            match result {
                Ok((p, r)) => {
                    pubs.push(p);
                    runs.push(r);
                }
                Err(e) => {
                    let _ = first_err.get_or_insert(e);
                }
            }
        }
        self.refresh_stats();
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok((self.merge_publications(pubs), runs))
    }

    /// Parses RDF/XML sources and registers them as one batch on every
    /// shard. See [`FilterEngine::register_batch_xml`].
    pub fn register_batch_xml(&mut self, sources: &[(String, String)]) -> Result<Vec<Publication>> {
        let results = self.broadcast(|engine| engine.register_batch_xml(sources));
        self.collect_pubs(results)
    }

    /// Re-registers a modified document on every shard. See
    /// [`FilterEngine::update_document`].
    pub fn update_document(&mut self, new_doc: &Document) -> Result<Vec<Publication>> {
        let results = self.broadcast(|engine| engine.update_document(new_doc));
        self.collect_pubs(results)
    }

    /// Deletes a document on every shard. See
    /// [`FilterEngine::delete_document`].
    pub fn delete_document(&mut self, uri: &str) -> Result<Vec<Publication>> {
        let results = self.broadcast(|engine| engine.delete_document(uri));
        self.collect_pubs(results)
    }

    // ------------------------------------------------------------------
    // Traces
    // ------------------------------------------------------------------

    /// Projects per-shard Figure-9 traces onto a shard-invariant form: per
    /// iteration, the sorted, deduplicated `(uri, canonical rule text)`
    /// pairs, trailing empty iterations dropped. A derivation's iteration
    /// index is its rule's depth in the dependency cascade — intrinsic to
    /// the rule, not to the shard evaluating it — and an atomic rule
    /// duplicated across shards derives the same pairs in each, so this
    /// projection is byte-identical for every shard count (the
    /// `shard_determinism` gate pins exactly that).
    pub fn canonical_trace(&self, runs: &[FilterRun]) -> Vec<Vec<(String, String)>> {
        let depth = runs.iter().map(|r| r.iterations.len()).max().unwrap_or(0);
        let mut merged: Vec<BTreeSet<(String, String)>> = vec![BTreeSet::new(); depth];
        for (shard, run) in runs.iter().enumerate() {
            let graph = self.shards[shard].graph();
            let mut memo = HashMap::new();
            for (i, iteration) in run.iterations.iter().enumerate() {
                for (uri, rule) in iteration {
                    merged[i].insert((uri.clone(), rule_identity(graph, *rule, &mut memo)));
                }
            }
        }
        while merged.last().is_some_and(|m| m.is_empty()) {
            merged.pop();
        }
        merged
            .into_iter()
            .map(|m| m.into_iter().collect())
            .collect()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Runs `f` on every shard — scoped threads when there is more than
    /// one, the calling thread otherwise — returning results in shard
    /// order. Every shard holds a full replica, so the closures never
    /// touch shared mutable state: zero cross-shard locking.
    fn broadcast<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut FilterEngine<S>) -> R + Sync,
    {
        if self.shards.len() == 1 {
            return vec![f(&mut self.shards[0])];
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| scope.spawn(move || f(shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    }

    /// Separates a broadcast's per-shard results into merged publications
    /// or the first shard's error (shards hold identical replicas, so they
    /// fail identically; shard order makes the choice deterministic).
    fn collect_pubs(&mut self, results: Vec<Result<Vec<Publication>>>) -> Result<Vec<Publication>> {
        let mut per_shard = Vec::with_capacity(results.len());
        let mut first_err = None;
        for result in results {
            match result {
                Ok(pubs) => per_shard.push(pubs),
                Err(e) => {
                    let _ = first_err.get_or_insert(e);
                }
            }
        }
        self.refresh_stats();
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(self.merge_publications(per_shard))
    }

    /// Sequential merge phase: remap shard-local subscription ids to global
    /// ids and recanonicalize. Each subscription lives on exactly one
    /// shard, so this is a disjoint union; `assemble_publications` (already
    /// applied per shard, idempotent) restores global-id order.
    fn merge_publications(&self, per_shard: Vec<Vec<Publication>>) -> Vec<Publication> {
        if self.shards.len() == 1 {
            return per_shard.into_iter().next().unwrap_or_default();
        }
        let mut merged: BTreeMap<SubscriptionId, Publication> = BTreeMap::new();
        for (shard, pubs) in per_shard.into_iter().enumerate() {
            for p in pubs {
                let global = self.rev[shard][&p.subscription];
                let entry = merged
                    .entry(global)
                    .or_insert_with(|| Publication::new(global));
                entry.added.extend(p.added);
                entry.updated.extend(p.updated);
                entry.removed.extend(p.removed);
            }
        }
        assemble_publications(merged)
    }

    /// Recomputes the merged stats view after a mutating broadcast.
    fn refresh_stats(&mut self) {
        let mut agg = *self.shards[0].stats();
        for shard in &self.shards[1..] {
            let s = shard.stats();
            agg.trigger_matches += s.trigger_matches;
            agg.trigger_evals += s.trigger_evals;
            agg.join_evaluations += s.join_evaluations;
            agg.probe_cache_hits += s.probe_cache_hits;
            agg.probes_executed += s.probes_executed;
            agg.iterations += s.iterations;
        }
        self.stats = agg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::{Resource, Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn doc(i: u64, memory: i64) -> Document {
        let uri = format!("doc{i}.rdf");
        Document::new(&uri)
            .with_resource(
                Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                    .with("serverHost", Term::literal(format!("h{i}.uni-passau.de")))
                    .with("serverPort", Term::literal("5874"))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new(&uri, "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                    .with("memory", Term::literal(memory.to_string()))
                    .with("cpu", Term::literal("600")),
            )
    }

    fn rules() -> Vec<String> {
        let mut rules: Vec<String> = (0..6)
            .map(|i| {
                format!("search CycleProvider c register c where c.serverInformation.memory > {i}")
            })
            .collect();
        rules.push("search CycleProvider c register c where c = 'doc1.rdf#host'".into());
        rules.push(
            "search CycleProvider c register c where c.serverHost contains 'uni-passau.de' \
             and c.serverInformation.memory > 2"
                .into(),
        );
        rules
    }

    fn sharded(n: usize) -> ShardedFilterEngine {
        let config = FilterConfig {
            shards: n,
            ..FilterConfig::default()
        };
        let mut engine = ShardedFilterEngine::with_config(schema(), config);
        for rule in rules() {
            engine.register_subscription(&rule).unwrap();
        }
        engine
    }

    #[test]
    fn one_shard_matches_bare_engine_bit_for_bit() {
        let mut bare = FilterEngine::new(schema());
        for rule in rules() {
            bare.register_subscription(&rule).unwrap();
        }
        let mut one = sharded(1);
        let docs: Vec<Document> = (0..4).map(|i| doc(i, 64 + i as i64)).collect();
        let (pubs_bare, run_bare) = bare.register_batch_traced(&docs).unwrap();
        let (pubs_one, runs_one) = one.register_batch_traced(&docs).unwrap();
        assert_eq!(pubs_bare, pubs_one);
        assert_eq!(vec![run_bare], runs_one);
        assert_eq!(bare.stats(), one.stats());
        let up_bare = bare.update_document(&doc(2, 1)).unwrap();
        let up_one = one.update_document(&doc(2, 1)).unwrap();
        assert_eq!(up_bare, up_one);
        let del_bare = bare.delete_document("doc3.rdf").unwrap();
        let del_one = one.delete_document("doc3.rdf").unwrap();
        assert_eq!(del_bare, del_one);
    }

    #[test]
    fn shard_counts_publish_identically() {
        let docs: Vec<Document> = (0..5).map(|i| doc(i, 60 + i as i64 * 3)).collect();
        let mut reference = sharded(1);
        let ref_pubs = reference.register_batch(&docs).unwrap();
        let ref_up = reference.update_document(&doc(1, 0)).unwrap();
        let ref_del = reference.delete_document("doc0.rdf").unwrap();
        for n in [2, 4, 8] {
            let mut engine = sharded(n);
            assert_eq!(engine.shard_count(), n);
            assert_eq!(
                ref_pubs,
                engine.register_batch(&docs).unwrap(),
                "shards={n}"
            );
            assert_eq!(ref_up, engine.update_document(&doc(1, 0)).unwrap());
            assert_eq!(ref_del, engine.delete_document("doc0.rdf").unwrap());
        }
    }

    #[test]
    fn canonical_trace_is_shard_invariant() {
        let docs: Vec<Document> = (0..4).map(|i| doc(i, 70 + i as i64)).collect();
        let mut reference = sharded(1);
        let (_, ref_runs) = reference.register_batch_traced(&docs).unwrap();
        let ref_trace = reference.canonical_trace(&ref_runs);
        assert!(!ref_trace.is_empty());
        for n in [2, 4, 8] {
            let mut engine = sharded(n);
            let (_, runs) = engine.register_batch_traced(&docs).unwrap();
            assert_eq!(runs.len(), n);
            assert_eq!(ref_trace, engine.canonical_trace(&runs), "shards={n}");
        }
    }

    #[test]
    fn errors_are_deterministic_and_atomic_per_shard() {
        let mut engine = sharded(4);
        engine.register_batch(&[doc(0, 80)]).unwrap();
        // duplicate registration fails identically on every shard
        let err = engine.register_batch(&[doc(0, 80)]).unwrap_err();
        assert!(err.to_string().contains("already registered"));
        let mut one = sharded(1);
        one.register_batch(&[doc(0, 80)]).unwrap();
        assert_eq!(
            one.register_batch(&[doc(0, 80)]).unwrap_err().to_string(),
            err.to_string()
        );
        // unknown ops keep working afterwards
        assert!(engine.update_document(&doc(9, 1)).is_err());
        assert!(engine.delete_document("nope.rdf").is_err());
        engine.register_batch(&[doc(1, 80)]).unwrap();
        assert_eq!(engine.document_count(), 2);
    }

    #[test]
    fn unsubscribe_routes_to_owning_shard() {
        let mut engine = sharded(4);
        let ids: Vec<SubscriptionId> = engine.subscriptions().map(|s| s.id).collect();
        assert_eq!(ids.len(), rules().len());
        for id in &ids {
            engine.unregister_subscription(*id).unwrap();
        }
        assert_eq!(engine.subscriptions().count(), 0);
        for i in 0..engine.shard_count() {
            assert!(engine.shard(i).graph().is_empty(), "shard {i} drained");
        }
        let missing = engine.unregister_subscription(SubscriptionId(999));
        assert!(missing
            .unwrap_err()
            .to_string()
            .contains("unknown subscription"));
    }

    #[test]
    fn empty_shards_do_zero_filter_work() {
        // one rule → one owning shard; the other shards must report zero
        // trigger/join/probe work (an empty shard contributes zero tasks,
        // not a degenerate full scan)
        let config = FilterConfig {
            shards: 4,
            ..FilterConfig::default()
        };
        let mut engine = ShardedFilterEngine::with_config(schema(), config);
        let rule = "search CycleProvider c register c where c.serverInformation.memory > 64";
        engine.register_subscription(rule).unwrap();
        let owner = engine.rule_shard(rule);
        engine.register_batch(&[doc(0, 80), doc(1, 10)]).unwrap();
        for i in 0..4 {
            let s = engine.shard(i).stats();
            assert_eq!(s.documents_registered, 2, "every shard replicates docs");
            if i != owner {
                assert_eq!(s.trigger_matches, 0, "shard {i} owns no rules");
                assert_eq!(s.join_evaluations, 0);
                assert_eq!(s.probes_executed, 0);
            }
        }
        assert!(engine.shard(owner).stats().trigger_matches > 0);
    }

    #[test]
    fn point_reads_route_by_subject_uri_hash() {
        let mut engine = sharded(4);
        engine.register_batch(&[doc(0, 80)]).unwrap();
        let shard = engine.document_shard("doc0.rdf");
        assert!(shard < 4);
        assert!(engine.document("doc0.rdf").is_some());
        let res = engine.resource("doc0.rdf#host").unwrap();
        assert!(res.is_some());
        // replication: every shard can answer the same read
        for i in 0..4 {
            assert!(engine.shard(i).document("doc0.rdf").is_some());
        }
    }
}
