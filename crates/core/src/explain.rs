//! Human-readable explanation of what registering a rule would do: the
//! normalized form, the `or`-split, the atomic-rule decomposition, and —
//! against a live engine — which atomic rules would be shared with already
//! registered subscriptions.

use std::fmt::Write as _;

use mdv_rulelang::{normalize, parse_rule, split_or, typecheck};

use crate::atoms::AtomicRule;
use crate::decompose::{decompose, ProtoRule};
use crate::engine::FilterEngine;
use crate::error::Result;

impl FilterEngine {
    /// Explains a rule without registering it.
    pub fn explain_rule(&self, rule_text: &str) -> Result<String> {
        let rule = parse_rule(rule_text)?;
        let mut out = String::new();
        let _ = writeln!(out, "rule: {rule}");
        let conjs = split_or(&rule);
        if conjs.len() > 1 {
            let _ = writeln!(out, "or-split into {} conjunctive rules", conjs.len());
        }
        for (i, conj) in conjs.iter().enumerate() {
            if conjs.len() > 1 {
                let _ = writeln!(out, "\n-- disjunct {} --", i + 1);
            }
            let normalized = match normalize(conj, self.schema()) {
                Ok(n) => n,
                Err(mdv_rulelang::Error::Unsatisfiable) => {
                    let _ = writeln!(out, "statically false; would be skipped");
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            typecheck(&normalized, self.schema())?;
            let _ = writeln!(out, "normalized: {normalized}");
            let proto = decompose(&normalized)?;
            let _ = writeln!(
                out,
                "decomposes into {} atomic rules ({} triggering, {} join):",
                proto.rules.len(),
                proto.triggers().count(),
                proto.joins().count()
            );
            for (idx, p) in proto.rules.iter().enumerate() {
                let marker = if idx == proto.end { " (end rule)" } else { "" };
                match p {
                    ProtoRule::Trigger { class, pred: None } => {
                        let _ = writeln!(out, "  [{idx}] trigger: any {class}{marker}");
                    }
                    ProtoRule::Trigger {
                        class,
                        pred: Some(pred),
                    } => {
                        let _ = writeln!(out, "  [{idx}] trigger: {class} where {pred}{marker}");
                    }
                    ProtoRule::Join {
                        left,
                        right,
                        register,
                        pred,
                        ..
                    } => {
                        let reg = match register {
                            crate::atoms::Side::Left => left,
                            crate::atoms::Side::Right => right,
                        };
                        let _ = writeln!(
                            out,
                            "  [{idx}] join: [{left}] ⋈ [{right}] on {pred}, registers [{reg}]{marker}"
                        );
                    }
                }
                // would this atomic rule be shared with the live graph?
                // (resolvable only for triggers — join identity depends on
                // the global ids of its inputs)
                if let ProtoRule::Trigger { class, pred } = p {
                    let kind = crate::atoms::AtomicRuleKind::Trigger {
                        class: class.clone(),
                        pred: pred.clone(),
                    };
                    let text = AtomicRule::canonical_text(&kind);
                    if self
                        .graph()
                        .rules_sorted()
                        .iter()
                        .any(|r| AtomicRule::canonical_text(&r.kind) == text)
                    {
                        let _ = writeln!(out, "        shared with an existing subscription");
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::RdfSchema;

    fn engine() -> FilterEngine {
        FilterEngine::new(
            RdfSchema::builder()
                .class("ServerInformation", |c| c.int("memory").int("cpu"))
                .class("CycleProvider", |c| {
                    c.str("serverHost")
                        .strong_ref("serverInformation", "ServerInformation")
                })
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn explains_decomposition() {
        let e = engine();
        let text = e
            .explain_rule(
                "search CycleProvider c register c \
                 where c.serverHost contains 'uni-passau.de' \
                 and c.serverInformation.memory > 64 and c.serverInformation.cpu > 500",
            )
            .unwrap();
        assert!(text.contains("normalized:"));
        assert!(text.contains("5 atomic rules (3 triggering, 2 join)"));
        assert!(text.contains("(end rule)"));
    }

    #[test]
    fn reports_sharing_with_live_graph() {
        let mut e = engine();
        e.register_subscription(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .unwrap();
        let text = e
            .explain_rule("search CycleProvider c register c where c.serverInformation.memory > 64")
            .unwrap();
        assert!(text.contains("shared with an existing subscription"));
    }

    #[test]
    fn explains_or_split_and_unsatisfiable() {
        let e = engine();
        let text = e
            .explain_rule(
                "search CycleProvider c register c \
                 where c.serverHost contains 'a' or 1 = 2",
            )
            .unwrap();
        assert!(text.contains("or-split into 2"));
        assert!(text.contains("statically false"));
    }

    #[test]
    fn explain_does_not_register() {
        let e = engine();
        e.explain_rule("search CycleProvider c register c").unwrap();
        assert!(e.graph().is_empty());
    }
}
