//! The filter engine (paper §3.4): matching documents against the rule base
//! and evaluating affected join rules incrementally along the global
//! dependency graph.
//!
//! One engine instance backs one Metadata Provider. It owns
//!
//! * the embedded relational database with all filter tables,
//! * the global dependency graph of atomic rules,
//! * the subscription registry,
//! * the registry of documents (for update/delete diffing, §3.5).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use mdv_rdf::{Document, RdfSchema, RefKind, Resource, RDF_SUBJECT};
use mdv_relstore::{Database, StorageEngine};
use mdv_rulelang::{normalize, parse_rule, split_or, typecheck, RuleOp};
use mdv_runtime::pool::parallel_map;

use crate::atoms::{AtomicRuleKind, GroupId, JoinPred, JoinSpec, RuleId, Side, TriggerOp};
use crate::decompose::decompose;
use crate::depgraph::DepGraph;
use crate::error::{Error, Result};
use crate::registry::{assemble_publications, Publication, Subscription, SubscriptionId};
use crate::rule_tables::{
    class_triggers, create_rule_tables, insert_atomic, matching_triggers, remove_atomic,
    TRIGGER_OPS,
};
use crate::store::{create_base_tables, Atom, BaseStore};
use crate::trace::{FilterRun, FilterStats};
use crate::trigger_index::TriggerIndex;

/// Tunables of the engine, used by the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// Share counterpart probes across the join rules of a rule group
    /// (paper §3.3.3). Disabling evaluates every join rule individually.
    pub use_rule_groups: bool,
    /// Worker threads for the read-only filter phases: document validation
    /// and atomization, trigger matching, counterpart probes, and join-rule
    /// candidate evaluation. `1` (the default) runs everything on the
    /// calling thread — bit-for-bit the pre-parallel engine. Any value
    /// yields byte-identical publications and stats; only wall-clock time
    /// changes (DESIGN.md §5, "Parallel filter execution").
    pub threads: usize,
    /// Independent filter shards inside one MDP (DESIGN.md §8). `1` (the
    /// default) is today's exact monolithic engine; honored by
    /// [`crate::ShardedFilterEngine`], ignored by a bare [`FilterEngine`].
    /// Publications are byte-identical for every value.
    pub shards: usize,
    /// Consult the inverted token postings for `contains` trigger matching
    /// (DESIGN.md §10) instead of scanning every rule of the
    /// `(class, property)` partition. On (the default) or off, publications
    /// and traces are byte-identical; only
    /// [`FilterStats::trigger_evals`](crate::FilterStats) and wall-clock
    /// time change.
    pub use_trigger_index: bool,
    /// Evaluate only the subscription-subsumption frontier for `contains`
    /// and the ordered numeric operators (`<`, `<=`, `>`, `>=`), fanning
    /// matches out to covered rules (DESIGN.md §10). Output is
    /// byte-identical on (the default) or off.
    pub use_subsumption: bool,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            use_rule_groups: true,
            threads: 1,
            shards: 1,
            use_trigger_index: true,
            use_subsumption: true,
        }
    }
}

/// How a filter pass treats the materialized rule results (see §3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Normal registration: propagate only tuples not yet materialized and
    /// materialize them (incremental insert pass).
    Insert,
    /// Update pass 2: propagate every match (re-derivations included) and
    /// re-materialize missing tuples.
    Refresh,
    /// Update pass 1: read-only evaluation against the *old* state; nothing
    /// is written, every derivation propagates.
    Collect,
}

/// The MDV filter engine, generic over its storage backend (DESIGN.md §6).
///
/// The default backend is the volatile in-memory [`Database`] — exactly the
/// pre-trait engine, bit for bit. A durable backend
/// ([`mdv_relstore::DurableEngine`]) records every mutation in a write-ahead
/// log and recovers committed state after a crash; the filter algorithm is
/// oblivious to the difference because all reads go through
/// [`FilterEngine::db`] and all writes through the [`StorageEngine`] trait.
#[derive(Debug, Clone)]
pub struct FilterEngine<S: StorageEngine = Database> {
    schema: RdfSchema,
    pub(crate) store: S,
    pub(crate) graph: DepGraph,
    /// Rules whose full results are currently materialized in `RuleResults`.
    pub(crate) materialized: HashSet<RuleId>,
    subs: BTreeMap<SubscriptionId, Subscription>,
    pub(crate) end_subs: HashMap<RuleId, Vec<SubscriptionId>>,
    pub(crate) documents: HashMap<String, Document>,
    /// class → that class plus all transitive subclasses.
    descendants: HashMap<String, Vec<String>>,
    /// class → that class plus all transitive superclasses.
    ancestors: HashMap<String, Vec<String>>,
    next_sub: u64,
    pub(crate) stats: FilterStats,
    config: FilterConfig,
    /// Incremental matching index (inverted `contains` postings, cover
    /// forest, ordered-op chains). Always maintained; consulted per the
    /// `use_trigger_index` / `use_subsumption` config knobs.
    triggers: TriggerIndex,
}

impl FilterEngine<Database> {
    /// Builds an engine on a fresh in-memory database with the default
    /// [`FilterConfig`] (rule groups on, one thread, indexed matching).
    pub fn new(schema: RdfSchema) -> Self {
        Self::with_config(schema, FilterConfig::default())
    }

    /// Builds an engine on a fresh in-memory database with explicit
    /// tunables — the ablation benchmarks' entry point.
    pub fn with_config(schema: RdfSchema, config: FilterConfig) -> Self {
        Self::with_storage(Database::new(), schema, config)
    }
}

impl<S: StorageEngine + Sync> FilterEngine<S> {
    /// Builds an engine on a fresh storage backend: the filter tables are
    /// created through the backend (and thus logged by durable ones).
    ///
    /// Panics if the backend rejects the filter DDL — fine for the volatile
    /// [`Database`], which cannot fail it. Durable backends on real (or
    /// fault-injected) disks should use [`FilterEngine::try_with_storage`],
    /// which surfaces I/O faults as typed errors instead.
    pub fn with_storage(store: S, schema: RdfSchema, config: FilterConfig) -> Self {
        Self::try_with_storage(store, schema, config)
            .expect("storage backend accepts the filter DDL")
    }

    /// Fallible [`FilterEngine::with_storage`]: a backend that fails the
    /// initial DDL commit (a disk fault during WAL append or sync) returns
    /// `Error::Store` rather than panicking.
    pub fn try_with_storage(mut store: S, schema: RdfSchema, config: FilterConfig) -> Result<Self> {
        store.begin();
        create_base_tables(&mut store)?;
        create_rule_tables(&mut store)?;
        store.commit()?;
        // precompute the class hierarchy maps
        let mut ancestors: HashMap<String, Vec<String>> = HashMap::new();
        let mut descendants: HashMap<String, Vec<String>> = HashMap::new();
        for name in schema.class_names() {
            let mut chain = Vec::new();
            let mut cur = Some(name);
            while let Some(c) = cur {
                chain.push(c.to_owned());
                cur = schema.class(c).and_then(|d| d.parent.as_deref());
            }
            for anc in &chain {
                descendants
                    .entry(anc.clone())
                    .or_default()
                    .push(name.to_owned());
            }
            ancestors.insert(name.to_owned(), chain);
        }
        Ok(FilterEngine {
            schema,
            store,
            graph: DepGraph::new(),
            materialized: HashSet::new(),
            subs: BTreeMap::new(),
            end_subs: HashMap::new(),
            documents: HashMap::new(),
            descendants,
            ancestors,
            next_sub: 0,
            stats: FilterStats::default(),
            config,
            triggers: TriggerIndex::default(),
        })
    }

    /// The RDF schema documents are validated against.
    pub fn schema(&self) -> &RdfSchema {
        &self.schema
    }

    /// Read access to the relational database holding the base and filter
    /// tables — every read of the filter algorithm goes through here.
    pub fn db(&self) -> &Database {
        self.store.database()
    }

    /// The storage backend itself (durability controls: checkpointing,
    /// WAL statistics).
    pub fn storage(&self) -> &S {
        &self.store
    }

    /// Mutable access to the storage backend. The system tier uses this to
    /// keep its own durable tables (subscription/document mirrors) in the
    /// same WAL as the filter tables; callers must not touch the filter's
    /// own tables.
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Consumes the engine, returning the backend.
    pub fn into_storage(self) -> S {
        self.store
    }

    /// The global dependency graph of deduplicated atomic rules (§3.3.2).
    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }

    /// Cumulative filter statistics (documents registered, iterations run,
    /// trigger evaluations, …) since the engine was built.
    pub fn stats(&self) -> &FilterStats {
        &self.stats
    }

    /// The engine's current tunables.
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// Sets the worker-thread count for subsequent filter runs. Safe to
    /// flip at any time: publications and stats are identical for every
    /// value (DESIGN.md §5), only wall-clock time changes.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// Sets the trigger-matching strategy for subsequent filter runs
    /// (DESIGN.md §10). Safe to flip at any time — the index structures
    /// are maintained on every subscribe/unsubscribe regardless of the
    /// knobs; the knobs only govern whether matching consults them.
    /// Publications and traces are byte-identical for every combination;
    /// the matching-scaling benchmark flips these to compare the paths.
    pub fn set_matching(&mut self, use_trigger_index: bool, use_subsumption: bool) {
        self.config.use_trigger_index = use_trigger_index;
        self.config.use_subsumption = use_subsumption;
    }

    /// Read access to the trigger-matching index (postings, subsumption
    /// frontier, threshold chains) — introspection for tests and the
    /// matching-scaling study.
    pub fn trigger_index(&self) -> &TriggerIndex {
        &self.triggers
    }

    /// Maps `f` over `items`, fanning out across `config.threads` scoped
    /// workers when parallelism is enabled and there is enough work,
    /// sequentially otherwise. Results come back in input order either
    /// way, so callers cannot observe the thread count.
    pub(crate) fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.config.threads > 1 && items.len() > 1 {
            parallel_map(items, self.config.threads, f)
        } else {
            items.iter().map(f).collect()
        }
    }

    /// The registered subscription with this id, if any.
    pub fn subscription(&self, id: SubscriptionId) -> Option<&Subscription> {
        self.subs.get(&id)
    }

    /// All registered subscriptions, in ascending id order.
    pub fn subscriptions(&self) -> impl Iterator<Item = &Subscription> {
        self.subs.values()
    }

    /// The registered document with this URI, if any.
    pub fn document(&self, uri: &str) -> Option<&Document> {
        self.documents.get(uri)
    }

    /// All registered documents (arbitrary order).
    pub fn documents(&self) -> impl Iterator<Item = &Document> {
        self.documents.values()
    }

    /// Number of registered documents.
    pub fn document_count(&self) -> usize {
        self.documents.len()
    }

    /// Reconstructs a resource from the base tables.
    pub fn resource(&self, uri: &str) -> Result<Option<Resource>> {
        BaseStore::resource(self.db(), uri)
    }

    fn descendants_of(&self, class: &str) -> &[String] {
        self.descendants.get(class).map_or(&[], |v| v.as_slice())
    }

    fn ancestors_of(&self, class: &str) -> &[String] {
        self.ancestors.get(class).map_or(&[], |v| v.as_slice())
    }

    // ------------------------------------------------------------------
    // Subscription registration (paper §3.3)
    // ------------------------------------------------------------------

    /// Registers a subscription rule. The rule is parsed, split at `or`s,
    /// normalized, typechecked, decomposed, and merged into the global
    /// dependency graph. Returns the subscription id and the URIs of
    /// resources that *already* match (the initial cache fill of the LMR).
    pub fn register_subscription(
        &mut self,
        rule_text: &str,
    ) -> Result<(SubscriptionId, Vec<String>)> {
        // one commit group per registration: a durable backend makes the
        // rule-table mirrors and backfilled materializations atomically
        // durable; committed even on error because the in-memory engine
        // keeps partial state on error and behaviour must not change
        self.store.begin();
        let out = self.register_subscription_inner(rule_text);
        self.store.commit()?;
        out
    }

    fn register_subscription_inner(
        &mut self,
        rule_text: &str,
    ) -> Result<(SubscriptionId, Vec<String>)> {
        let rule = parse_rule(rule_text)?;
        let mut end_rules = Vec::new();
        let mut initial: BTreeSet<String> = BTreeSet::new();
        let mut satisfiable = 0usize;
        for conj in split_or(&rule) {
            let normalized = match normalize(&conj, &self.schema) {
                Ok(n) => n,
                Err(mdv_rulelang::Error::Unsatisfiable) => continue,
                Err(e) => return Err(e.into()),
            };
            satisfiable += 1;
            typecheck(&normalized, &self.schema)?;
            let proto = decompose(&normalized)?;
            let outcome = self.graph.merge(&proto);
            // mirror new atomic rules into the relational rule tables
            for id in &outcome.created {
                let rule = self.graph.rule(*id).expect("created rule exists").clone();
                let text = crate::atoms::AtomicRule::canonical_text(&rule.kind);
                insert_atomic(&mut self.store, &rule, &text)?;
                if let AtomicRuleKind::Trigger {
                    class,
                    pred: Some(p),
                } = &rule.kind
                {
                    self.triggers.insert(rule.id, class, p);
                }
            }
            // any input of a new join rule must be materialized from now on
            for id in &outcome.created {
                let rule = self.graph.rule(*id).expect("created rule exists");
                if let AtomicRuleKind::Join(spec) = &rule.kind {
                    let inputs = [spec.left.rule, spec.right.rule];
                    for input in inputs {
                        self.ensure_materialized(input)?;
                    }
                }
            }
            self.graph.retain(outcome.end);
            end_rules.push(outcome.end);
            // initial matches against the existing base data
            let mut memo = HashMap::new();
            initial.extend(self.eval_rule_full(outcome.end, &mut memo)?);
        }
        if satisfiable == 0 {
            return Err(mdv_rulelang::Error::Unsatisfiable.into());
        }
        let id = SubscriptionId(self.next_sub);
        self.next_sub += 1;
        for end in &end_rules {
            self.end_subs.entry(*end).or_default().push(id);
        }
        self.subs.insert(
            id,
            Subscription {
                id,
                rule_text: rule_text.to_owned(),
                end_rules,
            },
        );
        Ok((id, initial.into_iter().collect()))
    }

    /// Unregisters a subscription, retracting atomic rules nothing else
    /// references (reference-counted, paper §3.3.2).
    pub fn unregister_subscription(&mut self, id: SubscriptionId) -> Result<()> {
        self.store.begin();
        let out = self.unregister_subscription_inner(id);
        self.store.commit()?;
        out
    }

    fn unregister_subscription_inner(&mut self, id: SubscriptionId) -> Result<()> {
        let sub = self
            .subs
            .remove(&id)
            .ok_or_else(|| Error::Subscription(format!("unknown subscription {id}")))?;
        for end in sub.end_rules {
            if let Some(list) = self.end_subs.get_mut(&end) {
                if let Some(pos) = list.iter().position(|s| *s == id) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.end_subs.remove(&end);
                }
            }
            let removed = self.graph.release(end);
            // collect surviving inputs whose last dependent may be gone
            let mut orphan_check: BTreeSet<RuleId> = BTreeSet::new();
            for rule in &removed {
                if let AtomicRuleKind::Join(spec) = &rule.kind {
                    orphan_check.insert(spec.left.rule);
                    orphan_check.insert(spec.right.rule);
                }
            }
            for rule in &removed {
                let group_emptied = rule
                    .group
                    .map(|g| self.graph.group_members(g).is_empty())
                    .unwrap_or(false);
                remove_atomic(&mut self.store, rule, group_emptied)?;
                if let AtomicRuleKind::Trigger {
                    class,
                    pred: Some(p),
                } = &rule.kind
                {
                    self.triggers.remove(rule.id, class, p);
                }
                BaseStore::results_drop_rule(&mut self.store, rule.id)?;
                self.materialized.remove(&rule.id);
                orphan_check.remove(&rule.id);
            }
            // surviving rules with no dependents left need no materialization
            for rule_id in orphan_check {
                if self.graph.rule(rule_id).is_some()
                    && self.graph.dependents_of(rule_id).is_empty()
                    && self.materialized.remove(&rule_id)
                {
                    BaseStore::results_drop_rule(&mut self.store, rule_id)?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Document registration (paper §3.2 + §3.4)
    // ------------------------------------------------------------------

    /// Registers a single document. See [`FilterEngine::register_batch`].
    pub fn register_document(&mut self, doc: &Document) -> Result<Vec<Publication>> {
        self.register_batch(std::slice::from_ref(doc))
    }

    /// Registers a batch of new documents and runs the filter once over the
    /// whole batch (the paper's batch-registration experiments, §4).
    ///
    /// Publications come back sorted by subscription id with sorted,
    /// deduplicated URI lists — the canonical order every determinism
    /// property in this crate pins. The order is independent of
    /// [`FilterConfig`]: threads, shards, and the matching knobs only
    /// change wall-clock time.
    ///
    /// ```
    /// use mdv_filter::FilterEngine;
    /// use mdv_rdf::{RdfSchema, Document, Resource, Term, UriRef};
    ///
    /// let schema = RdfSchema::builder()
    ///     .class("CycleProvider", |c| c.str("serverHost"))
    ///     .build().unwrap();
    /// let mut engine = FilterEngine::new(schema);
    /// let (sub, _) = engine.register_subscription(
    ///     "search CycleProvider c register c \
    ///      where c.serverHost contains '.uni-passau.de'").unwrap();
    ///
    /// let docs: Vec<Document> = (0..2).map(|i| {
    ///     let uri = format!("doc{i}.rdf");
    ///     Document::new(&uri).with_resource(
    ///         Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
    ///             .with("serverHost", Term::literal(format!("n{i}.uni-passau.de"))))
    /// }).collect();
    ///
    /// let pubs = engine.register_batch(&docs).unwrap();
    /// assert_eq!(pubs.len(), 1); // one publication per matched subscription
    /// assert_eq!(pubs[0].subscription, sub);
    /// assert_eq!(pubs[0].added, vec!["doc0.rdf#host", "doc1.rdf#host"]);
    /// ```
    pub fn register_batch(&mut self, docs: &[Document]) -> Result<Vec<Publication>> {
        Ok(self.register_batch_traced(docs)?.0)
    }

    /// Like [`FilterEngine::register_batch`], also returning the iteration
    /// trace (Figure 9).
    pub fn register_batch_traced(
        &mut self,
        docs: &[Document],
    ) -> Result<(Vec<Publication>, FilterRun)> {
        // one commit group per batch (group commit): a durable backend
        // syncs its log once per batch, not once per row — the WAL-overhead
        // benchmark measures exactly this amortization
        self.store.begin();
        let out = self.register_batch_traced_inner(docs);
        self.store.commit()?;
        out
    }

    fn register_batch_traced_inner(
        &mut self,
        docs: &[Document],
    ) -> Result<(Vec<Publication>, FilterRun)> {
        // validate everything before touching state; the per-document
        // checks are independent and read-only, so they fan out across the
        // pool — scanning the results in document order keeps the reported
        // error identical to the sequential engine's
        let checks = self.par_map(docs, |doc| -> Result<()> {
            if self.documents.contains_key(doc.uri()) {
                return Err(Error::Document(format!(
                    "document '{}' is already registered; use update_document",
                    doc.uri()
                )));
            }
            doc.check_internal_references()?;
            self.schema.validate(doc)?;
            for res in doc.resources() {
                if BaseStore::resource_exists(self.db(), res.uri().as_str())? {
                    return Err(Error::Document(format!(
                        "resource '{}' is already registered",
                        res.uri()
                    )));
                }
            }
            Ok(())
        });
        for check in checks {
            check?;
        }
        // decomposition into atoms is pure per document — parallel; the
        // base-table inserts stay on this thread
        let per_doc_atoms = self.par_map(docs, Atom::from_document);
        let mut atoms = Vec::new();
        for (doc, doc_atoms) in docs.iter().zip(per_doc_atoms) {
            for res in doc.resources() {
                BaseStore::insert_resource(&mut self.store, res, doc.uri())?;
            }
            atoms.extend(doc_atoms);
            self.documents.insert(doc.uri().to_owned(), doc.clone());
            self.stats.documents_registered += 1;
        }
        let run = self.run_filter(&atoms, Mode::Insert)?;
        let mut pubs: BTreeMap<SubscriptionId, Publication> = BTreeMap::new();
        for (end, uri) in &run.end_matches {
            for sub in self.end_subs.get(end).into_iter().flatten() {
                pubs.entry(*sub)
                    .or_insert_with(|| Publication::new(*sub))
                    .added
                    .push(uri.clone());
            }
        }
        Ok((assemble_publications(pubs), run))
    }

    /// Parses a batch of RDF/XML sources — each a `(document_uri, xml)`
    /// pair — across the pool and registers the parsed documents as one
    /// batch. Parse errors are reported in source order, before any state
    /// changes.
    pub fn register_batch_xml(&mut self, sources: &[(String, String)]) -> Result<Vec<Publication>> {
        let parsed = self.par_map(sources, |(uri, xml)| mdv_rdf::parse_document(uri, xml));
        let mut docs = Vec::with_capacity(parsed.len());
        for doc in parsed {
            docs.push(doc?);
        }
        self.register_batch(&docs)
    }

    // ------------------------------------------------------------------
    // The filter proper
    // ------------------------------------------------------------------

    /// Runs the filter over a set of document atoms (paper §3.4): first all
    /// affected triggering rules are determined, then dependent join rules
    /// are evaluated iteratively along the dependency graph.
    pub(crate) fn run_filter(&mut self, atoms: &[Atom], mode: Mode) -> Result<FilterRun> {
        let mut run = FilterRun::default();
        let mut seen: HashSet<(RuleId, String)> = HashSet::new();
        self.stats.atoms_processed += atoms.len() as u64;

        // iteration 0: affected triggering rules
        let (matches, evals) = self.match_triggers(atoms)?;
        self.stats.trigger_matches += matches.len() as u64;
        self.stats.trigger_evals += evals;
        let mut current: Vec<(String, RuleId)> = Vec::new();
        for (uri, rule) in matches {
            if seen.insert((rule, uri.clone())) && self.offer(rule, &uri, mode)? {
                current.push((uri, rule));
            }
        }
        self.record_iteration(&mut run, &current);

        // iterations 1..: dependent join rules
        while !current.is_empty() {
            let next = self.eval_join_iteration(&current, mode, &mut seen)?;
            current = next;
            if !current.is_empty() {
                self.record_iteration(&mut run, &current);
            }
        }
        Ok(run)
    }

    fn record_iteration(&mut self, run: &mut FilterRun, results: &[(String, RuleId)]) {
        self.stats.iterations += 1;
        for (uri, rule) in results {
            if self.end_subs.contains_key(rule) {
                run.end_matches.push((*rule, uri.clone()));
            }
        }
        run.iterations.push(results.to_vec());
    }

    /// Accepts or rejects a derived tuple per the pass mode; accepted tuples
    /// propagate to the next iteration.
    fn offer(&mut self, rule: RuleId, uri: &str, mode: Mode) -> Result<bool> {
        let needs_mat = !self.graph.dependents_of(rule).is_empty();
        match mode {
            Mode::Collect => Ok(true),
            Mode::Refresh => {
                if needs_mat {
                    BaseStore::result_insert(&mut self.store, rule, uri)?;
                }
                Ok(true)
            }
            Mode::Insert => {
                if needs_mat {
                    BaseStore::result_insert(&mut self.store, rule, uri)
                } else {
                    Ok(true)
                }
            }
        }
    }

    /// Joins the batch atoms against the `FilterRules*` tables, returning
    /// the matches plus the number of constant predicates evaluated.
    ///
    /// Per operator, the probe routes through the cheapest exact structure
    /// the config allows (DESIGN.md §10): string equality always uses the
    /// hash index on `(class, property, value)`; `contains` consults the
    /// inverted token postings and/or the subsumption frontier; the ordered
    /// numeric operators walk the sorted threshold chain; everything else
    /// scans its `(class, property)` partition. All paths emit matches in
    /// ascending rule-id order — the scan's order — so the choice is
    /// invisible in publications and traces.
    fn match_triggers(&self, atoms: &[Atom]) -> Result<(Vec<(String, RuleId)>, u64)> {
        // probe only operator tables that currently hold rules
        let active_ops: Vec<TriggerOp> = TRIGGER_OPS
            .into_iter()
            .filter(|op| {
                self.db()
                    .table(&crate::rule_tables::filter_table_name(*op))
                    .map(|t| !t.is_empty())
                    .unwrap_or(false)
            })
            .collect();
        let class_table_active = self
            .db()
            .table(crate::rule_tables::T_FILTER_RULES)
            .map(|t| !t.is_empty())
            .unwrap_or(false);

        // per-atom probing only reads the trigger tables and the in-memory
        // index; fan out across the pool and concatenate in atom order —
        // identical to the sequential result for any thread count. Eval
        // counts come back per atom and are summed in input order so the
        // stats are thread-deterministic too.
        let cfg = self.config;
        let per_atom = self.par_map(atoms, |atom| -> Result<(Vec<(String, RuleId)>, u64)> {
            let mut out = Vec::new();
            let mut evals = 0u64;
            for class in self.ancestors_of(&atom.class) {
                if atom.property == RDF_SUBJECT && class_table_active {
                    for rule in class_triggers(self.db(), class)? {
                        out.push((atom.uri.clone(), rule));
                    }
                }
                for op in &active_ops {
                    let (hits, n) = match *op {
                        TriggerOp::Contains if cfg.use_trigger_index || cfg.use_subsumption => {
                            self.triggers.match_contains(
                                class,
                                &atom.property,
                                &atom.value,
                                cfg.use_trigger_index,
                                cfg.use_subsumption,
                            )
                        }
                        TriggerOp::Lt | TriggerOp::Le | TriggerOp::Gt | TriggerOp::Ge
                            if cfg.use_subsumption =>
                        {
                            self.triggers
                                .match_ordered(*op, class, &atom.property, &atom.value)
                        }
                        _ => matching_triggers(self.db(), *op, class, &atom.property, &atom.value)?,
                    };
                    evals += n;
                    for rule in hits {
                        out.push((atom.uri.clone(), rule));
                    }
                }
            }
            Ok((out, evals))
        });
        let mut out = Vec::new();
        let mut evals = 0u64;
        for part in per_atom {
            let (matches, n) = part?;
            out.extend(matches);
            evals += n;
        }
        Ok((out, evals))
    }

    /// One iteration of join-rule evaluation: all join rules depending on
    /// the current results are evaluated, grouped by rule group so that
    /// counterpart probes are shared (paper §3.3.3).
    ///
    /// The iteration runs in four phases so the read-heavy middle two can
    /// fan out across the pool while the result stays byte-identical to
    /// the sequential engine for any `config.threads` (DESIGN.md §5):
    ///
    /// 1. **enumerate** (sequential, cheap) one task per `(member, side)`
    ///    with delta input, in canonical order — group id, member id,
    ///    side — and dedup the counterpart probes the group shares;
    /// 2. **probe** (parallel) each distinct probe exactly once against
    ///    the shared read-only store;
    /// 3. **evaluate** (parallel) every task read-only against the shared
    ///    probe results; the per-task candidate vectors concatenate in
    ///    task order, reproducing the sequential candidate order exactly;
    /// 4. **offer** (sequential) the deduped candidates, writing
    ///    materializations — the only mutating step.
    fn eval_join_iteration(
        &mut self,
        current: &[(String, RuleId)],
        mode: Mode,
        seen: &mut HashSet<(RuleId, String)>,
    ) -> Result<Vec<(String, RuleId)>> {
        // delta keyed by producing rule
        let mut delta: HashMap<RuleId, Vec<String>> = HashMap::new();
        for (uri, rule) in current {
            delta.entry(*rule).or_default().push(uri.clone());
        }
        // affected join rules, grouped
        let mut groups: BTreeMap<GroupId, BTreeSet<RuleId>> = BTreeMap::new();
        for rule in delta.keys() {
            for dep in self.graph.dependents_of(*rule) {
                let gid = self
                    .graph
                    .rule(*dep)
                    .and_then(|r| r.group)
                    .expect("dependents are join rules with groups");
                groups.entry(gid).or_default().insert(*dep);
            }
        }

        // With no pool configured, the classic single-pass loop wins: it
        // probes lazily and keeps no lookup/probe side tables, which is
        // measurably cheaper than the enumerate/probe/evaluate phases
        // below run on one thread. The two bodies must stay
        // result-identical — `tests/parallel_determinism.rs` diffs them
        // (publications, traces, stats) over randomized workloads.
        let candidates = if self.config.threads > 1 {
            self.join_candidates_parallel(&delta, &groups)?
        } else {
            self.join_candidates_sequential(&delta, &groups)?
        };

        // dedup and write materializations (sequential in both modes)
        let mut next = Vec::new();
        for (uri, rule) in candidates {
            if seen.insert((rule, uri.clone())) && self.offer(rule, &uri, mode)? {
                next.push((uri, rule));
            }
        }
        Ok(next)
    }

    /// Join-candidate enumeration exactly as the pre-parallel engine ran
    /// it: one pass over the affected groups, probing lazily through a
    /// per-group probe cache (paper §3.3.3).
    fn join_candidates_sequential(
        &mut self,
        delta: &HashMap<RuleId, Vec<String>>,
        groups: &BTreeMap<GroupId, BTreeSet<RuleId>>,
    ) -> Result<Vec<(String, RuleId)>> {
        let mut candidates: Vec<(String, RuleId)> = Vec::new();
        for members in groups.values() {
            // probe cache shared across the group's members: the probe
            // depends only on (side, uri) because all members share the
            // predicate shape and classes
            let mut cache: HashMap<(Side, String), Vec<String>> = HashMap::new();
            for member in members {
                let spec = match &self.graph.rule(*member).expect("member exists").kind {
                    AtomicRuleKind::Join(spec) => spec.clone(),
                    AtomicRuleKind::Trigger { .. } => unreachable!("dependents are join rules"),
                };
                for side in [Side::Left, Side::Right] {
                    let input = spec.input(side);
                    let Some(uris) = delta.get(&input.rule) else {
                        continue;
                    };
                    let other_rule = spec.input(side.other()).rule;
                    let other_class = spec.input(side.other()).class.clone();
                    for uri in uris {
                        self.stats.join_evaluations += 1;
                        let counterparts: Vec<String> = if self.config.use_rule_groups {
                            match cache.get(&(side, uri.clone())) {
                                Some(hit) => {
                                    self.stats.probe_cache_hits += 1;
                                    hit.clone()
                                }
                                None => {
                                    let fresh = self.probe_counterparts(
                                        &spec.pred,
                                        side,
                                        uri,
                                        &other_class,
                                    )?;
                                    cache.insert((side, uri.clone()), fresh.clone());
                                    fresh
                                }
                            }
                        } else {
                            self.probe_counterparts(&spec.pred, side, uri, &other_class)?
                        };
                        for cu in counterparts {
                            if BaseStore::result_contains(self.db(), other_rule, &cu)? {
                                let reg = if spec.register == side {
                                    uri.clone()
                                } else {
                                    cu.clone()
                                };
                                candidates.push((reg, *member));
                            }
                        }
                    }
                }
            }
        }
        Ok(candidates)
    }

    /// The three read-heavy phases of the parallel join evaluation
    /// (DESIGN.md §5): enumerate one *task* per (member, side) with delta
    /// input — sequentially, in canonical order — plus the distinct
    /// counterpart probes the group shares; run each distinct probe once
    /// across the pool; then evaluate the tasks in parallel. Task results
    /// concatenate in task order and each task walks its delta slice in
    /// order, reproducing the sequential candidate order exactly.
    ///
    /// Tasks — not individual (member, side, uri) lookups — are the unit
    /// of parallelism on purpose: shared triggers can fan a group out to
    /// `members × delta` lookups (10⁸ at the 100k-rule benchmark), and
    /// materializing per-lookup state costs more than the lookups. Per
    /// task the only state is a borrow of the delta slice; stats come out
    /// of the enumeration arithmetic (hits = lookups − distinct probes,
    /// exactly the sequential cache accounting).
    fn join_candidates_parallel(
        &mut self,
        delta: &HashMap<RuleId, Vec<String>>,
        groups: &BTreeMap<GroupId, BTreeSet<RuleId>>,
    ) -> Result<Vec<(String, RuleId)>> {
        // phase 1: enumerate tasks and the distinct probes they share
        struct Task<'a> {
            member: RuleId,
            register: Side,
            side: Side,
            gid: GroupId,
            uris: &'a [String],
            other_rule: RuleId,
            pred: JoinPred,
            other_class: String,
        }
        let mut tasks: Vec<Task> = Vec::new();
        let mut probes: Vec<(JoinPred, Side, String, String)> = Vec::new();
        // (group, side) → uri → index into `probes`
        let mut probe_index: HashMap<(GroupId, Side), HashMap<&str, usize>> = HashMap::new();
        // (group, side) → input rules whose delta is already in the probe
        // set; members sharing an input contribute no new probes
        let mut merged: HashMap<(GroupId, Side), HashSet<RuleId>> = HashMap::new();
        for (gid, members) in groups {
            for member in members {
                let spec = match &self.graph.rule(*member).expect("member exists").kind {
                    AtomicRuleKind::Join(spec) => spec.clone(),
                    AtomicRuleKind::Trigger { .. } => unreachable!("dependents are join rules"),
                };
                for side in [Side::Left, Side::Right] {
                    let input = spec.input(side);
                    let Some(uris) = delta.get(&input.rule) else {
                        continue;
                    };
                    let other_rule = spec.input(side.other()).rule;
                    let other_class = spec.input(side.other()).class.clone();
                    self.stats.join_evaluations += uris.len() as u64;
                    if self.config.use_rule_groups {
                        // the probe depends only on (side, uri) within a
                        // group: all members share the predicate shape and
                        // classes. Every lookup beyond the first of its
                        // (side, uri) is a cache hit, as in the sequential
                        // per-group cache.
                        if merged.entry((*gid, side)).or_default().insert(input.rule) {
                            let index = probe_index.entry((*gid, side)).or_default();
                            for uri in uris {
                                if index.contains_key(uri.as_str()) {
                                    self.stats.probe_cache_hits += 1;
                                } else {
                                    probes.push((
                                        spec.pred.clone(),
                                        side,
                                        uri.clone(),
                                        other_class.clone(),
                                    ));
                                    index.insert(uri.as_str(), probes.len() - 1);
                                }
                            }
                        } else {
                            self.stats.probe_cache_hits += uris.len() as u64;
                        }
                    } else {
                        // ungrouped mode probes once per lookup (no cache);
                        // the tasks execute those probes inline below
                        self.stats.probes_executed += uris.len() as u64;
                    }
                    tasks.push(Task {
                        member: *member,
                        register: spec.register,
                        side,
                        gid: *gid,
                        uris,
                        other_rule,
                        pred: spec.pred.clone(),
                        other_class,
                    });
                }
            }
        }
        self.stats.probes_executed += probes.len() as u64;

        // phase 2: run each distinct probe once (read-only, parallel)
        let probed = self.par_map(&probes, |(pred, side, uri, other_class)| {
            self.probe_counterparts_ro(pred, *side, uri, other_class)
        });
        let mut counterparts: Vec<Vec<String>> = Vec::with_capacity(probed.len());
        for p in probed {
            counterparts.push(p?);
        }

        // phase 3: evaluate every task (read-only, parallel)
        let use_groups = self.config.use_rule_groups;
        let candidate_parts = self.par_map(&tasks, |t| -> Result<Vec<(String, RuleId)>> {
            let mut part = Vec::new();
            let index = probe_index.get(&(t.gid, t.side));
            for uri in t.uris {
                let inline_probe;
                let cps: &[String] = if use_groups {
                    let idx = index.expect("task's probes were enumerated")[uri.as_str()];
                    &counterparts[idx]
                } else {
                    inline_probe =
                        self.probe_counterparts_ro(&t.pred, t.side, uri, &t.other_class)?;
                    &inline_probe
                };
                for cu in cps {
                    if BaseStore::result_contains(self.db(), t.other_rule, cu)? {
                        let reg = if t.register == t.side {
                            uri.clone()
                        } else {
                            cu.clone()
                        };
                        part.push((reg, t.member));
                    }
                }
            }
            Ok(part)
        });
        let mut candidates: Vec<(String, RuleId)> = Vec::new();
        for part in candidate_parts {
            candidates.extend(part?);
        }
        Ok(candidates)
    }

    /// Finds, for one resource on one side of a join predicate, the
    /// candidate counterpart resources on the other side (membership in the
    /// other input's results is checked by the caller).
    pub(crate) fn probe_counterparts(
        &mut self,
        pred: &JoinPred,
        side: Side,
        uri: &str,
        other_class: &str,
    ) -> Result<Vec<String>> {
        self.stats.probes_executed += 1;
        self.probe_counterparts_ro(pred, side, uri, other_class)
    }

    /// The read-only body of [`FilterEngine::probe_counterparts`] — shared
    /// `&self` so pool workers can probe concurrently; stats accounting
    /// stays with the callers.
    fn probe_counterparts_ro(
        &self,
        pred: &JoinPred,
        side: Side,
        uri: &str,
        other_class: &str,
    ) -> Result<Vec<String>> {
        let (my_prop, other_prop) = match side {
            Side::Left => (&pred.left_prop, &pred.right_prop),
            Side::Right => (&pred.right_prop, &pred.left_prop),
        };
        let my_values = BaseStore::values_of(self.db(), uri, my_prop)?;
        let holds = |other_value: &str, my_value: &str| match side {
            Side::Left => pred.value_matches(my_value, other_value),
            Side::Right => pred.value_matches(other_value, my_value),
        };
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let other_classes: Vec<String> = self.descendants_of(other_class).to_vec();
        for mv in &my_values {
            if pred.op == RuleOp::Eq {
                if other_prop == RDF_SUBJECT {
                    // reference fast path: the counterpart's URI is the value
                    if seen.insert(mv.clone()) {
                        out.push(mv.clone());
                    }
                } else {
                    for oc in &other_classes {
                        for cu in BaseStore::resources_with_value(self.db(), oc, other_prop, mv)? {
                            if seen.insert(cu.clone()) {
                                out.push(cu);
                            }
                        }
                    }
                }
            } else {
                // non-equality: scan the (class, property) partitions
                for oc in &other_classes {
                    for (cu, value) in BaseStore::partition(self.db(), oc, other_prop)? {
                        if holds(&value, mv) && seen.insert(cu.clone()) {
                            out.push(cu);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Full (non-incremental) evaluation: subscription backfill
    // ------------------------------------------------------------------

    /// Evaluates an atomic rule against the full base data (used when a new
    /// subscription arrives and must see already-registered metadata, and to
    /// backfill materializations).
    pub(crate) fn eval_rule_full(
        &mut self,
        rule: RuleId,
        memo: &mut HashMap<RuleId, Vec<String>>,
    ) -> Result<Vec<String>> {
        if let Some(hit) = memo.get(&rule) {
            return Ok(hit.clone());
        }
        if self.materialized.contains(&rule) {
            let results = BaseStore::results_of(self.db(), rule)?;
            memo.insert(rule, results.clone());
            return Ok(results);
        }
        let kind = self
            .graph
            .rule(rule)
            .expect("evaluating unknown rule")
            .kind
            .clone();
        let results: Vec<String> = match &kind {
            AtomicRuleKind::Trigger { class, pred: None } => {
                let mut out = Vec::new();
                for c in self.descendants_of(class).to_vec() {
                    out.extend(BaseStore::resources_of_class(self.db(), &c)?);
                }
                out
            }
            AtomicRuleKind::Trigger {
                class,
                pred: Some(p),
            } => {
                let mut out = Vec::new();
                for c in self.descendants_of(class).to_vec() {
                    if p.op == TriggerOp::EqStr {
                        out.extend(BaseStore::resources_with_value(
                            self.db(),
                            &c,
                            &p.property,
                            &p.value,
                        )?);
                    } else {
                        for (uri, value) in BaseStore::partition(self.db(), &c, &p.property)? {
                            if p.op.matches(&value, &p.value) {
                                out.push(uri);
                            }
                        }
                    }
                }
                out
            }
            AtomicRuleKind::Join(spec) => self.eval_join_full(spec, memo)?,
        };
        let mut results = results;
        results.sort();
        results.dedup();
        memo.insert(rule, results.clone());
        Ok(results)
    }

    fn eval_join_full(
        &mut self,
        spec: &JoinSpec,
        memo: &mut HashMap<RuleId, Vec<String>>,
    ) -> Result<Vec<String>> {
        let left = self.eval_rule_full(spec.left.rule, memo)?;
        let right: HashSet<String> = self
            .eval_rule_full(spec.right.rule, memo)?
            .into_iter()
            .collect();
        let mut out = Vec::new();
        for uri in &left {
            let counterparts =
                self.probe_counterparts(&spec.pred, Side::Left, uri, &spec.right.class)?;
            let matched: Vec<&String> = counterparts
                .iter()
                .filter(|cu| right.contains(*cu))
                .collect();
            if matched.is_empty() {
                continue;
            }
            match spec.register {
                Side::Left => out.push(uri.clone()),
                Side::Right => out.extend(matched.into_iter().cloned()),
            }
        }
        Ok(out)
    }

    /// Guarantees that a rule's full results are materialized (it gained a
    /// dependent join rule).
    fn ensure_materialized(&mut self, rule: RuleId) -> Result<()> {
        if self.materialized.contains(&rule) {
            return Ok(());
        }
        let mut memo = HashMap::new();
        let results = self.eval_rule_full(rule, &mut memo)?;
        for uri in results {
            BaseStore::result_insert(&mut self.store, rule, &uri)?;
        }
        self.materialized.insert(rule);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Point queries used by the update protocol and the system tier
    // ------------------------------------------------------------------

    /// Checks whether one resource currently matches one atomic rule,
    /// without touching materializations.
    pub fn check_match(&mut self, rule: RuleId, uri: &str) -> Result<bool> {
        let mut memo = HashMap::new();
        self.check_match_memo(rule, uri, &mut memo)
    }

    fn check_match_memo(
        &mut self,
        rule: RuleId,
        uri: &str,
        memo: &mut HashMap<(RuleId, String), bool>,
    ) -> Result<bool> {
        if let Some(&hit) = memo.get(&(rule, uri.to_owned())) {
            return Ok(hit);
        }
        // seed to break cycles defensively (the graph is acyclic by
        // construction, but memoization makes this loop-proof)
        memo.insert((rule, uri.to_owned()), false);
        let kind = self
            .graph
            .rule(rule)
            .expect("checking unknown rule")
            .kind
            .clone();
        let result = match &kind {
            AtomicRuleKind::Trigger { class, pred } => {
                let class_ok = match BaseStore::resource_class(self.db(), uri)? {
                    Some(actual) => self.schema.is_subclass_of(&actual, class),
                    None => false,
                };
                class_ok
                    && match pred {
                        None => true,
                        Some(p) => BaseStore::values_of(self.db(), uri, &p.property)?
                            .iter()
                            .any(|v| p.op.matches(v, &p.value)),
                    }
            }
            AtomicRuleKind::Join(spec) => {
                let reg = spec.register_input().clone();
                let other = spec.input(spec.register.other()).clone();
                if !self.check_match_memo(reg.rule, uri, memo)? {
                    false
                } else {
                    let counterparts =
                        self.probe_counterparts(&spec.pred, spec.register, uri, &other.class)?;
                    let mut ok = false;
                    for cu in counterparts {
                        if self.check_match_memo(other.rule, &cu, memo)? {
                            ok = true;
                            break;
                        }
                    }
                    ok
                }
            }
        };
        memo.insert((rule, uri.to_owned()), result);
        Ok(result)
    }

    /// Computes the strong-reference closure of a resource set (paper §2.4):
    /// the seeds plus every resource transitively reachable over properties
    /// the schema marks as strong references.
    pub fn strong_closure(&self, seeds: &[String]) -> Result<Vec<String>> {
        let mut visited: BTreeSet<String> = BTreeSet::new();
        let mut stack: Vec<String> = seeds.to_vec();
        while let Some(uri) = stack.pop() {
            if !visited.insert(uri.clone()) {
                continue;
            }
            let Some(class) = BaseStore::resource_class(self.db(), &uri)? else {
                continue;
            };
            for (prop, value) in BaseStore::statements_of(self.db(), &uri)? {
                if self.schema.ref_kind(&class, &prop) == Some(RefKind::Strong)
                    && BaseStore::resource_exists(self.db(), &value)?
                {
                    stack.push(value);
                }
            }
        }
        Ok(visited.into_iter().collect())
    }

    /// Resources that transitively *strong-reference* `uri` (the reverse
    /// walk used to find whose cached closure an update invalidates),
    /// including `uri` itself.
    pub fn strong_referrers(&self, uri: &str) -> Result<Vec<String>> {
        let mut visited: BTreeSet<String> = BTreeSet::new();
        let mut stack: Vec<String> = vec![uri.to_owned()];
        // collect all (class, property) pairs that are strong references
        let mut strong_props: Vec<(String, String)> = Vec::new();
        for class in self.schema.class_names() {
            if let Some(def) = self.schema.class(class) {
                for p in &def.properties {
                    if let mdv_rdf::Range::Class {
                        kind: RefKind::Strong,
                        ..
                    } = p.range
                    {
                        // instances of subclasses carry the property too
                        for sub in self.descendants_of(class) {
                            strong_props.push((sub.clone(), p.name.clone()));
                        }
                    }
                }
            }
        }
        while let Some(cur) = stack.pop() {
            if !visited.insert(cur.clone()) {
                continue;
            }
            for (class, prop) in &strong_props {
                for referrer in BaseStore::resources_with_value(self.db(), class, prop, &cur)? {
                    stack.push(referrer);
                }
            }
        }
        Ok(visited.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::{Term, UriRef};

    pub(crate) fn paper_schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .int("synthValue")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    pub(crate) fn figure1_document() -> Document {
        Document::new("doc.rdf")
            .with_resource(
                Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider")
                    .with("serverHost", Term::literal("pirates.uni-passau.de"))
                    .with("serverPort", Term::literal("5874"))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new("doc.rdf", "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new("doc.rdf", "info"), "ServerInformation")
                    .with("memory", Term::literal("92"))
                    .with("cpu", Term::literal("600")),
            )
    }

    fn provider_doc(i: usize, host: &str, memory: i64, cpu: i64) -> Document {
        let uri = format!("doc{i}.rdf");
        Document::new(uri.clone())
            .with_resource(
                Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                    .with("serverHost", Term::literal(host))
                    .with("serverPort", Term::literal("4000"))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new(&uri, "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                    .with("memory", Term::literal(memory.to_string()))
                    .with("cpu", Term::literal(cpu.to_string())),
            )
    }

    #[test]
    fn example1_rule_matches_figure1_document() {
        let mut e = FilterEngine::new(paper_schema());
        let (sub, initial) = e
            .register_subscription(
                "search CycleProvider c register c \
                 where c.serverHost contains 'uni-passau.de' \
                 and c.serverInformation.memory > 64",
            )
            .unwrap();
        assert!(initial.is_empty());
        let pubs = e.register_document(&figure1_document()).unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].subscription, sub);
        assert_eq!(pubs[0].added, vec!["doc.rdf#host".to_owned()]);
    }

    #[test]
    fn figure9_trace_shape() {
        // §3.3.1 rule base: memory>64 AND cpu>500 AND contains — three
        // triggers, an identity join, a reference join. The Figure 1
        // document produces the Figure 9 iteration pattern.
        let mut e = FilterEngine::new(paper_schema());
        e.register_subscription(
            "search CycleProvider c, ServerInformation s register c \
             where c.serverHost contains 'uni-passau.de' \
             and c.serverInformation = s \
             and s.memory > 64 and s.cpu > 500",
        )
        .unwrap();
        let (pubs, run) = e.register_batch_traced(&[figure1_document()]).unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].added, vec!["doc.rdf#host".to_owned()]);
        // initial iteration: 3 trigger matches (info×2, host×1);
        // iteration 1: the identity join on info; iteration 2: the end join
        assert_eq!(run.iterations.len(), 3);
        assert_eq!(run.iterations[0].len(), 3);
        assert_eq!(run.iterations[1].len(), 1);
        assert_eq!(run.iterations[1][0].0, "doc.rdf#info");
        assert_eq!(run.iterations[2].len(), 1);
        assert_eq!(run.iterations[2][0].0, "doc.rdf#host");
        assert_eq!(run.end_matches.len(), 1);
    }

    #[test]
    fn non_matching_document_produces_nothing() {
        let mut e = FilterEngine::new(paper_schema());
        e.register_subscription(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .unwrap();
        // memory 32 < 64
        let pubs = e
            .register_document(&provider_doc(1, "x.example.org", 32, 600))
            .unwrap();
        assert!(pubs.is_empty());
    }

    #[test]
    fn oid_rule_matches_single_resource() {
        let mut e = FilterEngine::new(paper_schema());
        let (sub, _) = e
            .register_subscription("search CycleProvider c register c where c = 'doc1.rdf#host'")
            .unwrap();
        let pubs = e
            .register_batch(&[
                provider_doc(1, "a.org", 128, 600),
                provider_doc(2, "b.org", 128, 600),
            ])
            .unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].subscription, sub);
        assert_eq!(pubs[0].added, vec!["doc1.rdf#host".to_owned()]);
    }

    #[test]
    fn backfill_matches_existing_data() {
        let mut e = FilterEngine::new(paper_schema());
        e.register_document(&provider_doc(1, "a.uni-passau.de", 128, 600))
            .unwrap();
        e.register_document(&provider_doc(2, "b.org", 128, 600))
            .unwrap();
        let (_, initial) = e
            .register_subscription(
                "search CycleProvider c register c \
                 where c.serverHost contains 'uni-passau.de' \
                 and c.serverInformation.memory > 64",
            )
            .unwrap();
        assert_eq!(initial, vec!["doc1.rdf#host".to_owned()]);
    }

    #[test]
    fn shared_rules_notify_both_subscriptions() {
        let mut e = FilterEngine::new(paper_schema());
        let (s1, _) = e
            .register_subscription(
                "search CycleProvider c register c where c.serverInformation.memory > 64",
            )
            .unwrap();
        let (s2, _) = e
            .register_subscription(
                "search CycleProvider c register c where c.serverInformation.memory > 64",
            )
            .unwrap();
        assert_ne!(s1, s2);
        let pubs = e
            .register_document(&provider_doc(1, "a.org", 128, 600))
            .unwrap();
        assert_eq!(pubs.len(), 2);
        assert!(pubs
            .iter()
            .all(|p| p.added == vec!["doc1.rdf#host".to_owned()]));
    }

    #[test]
    fn or_rule_matches_union() {
        let mut e = FilterEngine::new(paper_schema());
        let (sub, _) = e
            .register_subscription(
                "search CycleProvider c register c \
                 where c.serverHost contains 'alpha' or c.serverHost contains 'beta'",
            )
            .unwrap();
        let pubs = e
            .register_batch(&[
                provider_doc(1, "alpha.org", 1, 1),
                provider_doc(2, "beta.org", 1, 1),
                provider_doc(3, "gamma.org", 1, 1),
            ])
            .unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].subscription, sub);
        assert_eq!(
            pubs[0].added,
            vec!["doc1.rdf#host".to_owned(), "doc2.rdf#host".to_owned()]
        );
    }

    #[test]
    fn unregister_retracts_rules_and_stops_notifications() {
        let mut e = FilterEngine::new(paper_schema());
        let (s1, _) = e
            .register_subscription(
                "search CycleProvider c register c where c.serverInformation.memory > 64",
            )
            .unwrap();
        assert!(!e.graph().is_empty());
        e.unregister_subscription(s1).unwrap();
        assert!(e.graph().is_empty());
        assert_eq!(e.db().table("AtomicRules").unwrap().len(), 0);
        let pubs = e
            .register_document(&provider_doc(1, "a.org", 128, 600))
            .unwrap();
        assert!(pubs.is_empty());
        assert!(matches!(
            e.unregister_subscription(s1),
            Err(Error::Subscription(_))
        ));
    }

    #[test]
    fn unregister_keeps_shared_rules() {
        let mut e = FilterEngine::new(paper_schema());
        let (s1, _) = e
            .register_subscription(
                "search CycleProvider c register c where c.serverInformation.memory > 64",
            )
            .unwrap();
        let (s2, _) = e
            .register_subscription(
                "search CycleProvider c register c where c.serverInformation.cpu > 500",
            )
            .unwrap();
        e.unregister_subscription(s1).unwrap();
        // s2 still works
        let pubs = e
            .register_document(&provider_doc(1, "a.org", 32, 600))
            .unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].subscription, s2);
    }

    #[test]
    fn duplicate_document_registration_rejected() {
        let mut e = FilterEngine::new(paper_schema());
        let doc = provider_doc(1, "a.org", 128, 600);
        e.register_document(&doc).unwrap();
        assert!(matches!(e.register_document(&doc), Err(Error::Document(_))));
    }

    #[test]
    fn invalid_document_rejected_atomically() {
        let mut e = FilterEngine::new(paper_schema());
        let bad = Document::new("bad.rdf")
            .with_resource(Resource::new(UriRef::new("bad.rdf", "x"), "UnknownClass"));
        assert!(e.register_document(&bad).is_err());
        assert_eq!(e.db().table("Resources").unwrap().len(), 0);
    }

    #[test]
    fn strong_closure_follows_strong_refs() {
        let mut e = FilterEngine::new(paper_schema());
        e.register_document(&figure1_document()).unwrap();
        let closure = e.strong_closure(&["doc.rdf#host".to_owned()]).unwrap();
        assert_eq!(
            closure,
            vec!["doc.rdf#host".to_owned(), "doc.rdf#info".to_owned()]
        );
        // the reverse walk
        let referrers = e.strong_referrers("doc.rdf#info").unwrap();
        assert_eq!(
            referrers,
            vec!["doc.rdf#host".to_owned(), "doc.rdf#info".to_owned()]
        );
    }

    #[test]
    fn check_match_agrees_with_filter() {
        let mut e = FilterEngine::new(paper_schema());
        let (sub, _) = e
            .register_subscription(
                "search CycleProvider c register c \
                 where c.serverHost contains 'uni-passau.de' \
                 and c.serverInformation.memory > 64",
            )
            .unwrap();
        e.register_batch(&[
            provider_doc(1, "a.uni-passau.de", 128, 600),
            provider_doc(2, "b.org", 128, 600),
            provider_doc(3, "c.uni-passau.de", 32, 600),
        ])
        .unwrap();
        let end = e.subscription(sub).unwrap().end_rules[0];
        assert!(e.check_match(end, "doc1.rdf#host").unwrap());
        assert!(
            !e.check_match(end, "doc2.rdf#host").unwrap(),
            "host does not match"
        );
        assert!(
            !e.check_match(end, "doc3.rdf#host").unwrap(),
            "memory too small"
        );
        assert!(!e.check_match(end, "doc1.rdf#info").unwrap(), "wrong class");
    }

    #[test]
    fn rule_groups_share_probes() {
        let docs: Vec<Document> = (0..20)
            .map(|i| provider_doc(i, "a.org", 100 + i as i64, 600))
            .collect();
        let rules = [
            "search CycleProvider c register c where c.serverInformation.memory > 64",
            "search CycleProvider c register c where c.serverInformation.cpu > 100",
        ];

        let mut grouped = FilterEngine::new(paper_schema());
        for r in rules {
            grouped.register_subscription(r).unwrap();
        }
        let mut ungrouped = FilterEngine::with_config(
            paper_schema(),
            FilterConfig {
                use_rule_groups: false,
                ..FilterConfig::default()
            },
        );
        for r in rules {
            ungrouped.register_subscription(r).unwrap();
        }

        let pubs_a = grouped.register_batch(&docs).unwrap();
        let pubs_b = ungrouped.register_batch(&docs).unwrap();
        // identical results ...
        assert_eq!(pubs_a, pubs_b);
        // ... but the grouped engine shared probes
        assert!(grouped.stats().probe_cache_hits > 0);
        assert_eq!(ungrouped.stats().probe_cache_hits, 0);
        assert!(grouped.stats().probes_executed < ungrouped.stats().probes_executed);
    }

    #[test]
    fn subclass_instances_match_superclass_rules() {
        let schema = RdfSchema::builder()
            .class("Provider", |c| c.str("name"))
            .class("CycleProvider", |c| c.extends("Provider").int("port"))
            .build()
            .unwrap();
        let mut e = FilterEngine::new(schema);
        let (sub, _) = e
            .register_subscription("search Provider p register p where p.name contains 'x'")
            .unwrap();
        let doc = Document::new("d.rdf").with_resource(
            Resource::new(UriRef::new("d.rdf", "cp"), "CycleProvider")
                .with("name", Term::literal("ax"))
                .with("port", Term::literal("80")),
        );
        let pubs = e.register_document(&doc).unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].subscription, sub);
        assert_eq!(pubs[0].added, vec!["d.rdf#cp".to_owned()]);
    }

    #[test]
    fn batch_equals_sequential_registration() {
        let docs: Vec<Document> = (0..10)
            .map(|i| provider_doc(i, if i % 2 == 0 { "even.org" } else { "odd.org" }, 100, 600))
            .collect();
        let rule = "search CycleProvider c register c where c.serverHost contains 'even' \
             and c.serverInformation.memory > 64";

        let mut batch = FilterEngine::new(paper_schema());
        batch.register_subscription(rule).unwrap();
        let mut batch_added: Vec<String> = batch
            .register_batch(&docs)
            .unwrap()
            .into_iter()
            .flat_map(|p| p.added)
            .collect();
        batch_added.sort();

        let mut seq = FilterEngine::new(paper_schema());
        seq.register_subscription(rule).unwrap();
        let mut seq_added = Vec::new();
        for d in &docs {
            seq_added.extend(
                seq.register_document(d)
                    .unwrap()
                    .into_iter()
                    .flat_map(|p| p.added),
            );
        }
        seq_added.sort();
        assert_eq!(batch_added, seq_added);
        assert_eq!(batch_added.len(), 5);
    }

    #[test]
    fn unsatisfiable_rule_rejected_but_disjunct_skipped() {
        let mut e = FilterEngine::new(paper_schema());
        assert!(matches!(
            e.register_subscription("search CycleProvider c register c where 1 = 2"),
            Err(Error::Rule(mdv_rulelang::Error::Unsatisfiable))
        ));
        // one satisfiable disjunct is enough
        let (_, _) = e
            .register_subscription(
                "search CycleProvider c register c \
                 where c.serverPort > 0 or c.serverPort < 0 and 1 = 2",
            )
            .unwrap();
    }

    #[test]
    fn cross_document_references_join() {
        // the CycleProvider and its ServerInformation live in two documents
        let mut e = FilterEngine::new(paper_schema());
        e.register_subscription(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .unwrap();
        let info = Document::new("info.rdf").with_resource(
            Resource::new(UriRef::new("info.rdf", "i"), "ServerInformation")
                .with("memory", Term::literal("128"))
                .with("cpu", Term::literal("600")),
        );
        let provider = Document::new("prov.rdf").with_resource(
            Resource::new(UriRef::new("prov.rdf", "p"), "CycleProvider")
                .with("serverHost", Term::literal("a.org"))
                .with("serverPort", Term::literal("1"))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new("info.rdf", "i")),
                ),
        );
        // register the referenced document first, then the referencing one
        assert!(e.register_document(&info).unwrap().is_empty());
        let pubs = e.register_document(&provider).unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].added, vec!["prov.rdf#p".to_owned()]);

        // and in the opposite order in a fresh engine: the provider arrives
        // before its ServerInformation — the later registration of the
        // ServerInformation must trigger the join (paper §3.1)
        let mut e2 = FilterEngine::new(paper_schema());
        e2.register_subscription(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .unwrap();
        assert!(e2.register_document(&provider).unwrap().is_empty());
        let pubs = e2.register_document(&info).unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].added, vec!["prov.rdf#p".to_owned()]);
    }
}
