//! The naive publish & subscribe baseline: every subscription rule is
//! evaluated against every newly registered resource — no decomposition, no
//! triggering-rule index, no shared atomic rules, no materialization.
//!
//! This is the strategy the paper's filter is designed to avoid ("To avoid
//! the evaluation of the possibly huge set of *all* subscription rules",
//! §3). Each rule is still evaluated with a reasonable per-rule plan
//! (reference joins follow the reference instead of scanning), so the
//! comparison isolates the cost of *rule-base traversal*, not of a
//! deliberately bad executor.
//!
//! Scope: insert-only workloads in which referenced resources arrive in the
//! same batch or earlier (the paper's benchmark shape). Updates and
//! deletions are out of scope for the baseline.

use std::collections::BTreeMap;

use mdv_rdf::{Document, RdfSchema};
use mdv_relstore::Database;
use mdv_rulelang::{normalize, parse_rule, split_or, typecheck, NormalizedRule};

use crate::error::{Error, Result};
use crate::registry::{assemble_publications, Publication, SubscriptionId};
use crate::store::{create_base_tables, BaseStore};

/// The baseline engine. Shares the base-table layout with
/// [`crate::FilterEngine`] so measured differences come from the matching
/// strategy alone.
#[derive(Debug, Clone)]
pub struct NaiveEngine {
    schema: RdfSchema,
    db: Database,
    /// subscription → the conjunctive rules (after `or`-split).
    rules: BTreeMap<SubscriptionId, Vec<NormalizedRule>>,
    next_sub: u64,
    /// Total rule evaluations performed (for the ablation report).
    pub evaluations: u64,
}

impl NaiveEngine {
    pub fn new(schema: RdfSchema) -> Self {
        let mut db = Database::new();
        create_base_tables(&mut db).expect("fresh database accepts base tables");
        NaiveEngine {
            schema,
            db,
            rules: BTreeMap::new(),
            next_sub: 0,
            evaluations: 0,
        }
    }

    pub fn rule_count(&self) -> usize {
        self.rules.values().map(|v| v.len()).sum()
    }

    pub fn register_subscription(&mut self, rule_text: &str) -> Result<SubscriptionId> {
        let rule = parse_rule(rule_text)?;
        let mut conjs = Vec::new();
        for conj in split_or(&rule) {
            let normalized = match normalize(&conj, &self.schema) {
                Ok(n) => n,
                Err(mdv_rulelang::Error::Unsatisfiable) => continue,
                Err(e) => return Err(e.into()),
            };
            typecheck(&normalized, &self.schema)?;
            conjs.push(normalized);
        }
        if conjs.is_empty() {
            return Err(mdv_rulelang::Error::Unsatisfiable.into());
        }
        let id = SubscriptionId(self.next_sub);
        self.next_sub += 1;
        self.rules.insert(id, conjs);
        Ok(id)
    }

    /// Registers a batch and evaluates **every** rule against every new
    /// resource whose class matches the rule's register class.
    pub fn register_batch(&mut self, docs: &[Document]) -> Result<Vec<Publication>> {
        for doc in docs {
            self.schema.validate(doc)?;
            for res in doc.resources() {
                if BaseStore::resource_exists(&self.db, res.uri().as_str())? {
                    return Err(Error::Document(format!(
                        "resource '{}' is already registered",
                        res.uri()
                    )));
                }
            }
        }
        let mut new_resources: Vec<(String, String)> = Vec::new(); // (uri, class)
        for doc in docs {
            for res in doc.resources() {
                BaseStore::insert_resource(&mut self.db, res, doc.uri())?;
                new_resources.push((res.uri().to_string(), res.class().to_owned()));
            }
        }
        let mut pubs: BTreeMap<SubscriptionId, Publication> = BTreeMap::new();
        let rules = self.rules.clone();
        for (sub, conjs) in &rules {
            for conj in conjs {
                let register_class = conj.register_class();
                for (uri, class) in &new_resources {
                    if !self.schema.is_subclass_of(class, register_class) {
                        continue;
                    }
                    self.evaluations += 1;
                    if self.matches(conj, uri)? {
                        pubs.entry(*sub)
                            .or_insert_with(|| Publication::new(*sub))
                            .added
                            .push(uri.clone());
                    }
                }
            }
        }
        Ok(assemble_publications(pubs))
    }

    /// Evaluates one conjunctive rule with the register variable bound to
    /// `uri` (delegates to the shared direct evaluator).
    fn matches(&self, rule: &NormalizedRule, uri: &str) -> Result<bool> {
        crate::query_eval::rule_matches(&self.db, &self.schema, rule, uri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::{Resource, Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn doc(i: usize, host: &str, memory: i64) -> Document {
        let uri = format!("doc{i}.rdf");
        Document::new(uri.clone())
            .with_resource(
                Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                    .with("serverHost", Term::literal(host))
                    .with("serverPort", Term::literal("1"))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new(&uri, "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                    .with("memory", Term::literal(memory.to_string()))
                    .with("cpu", Term::literal("600")),
            )
    }

    #[test]
    fn naive_matches_path_rule() {
        let mut e = NaiveEngine::new(schema());
        let sub = e
            .register_subscription(
                "search CycleProvider c register c where c.serverInformation.memory > 64",
            )
            .unwrap();
        let pubs = e
            .register_batch(&[doc(1, "a.org", 128), doc(2, "b.org", 32)])
            .unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].subscription, sub);
        assert_eq!(pubs[0].added, vec!["doc1.rdf#host".to_owned()]);
    }

    #[test]
    fn naive_agrees_with_filter_engine() {
        let rules = [
            "search CycleProvider c register c where c = 'doc3.rdf#host'",
            "search CycleProvider c register c where c.serverHost contains 'even'",
            "search CycleProvider c register c where c.serverInformation.memory > 100",
            "search ServerInformation s register s where s.memory <= 50",
            "search CycleProvider c, ServerInformation s register c \
             where c.serverInformation = s and s.memory > 10 and s.cpu >= 600",
        ];
        let docs: Vec<Document> = (0..12)
            .map(|i| {
                doc(
                    i,
                    if i % 2 == 0 { "even.org" } else { "odd.org" },
                    (i as i64) * 20,
                )
            })
            .collect();

        let mut filter = crate::FilterEngine::new(schema());
        let mut naive = NaiveEngine::new(schema());
        for r in rules {
            filter.register_subscription(r).unwrap();
            naive.register_subscription(r).unwrap();
        }
        let a = filter.register_batch(&docs).unwrap();
        let b = naive.register_batch(&docs).unwrap();
        assert_eq!(a, b);
        assert!(naive.evaluations > 0);
    }

    #[test]
    fn evaluation_count_scales_with_rule_base() {
        // the defining property of the baseline: work grows with the rule
        // base even when rules cannot match
        let mut e = NaiveEngine::new(schema());
        for i in 0..50 {
            e.register_subscription(&format!(
                "search CycleProvider c register c where c = 'nothing{i}.rdf#x'"
            ))
            .unwrap();
        }
        e.register_batch(&[doc(1, "a.org", 1)]).unwrap();
        assert_eq!(
            e.evaluations, 50,
            "every rule evaluated against the new CycleProvider"
        );
    }

    #[test]
    fn duplicate_resource_rejected() {
        let mut e = NaiveEngine::new(schema());
        e.register_batch(&[doc(1, "a.org", 1)]).unwrap();
        assert!(e.register_batch(&[doc(1, "a.org", 1)]).is_err());
    }
}
