//! Graphviz (DOT) export of the global dependency graph — the programmatic
//! analog of the paper's Figures 5 and 6 (dependency trees and rule groups).

use std::fmt::Write as _;

use crate::atoms::{AtomicRule, AtomicRuleKind};
use crate::depgraph::DepGraph;

/// Renders the dependency graph in Graphviz DOT syntax. Triggering rules
/// are boxes, join rules are ellipses, rule groups become clusters, and
/// edges point from inputs to the join rules consuming them (the direction
/// data flows during filtering).
pub fn to_dot(graph: &DepGraph) -> String {
    let mut out = String::from("digraph dependency_graph {\n  rankdir=BT;\n");
    // group join rules into cluster subgraphs
    let mut grouped: std::collections::BTreeMap<u64, Vec<&AtomicRule>> =
        std::collections::BTreeMap::new();
    let mut triggers: Vec<&AtomicRule> = Vec::new();
    for rule in graph.rules_sorted() {
        match rule.group {
            Some(gid) => grouped.entry(gid.0).or_default().push(rule),
            None => triggers.push(rule),
        }
    }
    for rule in &triggers {
        let label = trigger_label(rule);
        let _ = writeln!(
            out,
            "  r{} [shape=box, label=\"{}\"];",
            rule.id.0,
            escape(&label)
        );
    }
    for (gid, members) in &grouped {
        let _ = writeln!(out, "  subgraph cluster_group{gid} {{");
        let shape = graph
            .group_key(crate::atoms::GroupId(*gid))
            .map(|k| k.to_string())
            .unwrap_or_default();
        let _ = writeln!(out, "    label=\"group {gid}: {}\";", escape(&shape));
        for rule in members {
            let _ = writeln!(
                out,
                "    r{} [shape=ellipse, label=\"Rule {}\\n({})\"];",
                rule.id.0,
                rule.id,
                escape(&rule.type_class)
            );
        }
        let _ = writeln!(out, "  }}");
    }
    // edges: input → join
    for rule in graph.rules_sorted() {
        if let AtomicRuleKind::Join(spec) = &rule.kind {
            let _ = writeln!(out, "  r{} -> r{};", spec.left.rule.0, rule.id.0);
            let _ = writeln!(out, "  r{} -> r{};", spec.right.rule.0, rule.id.0);
        }
    }
    out.push_str("}\n");
    out
}

fn trigger_label(rule: &AtomicRule) -> String {
    match &rule.kind {
        AtomicRuleKind::Trigger { class, pred: None } => format!("Rule {}\\n{class}", rule.id),
        AtomicRuleKind::Trigger {
            class,
            pred: Some(p),
        } => {
            format!("Rule {}\\n{class}\\n{p}", rule.id)
        }
        AtomicRuleKind::Join(_) => unreachable!("triggers only"),
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FilterEngine;
    use mdv_rdf::RdfSchema;

    #[test]
    fn dot_renders_section_331_graph() {
        let schema = RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap();
        let mut e = FilterEngine::new(schema);
        e.register_subscription(
            "search CycleProvider c, ServerInformation s register c \
             where c.serverHost contains 'uni-passau.de' \
             and c.serverInformation = s \
             and s.memory > 64 and s.cpu > 500",
        )
        .unwrap();
        let dot = to_dot(e.graph());
        assert!(dot.starts_with("digraph dependency_graph"));
        // 3 trigger boxes, 2 join ellipses in 2 clusters, 4 edges
        assert_eq!(dot.matches("shape=box").count(), 3);
        assert_eq!(dot.matches("shape=ellipse").count(), 2);
        assert_eq!(dot.matches("subgraph cluster_group").count(), 2);
        assert_eq!(dot.matches(" -> ").count(), 4);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn shared_group_renders_one_cluster() {
        let schema = RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap();
        let mut e = FilterEngine::new(schema);
        e.register_subscription(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .unwrap();
        e.register_subscription(
            "search CycleProvider c register c where c.serverInformation.cpu > 500",
        )
        .unwrap();
        let dot = to_dot(e.graph());
        assert_eq!(
            dot.matches("subgraph cluster_group").count(),
            1,
            "one shared group"
        );
        assert_eq!(
            dot.matches("shape=ellipse").count(),
            2,
            "two member join rules"
        );
    }

    #[test]
    fn empty_graph_renders() {
        let dot = to_dot(&crate::DepGraph::new());
        assert!(dot.contains("digraph"));
    }
}
