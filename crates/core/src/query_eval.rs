//! Direct evaluation of normalized rules/queries against a base-table
//! database — no decomposition, no trigger indexes.
//!
//! Two consumers:
//! * the [`crate::NaiveEngine`] baseline, and
//! * the LMR query engine of the system tier, which evaluates MDV's
//!   declarative query language (grammatically identical to the rule
//!   language, paper §2.2) over the local cache.
//!
//! Evaluation binds the registered variable to a candidate resource and
//! backtracks over the remaining variables, deriving candidate sets from
//! equality predicates where possible (following references instead of
//! scanning).

use std::collections::HashMap;

use mdv_rdf::RdfSchema;
use mdv_relstore::Database;
use mdv_rulelang::{Const, NormOperand, NormPred, NormalizedRule, RuleOp};

use crate::atoms::{JoinPred, TriggerOp};
use crate::error::Result;
use crate::store::BaseStore;

/// All resources matching the rule's register variable, sorted and deduped.
pub fn evaluate(db: &Database, schema: &RdfSchema, rule: &NormalizedRule) -> Result<Vec<String>> {
    let register_class = rule.register_class();
    let mut out = Vec::new();
    for class in class_and_descendants(schema, register_class) {
        for uri in BaseStore::resources_of_class(db, &class)? {
            if rule_matches(db, schema, rule, &uri)? {
                out.push(uri);
            }
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Does `uri` match the rule's register variable?
pub fn rule_matches(
    db: &Database,
    schema: &RdfSchema,
    rule: &NormalizedRule,
    uri: &str,
) -> Result<bool> {
    // class membership of the register variable
    match BaseStore::resource_class(db, uri)? {
        Some(actual) if schema.is_subclass_of(&actual, rule.register_class()) => {}
        _ => return Ok(false),
    }
    let mut assignment: HashMap<&str, String> = HashMap::new();
    assignment.insert(&rule.register, uri.to_owned());
    backtrack(db, schema, rule, &mut assignment)
}

/// The class plus all transitive subclasses.
pub fn class_and_descendants(schema: &RdfSchema, class: &str) -> Vec<String> {
    schema
        .class_names()
        .into_iter()
        .filter(|c| schema.is_subclass_of(c, class))
        .map(str::to_owned)
        .collect()
}

fn backtrack<'r>(
    db: &Database,
    schema: &RdfSchema,
    rule: &'r NormalizedRule,
    assignment: &mut HashMap<&'r str, String>,
) -> Result<bool> {
    // all predicates whose variables are assigned must hold
    for pred in &rule.predicates {
        if let Some(holds) = eval_pred(db, pred, assignment)? {
            if !holds {
                return Ok(false);
            }
        }
    }
    let unassigned: Vec<&str> = rule
        .bindings
        .iter()
        .map(|b| b.var.as_str())
        .filter(|v| !assignment.contains_key(*v))
        .collect();
    let Some(&var) = unassigned.first() else {
        return Ok(true);
    };
    let class = rule.class_of(var).expect("bindings complete");
    let candidates = candidates_for(db, schema, rule, var, class, assignment)?;
    for cand in candidates {
        assignment.insert(var, cand);
        if backtrack(db, schema, rule, assignment)? {
            assignment.remove(var);
            return Ok(true);
        }
        assignment.remove(var);
    }
    Ok(false)
}

/// Candidate resources for `var`: derived from an equality predicate against
/// an assigned variable when possible, otherwise a class scan.
fn candidates_for(
    db: &Database,
    schema: &RdfSchema,
    rule: &NormalizedRule,
    var: &str,
    class: &str,
    assignment: &HashMap<&str, String>,
) -> Result<Vec<String>> {
    for pred in &rule.predicates {
        if pred.op != RuleOp::Eq {
            continue;
        }
        for (target, source) in [(&pred.lhs, &pred.rhs), (&pred.rhs, &pred.lhs)] {
            let Some(tv) = target.var() else { continue };
            if tv != var {
                continue;
            }
            let Some(sv) = source.var() else { continue };
            let Some(source_uri) = assignment.get(sv) else {
                continue;
            };
            let source_values = operand_values(db, source, source_uri)?;
            let mut out = Vec::new();
            match target {
                NormOperand::Subject(_) => {
                    for v in source_values {
                        if BaseStore::resource_exists(db, &v)? {
                            out.push(v);
                        }
                    }
                }
                NormOperand::Prop { prop, .. } => {
                    for c in class_and_descendants(schema, class) {
                        for v in &source_values {
                            out.extend(BaseStore::resources_with_value(db, &c, prop, v)?);
                        }
                    }
                }
                NormOperand::Const(_) => continue,
            }
            out.sort();
            out.dedup();
            return Ok(out);
        }
    }
    let mut out = Vec::new();
    for c in class_and_descendants(schema, class) {
        out.extend(BaseStore::resources_of_class(db, &c)?);
    }
    Ok(out)
}

/// Evaluates a predicate under a (possibly partial) assignment; `None` when
/// a referenced variable is not assigned yet.
fn eval_pred(
    db: &Database,
    pred: &NormPred,
    assignment: &HashMap<&str, String>,
) -> Result<Option<bool>> {
    let Some(lhs) = operand_values_opt(db, &pred.lhs, assignment)? else {
        return Ok(None);
    };
    let Some(rhs) = operand_values_opt(db, &pred.rhs, assignment)? else {
        return Ok(None);
    };
    // numeric-constant comparisons reconvert, matching the filter engine
    let numeric_const = matches!(&pred.rhs, NormOperand::Const(c) if c.is_numeric());
    let trigger_op = TriggerOp::classify(pred.op, numeric_const);
    for l in &lhs {
        for r in &rhs {
            let holds = match (&pred.rhs, trigger_op) {
                (NormOperand::Const(_), Some(op)) => op.matches(l, r),
                _ => JoinPred {
                    left_prop: String::new(),
                    op: pred.op,
                    right_prop: String::new(),
                }
                .value_matches(l, r),
            };
            if holds {
                return Ok(Some(true));
            }
        }
    }
    Ok(Some(false))
}

fn operand_values_opt(
    db: &Database,
    op: &NormOperand,
    assignment: &HashMap<&str, String>,
) -> Result<Option<Vec<String>>> {
    match op {
        NormOperand::Const(c) => Ok(Some(vec![const_lexical(c)])),
        other => match other.var().and_then(|v| assignment.get(v)) {
            Some(uri) => Ok(Some(operand_values(db, other, uri)?)),
            None => Ok(None),
        },
    }
}

fn operand_values(db: &Database, op: &NormOperand, uri: &str) -> Result<Vec<String>> {
    match op {
        NormOperand::Subject(_) => Ok(vec![uri.to_owned()]),
        NormOperand::Prop { prop, .. } => BaseStore::values_of(db, uri, prop),
        NormOperand::Const(c) => Ok(vec![const_lexical(c)]),
    }
}

fn const_lexical(c: &Const) -> String {
    c.lexical()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::create_base_tables;
    use mdv_rdf::{Resource, Term, UriRef};
    use mdv_rulelang::{normalize, parse_rule};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        create_base_tables(&mut db).unwrap();
        for (i, (host, memory)) in [
            ("a.uni-passau.de", 128),
            ("b.org", 128),
            ("c.uni-passau.de", 32),
        ]
        .iter()
        .enumerate()
        {
            let uri = format!("doc{i}.rdf");
            BaseStore::insert_resource(
                &mut db,
                &Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                    .with("serverHost", Term::literal(*host))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new(&uri, "info")),
                    ),
                &uri,
            )
            .unwrap();
            BaseStore::insert_resource(
                &mut db,
                &Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                    .with("memory", Term::literal(memory.to_string()))
                    .with("cpu", Term::literal("600")),
                &uri,
            )
            .unwrap();
        }
        db
    }

    fn run(query: &str) -> Vec<String> {
        let s = schema();
        let n = normalize(&parse_rule(query).unwrap(), &s).unwrap();
        evaluate(&db(), &s, &n).unwrap()
    }

    #[test]
    fn evaluate_join_query() {
        let hits = run("search CycleProvider c register c \
             where c.serverHost contains 'uni-passau.de' \
             and c.serverInformation.memory > 64");
        assert_eq!(hits, vec!["doc0.rdf#host".to_owned()]);
    }

    #[test]
    fn evaluate_class_scan() {
        assert_eq!(run("search ServerInformation s register s").len(), 3);
    }

    #[test]
    fn evaluate_registers_referenced_side() {
        // all ServerInformations of providers in uni-passau.de
        let hits = run("search ServerInformation s, CycleProvider c register s \
             where c.serverInformation = s and c.serverHost contains 'uni-passau.de'");
        assert_eq!(
            hits,
            vec!["doc0.rdf#info".to_owned(), "doc2.rdf#info".to_owned()]
        );
    }

    #[test]
    fn rule_matches_point_check() {
        let s = schema();
        let n = normalize(
            &parse_rule("search CycleProvider c register c where c.serverInformation.memory > 64")
                .unwrap(),
            &s,
        )
        .unwrap();
        let db = db();
        assert!(rule_matches(&db, &s, &n, "doc0.rdf#host").unwrap());
        assert!(!rule_matches(&db, &s, &n, "doc2.rdf#host").unwrap());
        assert!(
            !rule_matches(&db, &s, &n, "doc0.rdf#info").unwrap(),
            "wrong class"
        );
        assert!(!rule_matches(&db, &s, &n, "missing#x").unwrap());
    }
}
