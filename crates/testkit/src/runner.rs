//! The property runner: deterministic case iteration, panic capture, and
//! greedy choice-stream shrinking.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use mdv_runtime::rng::Prng;

use crate::gen::Gen;
use crate::source::Source;

/// `Ok(())` to pass a case, `Err(description)` to fail it. Panics inside
/// properties are caught and treated as failures too.
pub type TestResult = Result<(), String>;

/// Runner configuration. [`Config::from_env`] reads:
///
/// * `MDV_PROP_CASES` — cases per property (overrides per-property counts)
/// * `MDV_PROP_SEED`  — base seed of the run (decimal or `0x…` hex)
#[derive(Debug, Clone, Copy)]
pub struct Config {
    pub cases: u32,
    pub seed: u64,
    /// Upper bound on shrink candidate executions per failure.
    pub max_shrink_steps: u32,
    /// True when `MDV_PROP_CASES` pinned the case count.
    cases_from_env: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: 0x6d64_7600_0000_0001, // "mdv" — fixed so CI is reproducible
            max_shrink_steps: 4096,
            cases_from_env: false,
        }
    }
}

impl Config {
    pub fn from_env() -> Self {
        let mut config = Config::default();
        if let Some(cases) = parse_env_u64("MDV_PROP_CASES") {
            config.cases = cases.clamp(1, u32::MAX as u64) as u32;
            config.cases_from_env = true;
        }
        if let Some(seed) = parse_env_u64("MDV_PROP_SEED") {
            config.seed = seed;
        }
        config
    }

    /// Sets the per-property case count unless `MDV_PROP_CASES` pinned it.
    pub fn with_default_cases(mut self, cases: u32) -> Self {
        if !self.cases_from_env {
            self.cases = cases;
        }
        self
    }
}

fn parse_env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var} must be an integer, got '{raw}'"),
    }
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Silences the default panic printer for panics raised inside property
/// bodies on this thread (expected panics would otherwise spam the test
/// output once per shrink candidate). Other threads are unaffected.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_owned()
    }
}

fn run_case<F: Fn(&mut Source) -> TestResult>(body: &F, src: &mut Source) -> TestResult {
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| body(src)));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(panic_message(payload)),
    }
}

/// Runs `body` for `config.cases` deterministic cases, shrinking the
/// choice stream of the first failure. Panics with a report on failure.
///
/// This is the engine behind the [`crate::property!`] macro; call it
/// directly when a test wants a custom name or config.
pub fn run_property<F>(name: &str, config: Config, body: F)
where
    F: Fn(&mut Source) -> TestResult,
{
    install_quiet_hook();
    let mut seeds = Prng::seed_from_u64(config.seed);
    for case in 0..config.cases {
        let case_seed = seeds.next_u64();
        let mut src = Source::record(case_seed);
        if let Err(message) = run_case(&body, &mut src) {
            let failing = src.consumed();
            let (min_choices, min_message, steps) = shrink(&body, failing, message, config);
            // Re-run the minimal case so the final report reflects it and
            // assertion context (values) is taken from the minimum.
            QUIET_PANICS.with(|q| q.set(false));
            panic!(
                "property '{name}' failed (case {case_no}/{cases}, seed \
                 {seed:#018x}, {steps} shrink steps)\nminimal failure: \
                 {min_message}\nminimal choice stream ({n} draws): \
                 {min_choices:?}\nreproduce this run with \
                 MDV_PROP_SEED={base:#x}",
                case_no = case + 1,
                cases = config.cases,
                seed = case_seed,
                n = min_choices.len(),
                base = config.seed,
            );
        }
    }
}

/// Classic generator/predicate split: generates `T: Debug` values so the
/// failure report can print the minimal counterexample itself.
pub fn for_all<G, P>(name: &str, config: Config, gen: G, prop: P)
where
    G: Gen,
    G::Output: std::fmt::Debug,
    P: Fn(&G::Output) -> TestResult,
{
    run_property(name, config, |src| {
        let value = gen.generate(src);
        prop(&value).map_err(|e| format!("{e}\ninput: {value:#?}"))
    });
}

/// Greedy stream shrinking: repeatedly tries structurally smaller variants
/// of the failing choice log, keeping any variant that still fails, until
/// a fixpoint or the step budget. Returns the minimal log, its failure
/// message, and the number of candidates executed.
fn shrink<F: Fn(&mut Source) -> TestResult>(
    body: &F,
    mut best: Vec<u64>,
    mut best_message: String,
    config: Config,
) -> (Vec<u64>, String, u32) {
    let mut steps = 0u32;
    let attempt = |candidate: Vec<u64>, steps: &mut u32| -> Option<(Vec<u64>, String)> {
        if *steps >= config.max_shrink_steps {
            return None;
        }
        *steps += 1;
        let mut src = Source::replay(candidate);
        match run_case(body, &mut src) {
            Err(message) => Some((src.consumed(), message)),
            Ok(()) => None,
        }
    };

    'outer: loop {
        // Pass 1: delete chunks, largest first (shrinks collections).
        let mut chunk = best.len().max(1) / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start + chunk <= best.len() {
                let mut candidate = best.clone();
                candidate.drain(start..start + chunk);
                if let Some((c, m)) = attempt(candidate, &mut steps) {
                    if c.len() < best.len() || (c.len() == best.len() && c < best) {
                        best = c;
                        best_message = m;
                        continue 'outer;
                    }
                }
                start += chunk;
            }
            chunk /= 2;
        }
        // Pass 2: lower individual draws. Candidates go from most to
        // least aggressive (zero, halvings, decrement), and the first
        // still-failing one is kept, so the descent toward the minimal
        // value is geometric rather than one-by-one.
        for i in 0..best.len() {
            let v = best[i];
            if v == 0 {
                continue;
            }
            let replacements = [
                0,
                v / 2,
                v - v / 4,
                v - v / 8,
                v - v / 16,
                v - v / 64,
                v - 1,
            ];
            let mut tried = Vec::new();
            for replacement in replacements {
                if replacement >= v || tried.contains(&replacement) {
                    continue;
                }
                tried.push(replacement);
                let mut candidate = best.clone();
                candidate[i] = replacement;
                if let Some((c, m)) = attempt(candidate, &mut steps) {
                    if c < best {
                        best = c;
                        best_message = m;
                        continue 'outer;
                    }
                }
            }
        }
        return (best, best_message, steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::RefCell::new(&mut count);
        run_property("counts", Config::default(), |src| {
            **counter.borrow_mut() += 1;
            let v = src.i64_in(0..100);
            if (0..100).contains(&v) {
                Ok(())
            } else {
                Err("out of range".into())
            }
        });
        assert_eq!(count, Config::default().cases);
    }

    #[test]
    fn failing_property_panics_with_report() {
        let result = std::panic::catch_unwind(|| {
            run_property("always_fails", Config::default(), |_src| Err("nope".into()));
        });
        let message = panic_message(result.unwrap_err());
        assert!(
            message.contains("property 'always_fails' failed"),
            "{message}"
        );
        assert!(message.contains("nope"), "{message}");
        assert!(message.contains("MDV_PROP_SEED"), "{message}");
    }

    #[test]
    fn panics_inside_properties_are_failures() {
        let result = std::panic::catch_unwind(|| {
            run_property("panics", Config::default(), |src| {
                let v = src.i64_in(0..10);
                assert!(v < 100, "unreachable");
                if v >= 0 {
                    panic!("boom {v}");
                }
                Ok(())
            });
        });
        let message = panic_message(result.unwrap_err());
        assert!(message.contains("panic: boom"), "{message}");
    }

    #[test]
    fn shrinking_converges_to_known_minimum() {
        // Property: every i64 in [0, 10000) is < 500. The minimal
        // counterexample is exactly 500; greedy stream shrinking must
        // find it, not just some large failing value.
        let result = std::panic::catch_unwind(|| {
            run_property("finds_500", Config::default(), |src| {
                let v = src.i64_in(0..10_000);
                if v < 500 {
                    Ok(())
                } else {
                    Err(format!("counterexample={v}"))
                }
            });
        });
        let message = panic_message(result.unwrap_err());
        assert!(
            message.contains("counterexample=500"),
            "expected convergence to 500, got: {message}"
        );
    }

    #[test]
    fn shrinking_minimizes_collections() {
        // Property: no vector contains an element >= 100. The minimal
        // counterexample is the singleton [100].
        let result = std::panic::catch_unwind(|| {
            run_property("finds_singleton", Config::default(), |src| {
                let v = src.vec(0..20, |s| s.i64_in(0..1000));
                if v.iter().all(|&x| x < 100) {
                    Ok(())
                } else {
                    Err(format!("counterexample={v:?}"))
                }
            });
        });
        let message = panic_message(result.unwrap_err());
        assert!(
            message.contains("counterexample=[100]"),
            "expected convergence to [100], got: {message}"
        );
    }

    #[test]
    fn for_all_reports_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            for_all(
                "pairs_differ",
                Config::default(),
                |src: &mut Source| (src.i64_in(0..50), src.i64_in(0..50)),
                |&(a, b)| {
                    if a.max(b) < 10 {
                        Ok(())
                    } else {
                        Err("pair too large".into())
                    }
                },
            );
        });
        let message = panic_message(result.unwrap_err());
        assert!(message.contains("input:"), "{message}");
        assert!(
            message.contains("10"),
            "minimal pair contains 10: {message}"
        );
    }

    #[test]
    fn same_seed_reproduces_the_same_minimum() {
        let run = || {
            let result = std::panic::catch_unwind(|| {
                run_property("det", Config::default(), |src| {
                    let v = src.u64_in(0..100_000);
                    if v < 777 {
                        Ok(())
                    } else {
                        Err(format!("v={v}"))
                    }
                });
            });
            panic_message(result.unwrap_err())
        };
        assert_eq!(run(), run());
    }
}
