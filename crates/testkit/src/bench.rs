//! A minimal wall-clock benchmark runner: warmup, N timed iterations,
//! min / mean / median / p95, human-readable table plus JSON lines on
//! stdout. The in-tree replacement for the `criterion` harness.
//!
//! Iteration counts scale with `MDV_BENCH_ITERS` (default 10) so CI can
//! run the benches as a fast smoke pass while local runs measure properly.

use std::time::Instant;

/// Warmup and measurement iteration counts.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    pub warmup_iters: u32,
    pub iters: u32,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            warmup_iters: 2,
            iters: 10,
        }
    }
}

impl BenchOptions {
    /// Default options with `MDV_BENCH_ITERS` applied (minimum 1).
    pub fn from_env() -> Self {
        let mut opts = BenchOptions::default();
        if let Ok(raw) = std::env::var("MDV_BENCH_ITERS") {
            let iters: u32 = raw
                .parse()
                .unwrap_or_else(|_| panic!("MDV_BENCH_ITERS must be an integer, got '{raw}'"));
            opts.iters = iters.max(1);
            opts.warmup_iters = (iters / 5).clamp(1, 5);
        }
        opts
    }
}

/// Timing summary of one benchmark, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    pub iters: u32,
    pub min_ns: u64,
    pub max_ns: u64,
    pub mean_ns: u64,
    pub median_ns: u64,
    pub p95_ns: u64,
}

impl Stats {
    /// Summarizes raw per-iteration samples. Panics on an empty slice.
    pub fn from_samples(samples: &[u64]) -> Stats {
        assert!(!samples.is_empty(), "no samples");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let median_ns = if n.is_multiple_of(2) {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2
        } else {
            sorted[n / 2]
        };
        // nearest-rank p95: smallest sample ≥ 95% of the distribution
        let p95_idx = ((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1;
        Stats {
            iters: n as u32,
            min_ns: sorted[0],
            max_ns: sorted[n - 1],
            mean_ns: (sorted.iter().sum::<u64>() / n as u64),
            median_ns,
            p95_ns: sorted[p95_idx],
        }
    }
}

/// Times `routine` over fresh inputs from `setup` (setup time excluded),
/// like criterion's `iter_batched`. The routine's return value is consumed
/// through [`std::hint::black_box`] so its computation is not optimized out.
pub fn measure<I, R>(
    opts: BenchOptions,
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(I) -> R,
) -> Stats {
    for _ in 0..opts.warmup_iters {
        std::hint::black_box(routine(setup()));
    }
    let samples: Vec<u64> = (0..opts.iters.max(1))
        .map(|_| {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed().as_nanos() as u64
        })
        .collect();
    Stats::from_samples(&samples)
}

/// A named group of benchmarks printed together, criterion-style.
pub struct BenchGroup {
    name: String,
    opts: BenchOptions,
    rows: Vec<(String, Stats)>,
}

impl BenchGroup {
    pub fn new(name: &str) -> Self {
        BenchGroup {
            name: name.to_owned(),
            opts: BenchOptions::from_env(),
            rows: Vec::new(),
        }
    }

    pub fn with_options(name: &str, opts: BenchOptions) -> Self {
        BenchGroup {
            name: name.to_owned(),
            opts,
            rows: Vec::new(),
        }
    }

    /// Benchmarks `routine` over per-iteration inputs from `setup`.
    pub fn bench_with_setup<I, R>(
        &mut self,
        id: &str,
        setup: impl FnMut() -> I,
        routine: impl FnMut(I) -> R,
    ) -> Stats {
        let stats = measure(self.opts, setup, routine);
        self.rows.push((id.to_owned(), stats));
        stats
    }

    /// Benchmarks a closure with no per-iteration setup.
    pub fn bench(&mut self, id: &str, mut routine: impl FnMut()) -> Stats {
        self.bench_with_setup(id, || (), |()| routine())
    }

    /// Prints the table and one JSON line per benchmark, and returns the
    /// collected rows.
    pub fn finish(self) -> Vec<(String, Stats)> {
        println!("\n== {} ({} iters) ==", self.name, self.opts.iters);
        println!(
            "{:<24} {:>12} {:>12} {:>12}",
            "bench", "median", "p95", "min"
        );
        for (id, s) in &self.rows {
            println!(
                "{:<24} {:>12} {:>12} {:>12}",
                id,
                format_ns(s.median_ns),
                format_ns(s.p95_ns),
                format_ns(s.min_ns)
            );
        }
        for (id, s) in &self.rows {
            println!("{}", json_line(&self.name, id, s));
        }
        self.rows
    }
}

/// Renders one benchmark result as the runner's machine-readable JSON line
/// (the format `finish` prints). Public so harnesses can also collect the
/// lines into a results file (e.g. `BENCH_filter_scaling.json`).
pub fn json_line(group: &str, bench: &str, s: &Stats) -> String {
    format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"iters\":{},\"min_ns\":{},\
         \"mean_ns\":{},\"median_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
        escape_json(group),
        escape_json(bench),
        s.iters,
        s.min_ns,
        s.mean_ns,
        s.median_ns,
        s.p95_ns,
        s.max_ns
    )
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_summarize_correctly() {
        let s = Stats::from_samples(&[10, 20, 30, 40, 100]);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 100);
        assert_eq!(s.median_ns, 30);
        assert_eq!(s.mean_ns, 40);
        assert_eq!(s.p95_ns, 100);
        assert_eq!(s.iters, 5);
    }

    #[test]
    fn even_sample_median_is_midpoint() {
        let s = Stats::from_samples(&[10, 20, 30, 40]);
        assert_eq!(s.median_ns, 25);
    }

    #[test]
    fn p95_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(Stats::from_samples(&samples).p95_ns, 95);
        assert_eq!(Stats::from_samples(&[7]).p95_ns, 7);
    }

    #[test]
    fn measure_runs_setup_per_iteration() {
        let mut setups = 0u32;
        let opts = BenchOptions {
            warmup_iters: 1,
            iters: 4,
        };
        let stats = measure(
            opts,
            || {
                setups += 1;
                vec![0u8; 64]
            },
            |v| {
                std::hint::black_box(v.len());
            },
        );
        assert_eq!(setups, 5, "1 warmup + 4 timed");
        assert_eq!(stats.iters, 4);
    }

    #[test]
    fn group_collects_rows() {
        let opts = BenchOptions {
            warmup_iters: 0,
            iters: 3,
        };
        let mut g = BenchGroup::with_options("unit", opts);
        g.bench("noop", || {});
        g.bench_with_setup(
            "sum",
            || (0u64..100).collect::<Vec<_>>(),
            |v| {
                std::hint::black_box(v.iter().sum::<u64>());
            },
        );
        let rows = g.finish();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "noop");
        assert_eq!(rows[1].1.iters, 3);
    }

    #[test]
    fn json_line_is_well_formed() {
        let s = Stats::from_samples(&[10, 20, 30]);
        let line = json_line("g", "b\"1", &s);
        assert!(line.starts_with("{\"group\":\"g\",\"bench\":\"b\\\"1\","));
        assert!(line.contains("\"median_ns\":20"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("tab\there"), "tab\\u0009here");
    }
}
