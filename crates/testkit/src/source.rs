//! The choice stream underlying every generator.
//!
//! A [`Source`] hands out 64-bit draws. In *record* mode the draws come
//! from the runtime PRNG and are appended to a log; in *replay* mode they
//! come from a (possibly shrunk) log, with zeros once the log runs out.
//! All higher-level draws reduce to [`Source::bits`], and every reduction
//! maps the zero word to the minimum of its range — that single invariant
//! is what makes stream-level shrinking converge on minimal inputs.

use std::ops::Range;

use mdv_runtime::rng::Prng;

/// A recorded or replayed stream of 64-bit choices.
#[derive(Debug)]
pub struct Source {
    rng: Option<Prng>,
    choices: Vec<u64>,
    pos: usize,
}

impl Source {
    /// A recording source: fresh draws from a seeded PRNG.
    pub(crate) fn record(seed: u64) -> Self {
        Source {
            rng: Some(Prng::seed_from_u64(seed)),
            choices: Vec::new(),
            pos: 0,
        }
    }

    /// A replaying source over a fixed choice log.
    pub(crate) fn replay(choices: Vec<u64>) -> Self {
        Source {
            rng: None,
            choices,
            pos: 0,
        }
    }

    /// The prefix of the log actually consumed.
    pub(crate) fn consumed(&self) -> Vec<u64> {
        self.choices[..self.pos.min(self.choices.len())].to_vec()
    }

    /// The next raw 64-bit choice.
    pub fn bits(&mut self) -> u64 {
        let v = if self.pos < self.choices.len() {
            self.choices[self.pos]
        } else {
            match &mut self.rng {
                Some(rng) => {
                    let v = rng.next_u64();
                    self.choices.push(v);
                    v
                }
                None => 0,
            }
        };
        self.pos += 1;
        v
    }

    /// Uniform `u64` in a half-open range; a zero choice yields `start`.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "u64_in over empty range");
        let width = range.end - range.start;
        range.start + self.bits() % width
    }

    /// Uniform `i64` in a half-open range; a zero choice yields `start`.
    pub fn i64_in(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "i64_in over empty range");
        let width = range.end.abs_diff(range.start);
        range.start.wrapping_add((self.bits() % width) as i64)
    }

    /// Uniform `usize` in a half-open range; a zero choice yields `start`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// An arbitrary `i64` (full domain, zero choice yields 0).
    pub fn any_i64(&mut self) -> i64 {
        self.bits() as i64
    }

    /// An arbitrary `usize` (zero choice yields 0).
    pub fn any_usize(&mut self) -> usize {
        self.bits() as usize
    }

    /// Uniform float in `[0, 1)`; a zero choice yields 0.
    pub fn f64_unit(&mut self) -> f64 {
        (self.bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in a half-open range; a zero choice yields `start`.
    /// Handy for fault probabilities bounded away from saturation
    /// (e.g. drop rates in `0.0..0.3`).
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "f64_in over empty range");
        range.start + self.f64_unit() * (range.end - range.start)
    }

    /// `true` with probability `p`; a zero choice yields `false`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Fair boolean; a zero choice yields `false`.
    pub fn bool(&mut self) -> bool {
        self.bits() & (1 << 63) != 0
    }

    /// A uniformly chosen element; a zero choice yields the first.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.usize_in(0..xs.len())]
    }

    /// An index drawn with the given relative weights; a zero choice
    /// yields the first positively weighted index.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weighted with all-zero weights");
        let mut draw = self.u64_in(0..total);
        for (i, &w) in weights.iter().enumerate() {
            if draw < w as u64 {
                return i;
            }
            draw -= w as u64;
        }
        unreachable!("draw < total")
    }

    /// A string of `len` characters (drawn from `len_range`) over the
    /// given alphabet. Zero choices yield the shortest string of the
    /// alphabet's first character.
    pub fn string_of(&mut self, alphabet: &str, len_range: Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        assert!(!chars.is_empty(), "string_of with empty alphabet");
        let len = self.usize_in(len_range);
        (0..len).map(|_| *self.choose(&chars)).collect()
    }

    /// A string of printable ASCII (the migration stand-in for
    /// `proptest`'s `\PC` garbage inputs).
    pub fn printable(&mut self, len_range: Range<usize>) -> String {
        let len = self.usize_in(len_range);
        (0..len)
            .map(|_| (self.u64_in(0x20..0x7f) as u8) as char)
            .collect()
    }

    /// A vector of arbitrary bytes, for fuzzing binary surfaces (garbage
    /// appended to WAL tails, corrupted disk images).
    pub fn bytes(&mut self, len_range: Range<usize>) -> Vec<u8> {
        let len = self.usize_in(len_range);
        (0..len).map(|_| self.bits() as u8).collect()
    }

    /// A vector of values from a per-element closure, with its length
    /// drawn from `len_range` first.
    pub fn vec<T>(
        &mut self,
        len_range: Range<usize>,
        mut element: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(len_range);
        (0..len).map(|_| element(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_is_identical() {
        let mut rec = Source::record(99);
        let a: Vec<u64> = (0..10).map(|_| rec.u64_in(5..500)).collect();
        let mut rep = Source::replay(rec.consumed());
        let b: Vec<u64> = (0..10).map(|_| rep.u64_in(5..500)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_replay_yields_minima() {
        let mut s = Source::replay(Vec::new());
        assert_eq!(s.i64_in(-7..9), -7);
        assert_eq!(s.usize_in(3..10), 3);
        assert_eq!(s.f64_unit(), 0.0);
        assert_eq!(s.f64_in(0.25..0.5), 0.25);
        assert!(!s.bool());
        assert_eq!(*s.choose(&['x', 'y']), 'x');
        assert_eq!(s.string_of("ab", 2..5), "aa");
        assert!(s.vec(0..4, |s| s.bits()).is_empty());
    }

    #[test]
    fn weighted_respects_weights() {
        let mut s = Source::record(1);
        let mut counts = [0u32; 3];
        for _ in 0..6000 {
            counts[s.weighted(&[3, 2, 1])] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        // zero stream picks the first positively weighted index
        let mut z = Source::replay(Vec::new());
        assert_eq!(z.weighted(&[0, 0, 5, 1]), 2);
    }

    #[test]
    fn consumed_tracks_only_read_prefix() {
        let mut s = Source::replay(vec![1, 2, 3, 4]);
        s.bits();
        s.bits();
        assert_eq!(s.consumed(), vec![1, 2]);
    }
}
