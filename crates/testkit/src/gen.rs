//! The generator abstraction.
//!
//! A [`Gen`] turns a choice [`Source`] into a value. Every
//! `Fn(&mut Source) -> T` closure is a generator, so most call sites just
//! write closures over the `Source` draw methods; the trait exists so
//! generators can be named, passed to [`crate::for_all`], and composed.

use crate::source::Source;

/// A reproducible value generator over the choice stream.
pub trait Gen {
    type Output;

    fn generate(&self, src: &mut Source) -> Self::Output;

    /// Post-processes generated values. Shrinking composes through the
    /// mapping because it operates on the underlying choice stream.
    fn map<U, F: Fn(Self::Output) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { gen: self, f }
    }
}

impl<T, F: Fn(&mut Source) -> T> Gen for F {
    type Output = T;

    fn generate(&self, src: &mut Source) -> T {
        self(src)
    }
}

/// See [`Gen::map`].
pub struct Map<G, F> {
    gen: G,
    f: F,
}

impl<G: Gen, U, F: Fn(G::Output) -> U> Gen for Map<G, F> {
    type Output = U;

    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.gen.generate(src))
    }
}

/// A vector generator: length first, then that many elements.
pub fn vec_of<G: Gen>(
    len_range: std::ops::Range<usize>,
    element: G,
) -> impl Gen<Output = Vec<G::Output>> {
    move |src: &mut Source| {
        let len = src.usize_in(len_range.clone());
        (0..len).map(|_| element.generate(src)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_generators() {
        let g = |src: &mut Source| src.i64_in(10..20);
        let mut src = Source::record(5);
        for _ in 0..100 {
            assert!((10..20).contains(&g.generate(&mut src)));
        }
    }

    #[test]
    fn map_composes() {
        let g = (|src: &mut Source| src.i64_in(0..10)).map(|v| v * 2);
        let mut src = Source::record(5);
        for _ in 0..100 {
            let v = g.generate(&mut src);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn vec_of_respects_length_range() {
        let g = vec_of(2..5, |src: &mut Source| src.bits());
        let mut src = Source::record(6);
        for _ in 0..100 {
            let v = g.generate(&mut src);
            assert!((2..5).contains(&v.len()));
        }
    }
}
