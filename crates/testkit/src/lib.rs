//! # mdv-testkit
//!
//! A small, fully deterministic property-testing harness plus a wall-clock
//! benchmark runner — the in-tree replacement for `proptest` and
//! `criterion`, with zero dependencies outside the workspace.
//!
//! ## Property testing
//!
//! Test inputs are produced by [`Gen`] implementors (any
//! `Fn(&mut Source) -> T` closure qualifies) drawing primitive values from
//! a [`Source`]. The source records every 64-bit draw; when a property
//! fails, the recorded *choice stream* is shrunk greedily — chunks deleted,
//! values zeroed and halved — and the input is regenerated from the shrunk
//! stream. Because shrinking happens below the generators, every
//! combinator (maps, filters, recursion) shrinks for free, and a zeroed
//! stream regenerates each primitive at the minimum of its range.
//!
//! Runs are seeded with a fixed default so CI is reproducible; set
//! `MDV_PROP_SEED` to explore other universes and `MDV_PROP_CASES` to
//! scale iteration counts up or down (`ci/check.sh` relies on this).
//!
//! ```
//! mdv_testkit::property! {
//!     /// Addition commutes.
//!     fn add_commutes(src) {
//!         let a = src.i64_in(-100..100);
//!         let b = src.i64_in(-100..100);
//!         mdv_testkit::prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! ## Benchmarks
//!
//! [`bench::BenchGroup`] measures warmup + N timed iterations and reports
//! min / mean / median / p95 both as a human-readable table and as JSON
//! lines, replacing the `criterion` harness for `benches/figures.rs`.
//!
//! `DESIGN.md` §4 holds the workspace-wide module map locating this
//! crate's files.

pub mod bench;
mod gen;
mod runner;
mod source;

pub use gen::{vec_of, Gen};
pub use runner::{for_all, run_property, Config, TestResult};
pub use source::Source;

/// Fails the surrounding property when the condition is false.
///
/// Usable inside property bodies and [`for_all`] predicates (anything
/// returning [`TestResult`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("{} ({}:{})", format!($($fmt)+), file!(), line!()));
        }
    };
}

/// Fails the surrounding property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `left == right` ({}:{})\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "{} ({}:{})\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
}

/// Fails the surrounding property when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `left != right` ({}:{})\n  both: {:?}",
                file!(),
                line!(),
                l
            ));
        }
    }};
}

/// Declares `#[test]` functions that run a property over many generated
/// cases with shrinking. The body draws inputs from the `Source` binding
/// and asserts with the `prop_assert*` macros; `cases = N` overrides the
/// per-property default (the `MDV_PROP_CASES` environment variable
/// overrides both).
#[macro_export]
macro_rules! property {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($src:ident) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $crate::Config::from_env();
            $crate::run_property(stringify!($name), config, |$src: &mut $crate::Source| {
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::property! { $($rest)* }
    };
    ($(#[$meta:meta])* fn $name:ident($src:ident) cases = $cases:expr; $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $crate::Config::from_env().with_default_cases($cases);
            $crate::run_property(stringify!($name), config, |$src: &mut $crate::Source| {
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::property! { $($rest)* }
    };
}
