//! The simulated network connecting MDV nodes.
//!
//! The paper deploys MDPs and LMRs across the Internet; this reproduction
//! substitutes a deterministic in-process transport (see DESIGN.md): every
//! node owns an unbounded channel, messages carry a logical delivery time
//! derived from configurable per-link latencies, and every send is recorded
//! in a log so tests and examples can assert on traffic.
//!
//! The transport can additionally inject faults — drops, duplicates,
//! delivery jitter (reordering), latency spikes, and timed partitions —
//! from a seedable [`FaultPlan`]. Given the same `(NetConfig, seed)` and
//! the same sequence of sends, the injected faults are bit-identical,
//! which is what makes the simulation tests in `tests/fault_sim.rs`
//! replayable. An inert (all-zero) plan draws no randomness and leaves
//! the transport byte-identical to the fault-free implementation.

use std::collections::{HashMap, HashSet};

use mdv_runtime::channel::{unbounded, Receiver, Sender};
use mdv_runtime::rng::Prng;
use mdv_runtime::sync::Mutex;

use crate::error::{Error, Result};
use crate::message::Message;

/// A routed message.
#[derive(Debug, Clone)]
pub struct Envelope {
    pub from: String,
    pub to: String,
    pub message: Message,
    /// Logical time at which the message reaches the receiver.
    pub deliver_at_ms: u64,
}

/// What (if anything) the fault injector did to a logged send.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultTag {
    /// Delivered normally.
    #[default]
    None,
    /// Dropped by the random loss process; never delivered.
    Dropped,
    /// Dropped because the link was inside a partition window.
    Partitioned,
    /// An injected extra copy of an already-delivered message.
    Duplicated,
    /// Delivered, but with injected jitter and/or a latency spike.
    Delayed,
    /// Black-holed because an endpoint is marked down (`fail_mdp`).
    Down,
}

/// One line of the traffic log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    pub from: String,
    pub to: String,
    pub kind: &'static str,
    pub bytes: usize,
    pub sent_at_ms: u64,
    pub deliver_at_ms: u64,
    /// Fault-injector verdict for this record.
    pub fault: FaultTag,
    /// True when this send was a protocol retransmission.
    pub retry: bool,
}

/// Aggregate traffic counters.
///
/// `messages`/`bytes` count raw traffic: every send attempt, including
/// retransmissions, injected duplicates, and messages the fault injector
/// went on to drop. The split counters let callers derive goodput
/// (`messages - retries - duplicates_delivered - dropped`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    pub messages: u64,
    pub bytes: u64,
    /// Logical clock after the last delivery.
    pub clock_ms: u64,
    /// Protocol retransmissions (at-least-once delivery resends).
    pub retries: u64,
    /// Extra copies injected by the fault plan and delivered.
    pub duplicates_delivered: u64,
    /// Messages the fault plan dropped (loss or partition).
    pub dropped: u64,
    /// Messages black-holed because an endpoint was marked down.
    pub down_dropped: u64,
    /// Send attempts where both endpoints are backbone (MDP↔MDP) nodes.
    pub backbone_messages: u64,
    /// Bytes of backbone (MDP↔MDP) send attempts.
    pub backbone_bytes: u64,
    /// Send attempts on edge links (MDP↔LMR and below).
    pub edge_messages: u64,
    /// Bytes of edge-link send attempts.
    pub edge_bytes: u64,
    /// Anti-entropy digest rounds started (`note_anti_entropy_round`).
    pub anti_entropy_rounds: u64,
    /// Documents actually repaired by anti-entropy pulls (`note_repair`).
    pub repairs_applied: u64,
    /// Placement-protocol send attempts (placement digests; DESIGN.md §11).
    /// Zero unless a placement table is active.
    pub placement_messages: u64,
    /// Bytes of placement-protocol send attempts.
    pub placement_bytes: u64,
}

/// Fault parameters for one directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that a delivered message is duplicated.
    pub dup_prob: f64,
    /// Max uniform extra delivery delay; nonzero values reorder traffic.
    pub jitter_ms: u64,
    /// Probability in `[0, 1]` of a bounded latency spike.
    pub spike_prob: f64,
    /// Extra delay added when a spike fires.
    pub spike_ms: u64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            drop_prob: 0.0,
            dup_prob: 0.0,
            jitter_ms: 0,
            spike_prob: 0.0,
            spike_ms: 0,
        }
    }
}

impl LinkFaults {
    pub fn is_inert(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.jitter_ms == 0
            && (self.spike_prob == 0.0 || self.spike_ms == 0)
    }
}

/// A timed one-way partition: the link `(from, to)` black-holes every
/// message sent at a logical time in `[from_ms, until_ms)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    pub from: String,
    pub to: String,
    pub from_ms: u64,
    pub until_ms: u64,
}

/// A deterministic, seedable schedule of network faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault-injection PRNG.
    pub seed: u64,
    /// Faults applied when no per-link override exists.
    pub default_link: LinkFaults,
    /// Per-link overrides, keyed `(from, to)`.
    pub links: HashMap<(String, String), LinkFaults>,
    /// Timed one-way partitions.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// True when the plan can never perturb a message; an inert plan
    /// draws no randomness, so the transport behaves byte-identically
    /// to a fault-free network.
    pub fn is_inert(&self) -> bool {
        self.default_link.is_inert()
            && self.links.values().all(LinkFaults::is_inert)
            && self.partitions.is_empty()
    }

    /// Adds a symmetric partition between `a` and `b` over `[from_ms, until_ms)`.
    pub fn partition_both(&mut self, a: &str, b: &str, from_ms: u64, until_ms: u64) {
        for (x, y) in [(a, b), (b, a)] {
            self.partitions.push(Partition {
                from: x.to_owned(),
                to: y.to_owned(),
                from_ms,
                until_ms,
            });
        }
    }

    fn link(&self, from: &str, to: &str) -> &LinkFaults {
        self.links
            .get(&(from.to_owned(), to.to_owned()))
            .unwrap_or(&self.default_link)
    }

    fn partitioned(&self, from: &str, to: &str, at_ms: u64) -> bool {
        self.partitions
            .iter()
            .any(|p| p.from == from && p.to == to && p.from_ms <= at_ms && at_ms < p.until_ms)
    }
}

/// Latency, fault, and retry configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Latency applied when no per-link override exists.
    pub default_latency_ms: u64,
    /// Per-link overrides, keyed `(from, to)`.
    pub links: HashMap<(String, String), u64>,
    /// Fault-injection schedule (inert by default).
    pub faults: FaultPlan,
    /// First retransmission timeout for unacked protocol messages.
    pub retry_initial_ms: u64,
    /// Retransmission backoff ceiling.
    pub retry_max_ms: u64,
    /// Number of retransmissions of one control message an LMR tolerates
    /// before declaring its home MDP silent and failing over to its backup
    /// (no-op unless a backup is configured).
    pub failover_attempts: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            default_latency_ms: 10,
            links: HashMap::new(),
            faults: FaultPlan::default(),
            retry_initial_ms: 50,
            retry_max_ms: 1600,
            failover_attempts: 6,
        }
    }
}

/// The in-process network.
pub struct Network {
    config: NetConfig,
    /// Cached so the common (fault-free) send path skips the RNG lock.
    faults_active: bool,
    fault_rng: Mutex<Prng>,
    senders: Mutex<HashMap<String, Sender<Envelope>>>,
    log: Mutex<Vec<LogRecord>>,
    clock_ms: Mutex<u64>,
    stats: Mutex<NetStats>,
    /// Names of backbone (MDP) nodes, for the edge-class traffic split.
    backbone: Mutex<HashSet<String>>,
    /// Nodes currently marked down; sends to/from them are black-holed.
    down: Mutex<HashSet<String>>,
}

impl Network {
    pub fn new(config: NetConfig) -> Self {
        let faults_active = !config.faults.is_inert();
        let fault_rng = Mutex::new(Prng::seed_from_u64(config.faults.seed));
        Network {
            config,
            faults_active,
            fault_rng,
            senders: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
            clock_ms: Mutex::new(0),
            stats: Mutex::new(NetStats::default()),
            backbone: Mutex::new(HashSet::new()),
            down: Mutex::new(HashSet::new()),
        }
    }

    /// The active configuration (nodes read the retry knobs from here).
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Marks a node as part of the backbone tier; traffic between two
    /// backbone nodes is counted under the `backbone_*` statistics.
    pub fn mark_backbone(&self, name: &str) {
        self.backbone.lock().insert(name.to_owned());
    }

    /// Marks a node down (true) or back up (false). Messages to or from a
    /// down node are black-holed with [`FaultTag::Down`].
    pub fn set_down(&self, name: &str, down: bool) {
        let mut set = self.down.lock();
        if down {
            set.insert(name.to_owned());
        } else {
            set.remove(name);
        }
    }

    /// True if the node is currently marked down.
    pub fn is_down(&self, name: &str) -> bool {
        self.down.lock().contains(name)
    }

    /// Records the start of one anti-entropy digest round.
    pub fn note_anti_entropy_round(&self) {
        self.stats.lock().anti_entropy_rounds += 1;
    }

    /// Records one document repaired by an anti-entropy pull.
    pub fn note_repair(&self) {
        self.stats.lock().repairs_applied += 1;
    }

    /// Registers a node and returns its mailbox.
    pub fn register(&self, name: &str) -> Result<Receiver<Envelope>> {
        let mut senders = self.senders.lock();
        if senders.contains_key(name) {
            return Err(Error::Topology(format!("node '{name}' already registered")));
        }
        let (tx, rx) = unbounded();
        senders.insert(name.to_owned(), tx);
        Ok(rx)
    }

    fn latency(&self, from: &str, to: &str) -> u64 {
        self.config
            .links
            .get(&(from.to_owned(), to.to_owned()))
            .copied()
            .unwrap_or(self.config.default_latency_ms)
    }

    /// Sends a message; delivery time is the current logical clock plus the
    /// link latency (plus any injected jitter/spike).
    pub fn send(&self, from: &str, to: &str, message: Message) -> Result<()> {
        self.send_impl(from, to, message, false)
    }

    /// Sends a protocol retransmission; identical to [`send`](Self::send)
    /// but counted under `NetStats::retries` and flagged in the log.
    pub fn send_retry(&self, from: &str, to: &str, message: Message) -> Result<()> {
        self.send_impl(from, to, message, true)
    }

    fn send_impl(&self, from: &str, to: &str, message: Message, retry: bool) -> Result<()> {
        let sender = self
            .senders
            .lock()
            .get(to)
            .cloned()
            .ok_or_else(|| Error::Topology(format!("unknown destination node '{to}'")))?;
        let sent_at = *self.clock_ms.lock();
        let bytes = message.approx_size();
        let kind = message.kind();
        let record = |fault: FaultTag, deliver_at: u64| LogRecord {
            from: from.to_owned(),
            to: to.to_owned(),
            kind,
            bytes,
            sent_at_ms: sent_at,
            deliver_at_ms: deliver_at,
            fault,
            retry,
        };
        {
            let backbone = self.backbone.lock();
            let on_backbone = backbone.contains(from) && backbone.contains(to);
            drop(backbone);
            let mut stats = self.stats.lock();
            stats.messages += 1;
            stats.bytes += bytes as u64;
            if on_backbone {
                stats.backbone_messages += 1;
                stats.backbone_bytes += bytes as u64;
            } else {
                stats.edge_messages += 1;
                stats.edge_bytes += bytes as u64;
            }
            if retry {
                stats.retries += 1;
            }
            if kind == "placement-digest" {
                stats.placement_messages += 1;
                stats.placement_bytes += bytes as u64;
            }
        }
        if self.is_down(to) || self.is_down(from) {
            self.log.lock().push(record(FaultTag::Down, sent_at));
            self.stats.lock().down_dropped += 1;
            return Ok(());
        }
        let deliver = |deliver_at: u64, message: Message| {
            sender
                .send(Envelope {
                    from: from.to_owned(),
                    to: to.to_owned(),
                    message,
                    deliver_at_ms: deliver_at,
                })
                .map_err(|_| Error::Topology(format!("mailbox of '{to}' is closed")))
        };

        if !self.faults_active {
            let deliver_at = sent_at + self.latency(from, to);
            self.log.lock().push(record(FaultTag::None, deliver_at));
            return deliver(deliver_at, message);
        }

        let plan = &self.config.faults;
        if plan.partitioned(from, to, sent_at) {
            self.log.lock().push(record(FaultTag::Partitioned, sent_at));
            self.stats.lock().dropped += 1;
            return Ok(());
        }
        let link = plan.link(from, to);
        let mut rng = self.fault_rng.lock();
        if link.drop_prob > 0.0 && rng.gen_f64() < link.drop_prob {
            self.log.lock().push(record(FaultTag::Dropped, sent_at));
            self.stats.lock().dropped += 1;
            return Ok(());
        }
        let extra_delay = |rng: &mut Prng| {
            let mut extra = 0;
            if link.jitter_ms > 0 {
                extra += rng.below(link.jitter_ms + 1);
            }
            if link.spike_prob > 0.0 && link.spike_ms > 0 && rng.gen_f64() < link.spike_prob {
                extra += link.spike_ms;
            }
            extra
        };
        let extra = extra_delay(&mut rng);
        let deliver_at = sent_at + self.latency(from, to) + extra;
        let tag = if extra > 0 {
            FaultTag::Delayed
        } else {
            FaultTag::None
        };
        self.log.lock().push(record(tag, deliver_at));
        deliver(deliver_at, message.clone())?;
        if link.dup_prob > 0.0 && rng.gen_f64() < link.dup_prob {
            let extra = extra_delay(&mut rng);
            let dup_at = sent_at + self.latency(from, to) + extra;
            self.log.lock().push(record(FaultTag::Duplicated, dup_at));
            {
                let mut stats = self.stats.lock();
                stats.messages += 1;
                stats.bytes += bytes as u64;
                stats.duplicates_delivered += 1;
            }
            deliver(dup_at, message)?;
        }
        Ok(())
    }

    /// Advances the logical clock to a delivery time (monotone).
    pub fn advance_clock(&self, to_ms: u64) {
        let mut clock = self.clock_ms.lock();
        if to_ms > *clock {
            *clock = to_ms;
        }
        self.stats.lock().clock_ms = *clock;
    }

    /// The current logical clock.
    pub fn now_ms(&self) -> u64 {
        *self.clock_ms.lock()
    }

    pub fn stats(&self) -> NetStats {
        *self.stats.lock()
    }

    /// A copy of the full traffic log.
    pub fn log(&self) -> Vec<LogRecord> {
        self.log.lock().clone()
    }

    /// If the directed link `from → to` is inside a partition window at the
    /// current logical clock, returns the time the last covering window
    /// ends (`u64::MAX` for a permanent partition); `None` when the link
    /// is open. Lets the orchestrator distinguish "wait for the partition
    /// to heal" from "this link will never carry traffic again".
    pub fn link_blocked_until(&self, from: &str, to: &str) -> Option<u64> {
        let now = *self.clock_ms.lock();
        self.config
            .faults
            .partitions
            .iter()
            .filter(|p| p.from == from && p.to == to && p.from_ms <= now && now < p.until_ms)
            .map(|p| p.until_ms)
            .max()
    }

    /// Traffic counts per message kind.
    pub fn traffic_by_kind(&self) -> HashMap<&'static str, u64> {
        let mut out = HashMap::new();
        for rec in self.log.lock().iter() {
            *out.entry(rec.kind).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message::ReplicateDelete {
            seq: 0,
            version: 1,
            document_uri: "doc.rdf".into(),
        }
    }

    #[test]
    fn down_node_black_holes_both_directions() {
        let net = Network::new(NetConfig::default());
        let ra = net.register("a").unwrap();
        let rb = net.register("b").unwrap();
        net.set_down("b", true);
        assert!(net.is_down("b"));
        net.send("a", "b", msg()).unwrap();
        net.send("b", "a", msg()).unwrap();
        assert!(ra.try_recv().is_err());
        assert!(rb.try_recv().is_err());
        assert_eq!(net.stats().down_dropped, 2);
        assert!(net.log().iter().all(|r| r.fault == FaultTag::Down));
        // healing restores delivery
        net.set_down("b", false);
        net.send("a", "b", msg()).unwrap();
        assert!(rb.try_recv().is_ok());
        assert_eq!(net.stats().down_dropped, 2);
    }

    #[test]
    fn edge_class_split_counts_backbone_and_edge_traffic() {
        let net = Network::new(NetConfig::default());
        let _r1 = net.register("m1").unwrap();
        let _r2 = net.register("m2").unwrap();
        let _r3 = net.register("l1").unwrap();
        net.mark_backbone("m1");
        net.mark_backbone("m2");
        net.send("m1", "m2", msg()).unwrap();
        net.send("m1", "l1", msg()).unwrap();
        net.send("l1", "m1", msg()).unwrap();
        let stats = net.stats();
        assert_eq!(stats.backbone_messages, 1);
        assert_eq!(stats.edge_messages, 2);
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.backbone_bytes + stats.edge_bytes, stats.bytes);
        assert_eq!(stats.anti_entropy_rounds, 0);
        assert_eq!(stats.repairs_applied, 0);
    }

    #[test]
    fn register_and_send() {
        let net = Network::new(NetConfig::default());
        let rx = net.register("a").unwrap();
        net.register("b").unwrap();
        net.send("b", "a", msg()).unwrap();
        let env = rx.try_recv().unwrap();
        assert_eq!(env.from, "b");
        assert_eq!(env.deliver_at_ms, 10);
        assert_eq!(net.stats().messages, 1);
        assert!(net.stats().bytes > 0);
    }

    #[test]
    fn duplicate_node_rejected() {
        let net = Network::new(NetConfig::default());
        net.register("a").unwrap();
        assert!(matches!(net.register("a"), Err(Error::Topology(_))));
    }

    #[test]
    fn unknown_destination_rejected() {
        let net = Network::new(NetConfig::default());
        net.register("a").unwrap();
        assert!(matches!(
            net.send("a", "nowhere", msg()),
            Err(Error::Topology(_))
        ));
    }

    #[test]
    fn per_link_latency_override() {
        let mut config = NetConfig::default();
        config.links.insert(("a".into(), "b".into()), 250);
        let net = Network::new(config);
        net.register("a").unwrap();
        let rx = net.register("b").unwrap();
        net.send("a", "b", msg()).unwrap();
        let env = rx.try_recv().unwrap();
        assert_eq!(env.deliver_at_ms, 250);
    }

    #[test]
    fn clock_advances_monotonically() {
        let net = Network::new(NetConfig::default());
        net.advance_clock(100);
        net.advance_clock(50);
        assert_eq!(net.stats().clock_ms, 100);
    }

    #[test]
    fn log_records_traffic() {
        let net = Network::new(NetConfig::default());
        let _ra = net.register("a").unwrap();
        let _rb = net.register("b").unwrap();
        net.send("a", "b", msg()).unwrap();
        net.send("a", "b", msg()).unwrap();
        assert_eq!(net.log().len(), 2);
        assert_eq!(net.traffic_by_kind()["replicate-delete"], 2);
        assert!(net
            .log()
            .iter()
            .all(|r| r.fault == FaultTag::None && !r.retry));
    }

    #[test]
    fn drop_prob_one_drops_everything() {
        let mut config = NetConfig::default();
        config.faults.default_link.drop_prob = 1.0;
        let net = Network::new(config);
        net.register("a").unwrap();
        let rx = net.register("b").unwrap();
        net.send("a", "b", msg()).unwrap();
        assert!(rx.try_recv().is_err());
        let stats = net.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.messages, 1);
        assert_eq!(net.log()[0].fault, FaultTag::Dropped);
    }

    #[test]
    fn dup_prob_one_duplicates_everything() {
        let mut config = NetConfig::default();
        config.faults.default_link.dup_prob = 1.0;
        let net = Network::new(config);
        net.register("a").unwrap();
        let rx = net.register("b").unwrap();
        net.send("a", "b", msg()).unwrap();
        assert!(rx.try_recv().is_ok());
        assert!(rx.try_recv().is_ok());
        assert!(rx.try_recv().is_err());
        let stats = net.stats();
        assert_eq!(stats.duplicates_delivered, 1);
        assert_eq!(stats.messages, 2);
        let log = net.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].fault, FaultTag::Duplicated);
    }

    #[test]
    fn partition_window_black_holes_link() {
        let mut config = NetConfig::default();
        config.faults.partition_both("a", "b", 0, 100);
        let net = Network::new(config);
        net.register("a").unwrap();
        let rx = net.register("b").unwrap();
        net.send("a", "b", msg()).unwrap();
        assert!(rx.try_recv().is_err());
        assert_eq!(net.log()[0].fault, FaultTag::Partitioned);
        // after the window the link heals
        net.advance_clock(100);
        net.send("a", "b", msg()).unwrap();
        assert!(rx.try_recv().is_ok());
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn jitter_delays_and_tags_delivery() {
        let mut config = NetConfig::default();
        config.faults.default_link.jitter_ms = 40;
        config.faults.seed = 7;
        let net = Network::new(config);
        net.register("a").unwrap();
        let rx = net.register("b").unwrap();
        for _ in 0..32 {
            net.send("a", "b", msg()).unwrap();
        }
        let mut delayed = 0;
        while let Ok(env) = rx.try_recv() {
            assert!(env.deliver_at_ms >= 10 && env.deliver_at_ms <= 50);
            if env.deliver_at_ms > 10 {
                delayed += 1;
            }
        }
        assert!(delayed > 0, "jitter should perturb at least one delivery");
        assert!(net.log().iter().any(|r| r.fault == FaultTag::Delayed));
    }

    #[test]
    fn fault_schedule_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let mut config = NetConfig::default();
            config.faults.seed = seed;
            config.faults.default_link = LinkFaults {
                drop_prob: 0.3,
                dup_prob: 0.2,
                jitter_ms: 25,
                spike_prob: 0.1,
                spike_ms: 200,
            };
            let net = Network::new(config);
            net.register("a").unwrap();
            let _rx = net.register("b").unwrap();
            for i in 0..64 {
                net.advance_clock(i);
                net.send("a", "b", msg()).unwrap();
            }
            net.log()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn retry_send_is_counted_and_flagged() {
        let net = Network::new(NetConfig::default());
        net.register("a").unwrap();
        let _rx = net.register("b").unwrap();
        net.send("a", "b", msg()).unwrap();
        net.send_retry("a", "b", msg()).unwrap();
        let stats = net.stats();
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.retries, 1);
        let log = net.log();
        assert!(!log[0].retry);
        assert!(log[1].retry);
    }

    #[test]
    fn inert_plan_reports_inert() {
        assert!(FaultPlan::default().is_inert());
        let mut plan = FaultPlan {
            seed: 99, // a seed alone injects nothing
            ..FaultPlan::default()
        };
        assert!(plan.is_inert());
        plan.default_link.drop_prob = 0.1;
        assert!(!plan.is_inert());
    }
}
