//! The simulated network connecting MDV nodes.
//!
//! The paper deploys MDPs and LMRs across the Internet; this reproduction
//! substitutes a deterministic in-process transport (see DESIGN.md): every
//! node owns an unbounded channel, messages carry a logical delivery time
//! derived from configurable per-link latencies, and every send is recorded
//! in a log so tests and examples can assert on traffic.

use std::collections::HashMap;

use mdv_runtime::channel::{unbounded, Receiver, Sender};
use mdv_runtime::sync::Mutex;

use crate::error::{Error, Result};
use crate::message::Message;

/// A routed message.
#[derive(Debug, Clone)]
pub struct Envelope {
    pub from: String,
    pub to: String,
    pub message: Message,
    /// Logical time at which the message reaches the receiver.
    pub deliver_at_ms: u64,
}

/// One line of the traffic log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    pub from: String,
    pub to: String,
    pub kind: &'static str,
    pub bytes: usize,
    pub sent_at_ms: u64,
    pub deliver_at_ms: u64,
}

/// Aggregate traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    pub messages: u64,
    pub bytes: u64,
    /// Logical clock after the last delivery.
    pub clock_ms: u64,
}

/// Latency configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Latency applied when no per-link override exists.
    pub default_latency_ms: u64,
    /// Per-link overrides, keyed `(from, to)`.
    pub links: HashMap<(String, String), u64>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            default_latency_ms: 10,
            links: HashMap::new(),
        }
    }
}

/// The in-process network.
pub struct Network {
    config: NetConfig,
    senders: Mutex<HashMap<String, Sender<Envelope>>>,
    log: Mutex<Vec<LogRecord>>,
    clock_ms: Mutex<u64>,
    stats: Mutex<NetStats>,
}

impl Network {
    pub fn new(config: NetConfig) -> Self {
        Network {
            config,
            senders: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
            clock_ms: Mutex::new(0),
            stats: Mutex::new(NetStats::default()),
        }
    }

    /// Registers a node and returns its mailbox.
    pub fn register(&self, name: &str) -> Result<Receiver<Envelope>> {
        let mut senders = self.senders.lock();
        if senders.contains_key(name) {
            return Err(Error::Topology(format!("node '{name}' already registered")));
        }
        let (tx, rx) = unbounded();
        senders.insert(name.to_owned(), tx);
        Ok(rx)
    }

    fn latency(&self, from: &str, to: &str) -> u64 {
        self.config
            .links
            .get(&(from.to_owned(), to.to_owned()))
            .copied()
            .unwrap_or(self.config.default_latency_ms)
    }

    /// Sends a message; delivery time is the current logical clock plus the
    /// link latency.
    pub fn send(&self, from: &str, to: &str, message: Message) -> Result<()> {
        let sender = self
            .senders
            .lock()
            .get(to)
            .cloned()
            .ok_or_else(|| Error::Topology(format!("unknown destination node '{to}'")))?;
        let sent_at = *self.clock_ms.lock();
        let deliver_at = sent_at + self.latency(from, to);
        let bytes = message.approx_size();
        self.log.lock().push(LogRecord {
            from: from.to_owned(),
            to: to.to_owned(),
            kind: message.kind(),
            bytes,
            sent_at_ms: sent_at,
            deliver_at_ms: deliver_at,
        });
        {
            let mut stats = self.stats.lock();
            stats.messages += 1;
            stats.bytes += bytes as u64;
        }
        sender
            .send(Envelope {
                from: from.to_owned(),
                to: to.to_owned(),
                message,
                deliver_at_ms: deliver_at,
            })
            .map_err(|_| Error::Topology(format!("mailbox of '{to}' is closed")))
    }

    /// Advances the logical clock to a delivery time (monotone).
    pub fn advance_clock(&self, to_ms: u64) {
        let mut clock = self.clock_ms.lock();
        if to_ms > *clock {
            *clock = to_ms;
        }
        self.stats.lock().clock_ms = *clock;
    }

    pub fn stats(&self) -> NetStats {
        *self.stats.lock()
    }

    /// A copy of the full traffic log.
    pub fn log(&self) -> Vec<LogRecord> {
        self.log.lock().clone()
    }

    /// Traffic counts per message kind.
    pub fn traffic_by_kind(&self) -> HashMap<&'static str, u64> {
        let mut out = HashMap::new();
        for rec in self.log.lock().iter() {
            *out.entry(rec.kind).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message::ReplicateDelete {
            document_uri: "doc.rdf".into(),
        }
    }

    #[test]
    fn register_and_send() {
        let net = Network::new(NetConfig::default());
        let rx = net.register("a").unwrap();
        net.register("b").unwrap();
        net.send("b", "a", msg()).unwrap();
        let env = rx.try_recv().unwrap();
        assert_eq!(env.from, "b");
        assert_eq!(env.deliver_at_ms, 10);
        assert_eq!(net.stats().messages, 1);
        assert!(net.stats().bytes > 0);
    }

    #[test]
    fn duplicate_node_rejected() {
        let net = Network::new(NetConfig::default());
        net.register("a").unwrap();
        assert!(matches!(net.register("a"), Err(Error::Topology(_))));
    }

    #[test]
    fn unknown_destination_rejected() {
        let net = Network::new(NetConfig::default());
        net.register("a").unwrap();
        assert!(matches!(
            net.send("a", "nowhere", msg()),
            Err(Error::Topology(_))
        ));
    }

    #[test]
    fn per_link_latency_override() {
        let mut config = NetConfig::default();
        config.links.insert(("a".into(), "b".into()), 250);
        let net = Network::new(config);
        net.register("a").unwrap();
        let rx = net.register("b").unwrap();
        net.send("a", "b", msg()).unwrap();
        let env = rx.try_recv().unwrap();
        assert_eq!(env.deliver_at_ms, 250);
    }

    #[test]
    fn clock_advances_monotonically() {
        let net = Network::new(NetConfig::default());
        net.advance_clock(100);
        net.advance_clock(50);
        assert_eq!(net.stats().clock_ms, 100);
    }

    #[test]
    fn log_records_traffic() {
        let net = Network::new(NetConfig::default());
        let _ra = net.register("a").unwrap();
        let _rb = net.register("b").unwrap();
        net.send("a", "b", msg()).unwrap();
        net.send("a", "b", msg()).unwrap();
        assert_eq!(net.log().len(), 2);
        assert_eq!(net.traffic_by_kind()["replicate-delete"], 2);
    }
}
