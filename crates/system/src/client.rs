//! MDV client conveniences (paper §2.2): applications query their LMR;
//! real users browse metadata at an MDP and select resources for caching,
//! whereupon "their LMR will generate appropriate rules and update its set
//! of subscription rules".

use mdv_rdf::Resource;

use crate::error::{Error, Result};
use crate::system::MdvSystem;

impl MdvSystem {
    /// Lists the schema classes browsable at an MDP.
    pub fn browse_classes(&self, mdp: &str) -> Result<Vec<String>> {
        Ok(self.mdp(mdp)?.browse_classes())
    }

    /// Lists the (global) resources of a class at an MDP.
    pub fn browse_resources(&self, mdp: &str, class: &str) -> Result<Vec<Resource>> {
        self.mdp(mdp)?.browse_resources(class)
    }

    /// A user browsing at the MDP selected `uri` for caching: the LMR
    /// generates an OID rule for it and registers the subscription.
    pub fn subscribe_to_resource(&mut self, lmr: &str, uri: &str) -> Result<u64> {
        let mdp_name = self.lmr(lmr)?.mdp().to_owned();
        let class = self
            .mdp(&mdp_name)?
            .class_of_resource(uri)?
            .ok_or_else(|| Error::Subscription(format!("no resource '{uri}' at '{mdp_name}'")))?;
        let rule = format!(
            "search {class} v register v where v = '{}'",
            uri.replace('\'', "''")
        );
        self.subscribe(lmr, &rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::{Document, RdfSchema, Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn doc(i: usize) -> Document {
        let uri = format!("doc{i}.rdf");
        Document::new(uri.clone())
            .with_resource(
                Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                    .with("serverHost", Term::literal("a.org"))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new(&uri, "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                    .with("memory", Term::literal("92"))
                    .with("cpu", Term::literal("600")),
            )
    }

    #[test]
    fn browse_then_select_for_caching() {
        let mut sys = MdvSystem::new(schema());
        sys.add_mdp("mdp1").unwrap();
        sys.add_lmr("lmr1", "mdp1").unwrap();
        sys.register_document("mdp1", &doc(1)).unwrap();
        sys.register_document("mdp1", &doc(2)).unwrap();

        let classes = sys.browse_classes("mdp1").unwrap();
        assert!(classes.contains(&"CycleProvider".to_owned()));
        let providers = sys.browse_resources("mdp1", "CycleProvider").unwrap();
        assert_eq!(providers.len(), 2);

        // user selects the first provider; an OID rule is generated
        let uri = providers[0].uri().as_str().to_owned();
        sys.subscribe_to_resource("lmr1", &uri).unwrap();
        assert!(sys.lmr("lmr1").unwrap().is_cached(&uri));
        // the strong closure came along; the other provider did not
        assert!(sys.lmr("lmr1").unwrap().is_cached("doc1.rdf#info"));
        assert!(!sys.lmr("lmr1").unwrap().is_cached("doc2.rdf#host"));
    }

    #[test]
    fn selecting_missing_resource_fails() {
        let mut sys = MdvSystem::new(schema());
        sys.add_mdp("mdp1").unwrap();
        sys.add_lmr("lmr1", "mdp1").unwrap();
        assert!(matches!(
            sys.subscribe_to_resource("lmr1", "ghost.rdf#x"),
            Err(Error::Subscription(_))
        ));
    }
}
