//! LMR-side garbage collection bookkeeping (paper §2.4).
//!
//! "With strong references an LMR can receive resources where there is no
//! corresponding rule for. An LMR must take care of deleting such resources
//! if the resource that caused their transmission is deleted. MDV uses a
//! garbage collector (based on reference counting) to detect such resources
//! and remove them if necessary."
//!
//! A cached resource is *anchored* when it matches at least one subscription
//! rule, is strongly referenced by another cached resource, or is local
//! metadata. Unanchored resources are garbage.

use std::collections::{BTreeSet, HashMap, HashSet};

/// Reference-count and match bookkeeping for an LMR cache.
#[derive(Debug, Clone, Default)]
pub struct RefTracker {
    /// Number of strong references from cached resources to this URI.
    strong_rc: HashMap<String, usize>,
    /// Subscription rules (LMR-local ids) each URI currently matches.
    matches: HashMap<String, BTreeSet<u64>>,
    /// Local metadata is never collected.
    local: HashSet<String>,
}

impl RefTracker {
    pub fn new() -> Self {
        RefTracker::default()
    }

    /// Records a strong reference onto `target`.
    pub fn add_edge(&mut self, target: &str) {
        *self.strong_rc.entry(target.to_owned()).or_insert(0) += 1;
    }

    /// Removes one strong reference from `target`.
    pub fn remove_edge(&mut self, target: &str) {
        if let Some(rc) = self.strong_rc.get_mut(target) {
            *rc = rc.saturating_sub(1);
            if *rc == 0 {
                self.strong_rc.remove(target);
            }
        }
    }

    pub fn strong_count(&self, uri: &str) -> usize {
        self.strong_rc.get(uri).copied().unwrap_or(0)
    }

    /// Records that `uri` matches rule `rule`.
    pub fn add_match(&mut self, uri: &str, rule: u64) {
        self.matches.entry(uri.to_owned()).or_default().insert(rule);
    }

    /// Removes the rule-match anchor; a no-op when absent.
    pub fn remove_match(&mut self, uri: &str, rule: u64) {
        if let Some(set) = self.matches.get_mut(uri) {
            set.remove(&rule);
            if set.is_empty() {
                self.matches.remove(uri);
            }
        }
    }

    /// Removes all match anchors of one rule (unsubscribe). Returns the
    /// affected URIs.
    pub fn remove_rule(&mut self, rule: u64) -> Vec<String> {
        let affected: Vec<String> = self
            .matches
            .iter()
            .filter(|(_, rules)| rules.contains(&rule))
            .map(|(uri, _)| uri.clone())
            .collect();
        for uri in &affected {
            self.remove_match(uri, rule);
        }
        affected
    }

    pub fn matching_rules(&self, uri: &str) -> Vec<u64> {
        self.matches
            .get(uri)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    pub fn mark_local(&mut self, uri: &str) {
        self.local.insert(uri.to_owned());
    }

    pub fn unmark_local(&mut self, uri: &str) {
        self.local.remove(uri);
    }

    pub fn is_local(&self, uri: &str) -> bool {
        self.local.contains(uri)
    }

    /// A resource is anchored when a rule matches it, another cached
    /// resource strongly references it, or it is local metadata.
    pub fn is_anchored(&self, uri: &str) -> bool {
        self.local.contains(uri)
            || self.matches.contains_key(uri)
            || self.strong_rc.get(uri).is_some_and(|rc| *rc > 0)
    }

    /// Drops all bookkeeping for a collected resource (its outgoing edges
    /// must be removed by the caller via [`RefTracker::remove_edge`]).
    pub fn forget(&mut self, uri: &str) {
        self.matches.remove(uri);
        self.strong_rc.remove(uri);
        self.local.remove(uri);
    }

    /// All rule ids that still anchor at least one cached resource. Lets
    /// tests assert that no retracted rule keeps matches alive.
    pub fn rules_referenced(&self) -> BTreeSet<u64> {
        self.matches.values().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchoring_by_match_edge_and_local() {
        let mut t = RefTracker::new();
        assert!(!t.is_anchored("a"));
        t.add_match("a", 1);
        assert!(t.is_anchored("a"));
        t.remove_match("a", 1);
        assert!(!t.is_anchored("a"));

        t.add_edge("a");
        t.add_edge("a");
        assert!(t.is_anchored("a"));
        assert_eq!(t.strong_count("a"), 2);
        t.remove_edge("a");
        assert!(t.is_anchored("a"));
        t.remove_edge("a");
        assert!(!t.is_anchored("a"));

        t.mark_local("a");
        assert!(t.is_anchored("a"));
        t.unmark_local("a");
        assert!(!t.is_anchored("a"));
    }

    #[test]
    fn multiple_rules_keep_anchor() {
        let mut t = RefTracker::new();
        t.add_match("a", 1);
        t.add_match("a", 2);
        t.remove_match("a", 1);
        assert!(t.is_anchored("a"), "still matched by rule 2");
        assert_eq!(t.matching_rules("a"), vec![2]);
    }

    #[test]
    fn remove_rule_returns_affected() {
        let mut t = RefTracker::new();
        t.add_match("a", 1);
        t.add_match("b", 1);
        t.add_match("b", 2);
        let mut affected = t.remove_rule(1);
        affected.sort();
        assert_eq!(affected, vec!["a".to_owned(), "b".to_owned()]);
        assert!(!t.is_anchored("a"));
        assert!(t.is_anchored("b"));
        assert_eq!(t.rules_referenced().into_iter().collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn edge_underflow_is_safe() {
        let mut t = RefTracker::new();
        t.remove_edge("ghost");
        assert_eq!(t.strong_count("ghost"), 0);
    }

    #[test]
    fn forget_clears_everything() {
        let mut t = RefTracker::new();
        t.add_match("a", 1);
        t.add_edge("a");
        t.mark_local("a");
        t.forget("a");
        assert!(!t.is_anchored("a"));
    }
}
