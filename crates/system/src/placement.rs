//! The placement layer: mapping the document shard space onto MDPs
//! (DESIGN.md §11).
//!
//! The backbone's default replication is *full*: every document reaches
//! every MDP. That caps aggregate capacity at one node's capacity. The
//! placement table turns the backbone into partitioned-with-replicas: the
//! document URI space is hashed into a fixed shard space (FNV-1a, the same
//! hash the intra-node `ShardedFilterEngine` uses), and each shard is
//! assigned to `R` MDPs by rendezvous (highest-random-weight) hashing over
//! the *live* MDP set. The first assignee is the shard's **primary** — it
//! takes the writes and publishes the matches; the rest are replicas.
//!
//! The table is a pure function of `(mdp set, shard count, R, epoch)`:
//! every node that knows those four values computes byte-identical
//! assignments, so the table itself needs no coordination protocol — the
//! orchestrator bumps the epoch on `add_mdp`/`fail_mdp`/`heal_mdp` and
//! installs the recomputed table on every live node. Rendezvous hashing
//! keeps movement minimal: removing a node never reassigns a shard between
//! two surviving owners, and adding one only moves shards onto the new
//! node.

use std::collections::BTreeSet;

use crate::error::{Error, Result};
use crate::mdp::fnv1a64;
use crate::message::{escape, unescape};

/// Default size of the system-tier document shard space. Distinct from the
/// per-node *filter* shard count (DESIGN.md §8): this space is fixed for
/// the deployment's lifetime and only its *assignment* to nodes changes.
pub const DEFAULT_PLACEMENT_SHARDS: usize = 64;

/// System-tier placement settings (see [`crate::system::MdvSystem`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementConfig {
    /// Replicas per document shard. Clamped to the live MDP count when the
    /// table is computed, so `factor >= mdp count` behaves like full
    /// replication.
    pub factor: usize,
    /// Size of the document shard space.
    pub shards: usize,
}

impl PlacementConfig {
    pub fn new(factor: usize) -> Self {
        PlacementConfig {
            factor,
            shards: DEFAULT_PLACEMENT_SHARDS,
        }
    }
}

/// A deterministic assignment of every document shard to an ordered replica
/// set of MDPs (primary first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementTable {
    epoch: u64,
    factor: usize,
    shards: usize,
    /// The (sorted) live MDP set the table was computed over.
    mdps: Vec<String>,
    /// Per shard: indices into `mdps`, primary first.
    assignments: Vec<Vec<usize>>,
}

impl PlacementTable {
    /// Computes the table for a given live MDP set. Pure and deterministic:
    /// the same `(mdps, shards, factor, epoch)` always yields the same
    /// assignments, independent of the order `mdps` is supplied in.
    pub fn compute<S: AsRef<str>>(mdps: &[S], shards: usize, factor: usize, epoch: u64) -> Self {
        let mut names: Vec<String> = mdps.iter().map(|m| m.as_ref().to_owned()).collect();
        names.sort();
        names.dedup();
        let shards = shards.max(1);
        let take = factor.clamp(1, names.len().max(1));
        let mut assignments = Vec::with_capacity(shards);
        for shard in 0..shards {
            // rendezvous hashing: rank every node by a per-(shard, node)
            // weight; the top `factor` nodes own the shard, the very top is
            // its primary. The epoch is deliberately *not* mixed into the
            // weight — re-ranking on every bump would shuffle the whole
            // table instead of moving only the failed node's shards.
            let mut ranked: Vec<(u64, usize)> = names
                .iter()
                .enumerate()
                .map(|(i, name)| (fnv1a64(format!("{shard}/{name}").as_bytes()), i))
                .collect();
            ranked.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| names[a.1].cmp(&names[b.1])));
            assignments.push(ranked.into_iter().take(take).map(|(_, i)| i).collect());
        }
        PlacementTable {
            epoch,
            factor,
            shards,
            mdps: names,
            assignments,
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn factor(&self) -> usize {
        self.factor
    }

    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The (sorted) MDP set the table was computed over.
    pub fn mdps(&self) -> &[String] {
        &self.mdps
    }

    /// The shard a document URI hashes to.
    pub fn shard_of(&self, doc_uri: &str) -> usize {
        (fnv1a64(doc_uri.as_bytes()) % self.shards as u64) as usize
    }

    /// The ordered replica set of a shard (primary first).
    pub fn owners(&self, shard: usize) -> impl Iterator<Item = &str> {
        self.assignments[shard % self.shards]
            .iter()
            .map(|&i| self.mdps[i].as_str())
    }

    /// The primary of a shard.
    pub fn primary(&self, shard: usize) -> &str {
        &self.mdps[self.assignments[shard % self.shards][0]]
    }

    /// The primary of the shard a document URI hashes to.
    pub fn primary_for(&self, doc_uri: &str) -> &str {
        self.primary(self.shard_of(doc_uri))
    }

    pub fn owns(&self, mdp: &str, shard: usize) -> bool {
        self.owners(shard).any(|o| o == mdp)
    }

    /// Whether `mdp` is in the replica set of `doc_uri`'s shard.
    pub fn owns_doc(&self, mdp: &str, doc_uri: &str) -> bool {
        self.owns(mdp, self.shard_of(doc_uri))
    }

    /// Whether `mdp` is the publishing primary for `doc_uri`.
    pub fn is_primary(&self, mdp: &str, doc_uri: &str) -> bool {
        self.primary_for(doc_uri) == mdp
    }

    /// The replica set of `doc_uri`'s shard minus `mdp` itself — the fan-out
    /// targets of a write applied at `mdp`.
    pub fn replica_peers(&self, mdp: &str, doc_uri: &str) -> Vec<String> {
        self.owners(self.shard_of(doc_uri))
            .filter(|o| *o != mdp)
            .map(str::to_owned)
            .collect()
    }

    /// The shards `mdp` owns (as primary or replica).
    pub fn shards_of(&self, mdp: &str) -> BTreeSet<usize> {
        (0..self.shards).filter(|&s| self.owns(mdp, s)).collect()
    }

    /// Documents per node under this table, as a fraction of the corpus
    /// (the ≈ R/N storage share of partitioned-with-replicas).
    pub fn storage_share(&self) -> f64 {
        if self.mdps.is_empty() {
            return 1.0;
        }
        let copies: usize = self.assignments.iter().map(Vec::len).sum();
        copies as f64 / (self.shards as f64 * self.mdps.len() as f64)
    }

    /// Serializes the table's *inputs* (the assignments are recomputed on
    /// parse — they are a pure function of the inputs, and shipping only
    /// the inputs keeps the wire form small and canonical).
    pub fn to_wire(&self) -> String {
        let mut out = format!("{}\t{}\t{}", self.epoch, self.factor, self.shards);
        for m in &self.mdps {
            out.push('\t');
            out.push_str(&escape(m));
        }
        out
    }

    /// Parses [`to_wire`](Self::to_wire) output and recomputes the table.
    pub fn from_wire(wire: &str) -> Result<Self> {
        let bad = |what: &str| Error::Topology(format!("malformed placement table: {what}"));
        let mut fields = wire.split('\t');
        let epoch: u64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| bad("epoch"))?;
        let factor: usize = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| bad("factor"))?;
        let shards: usize = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| bad("shards"))?;
        if shards == 0 {
            return Err(bad("zero shards"));
        }
        let mdps: Vec<String> = fields.map(unescape).collect();
        if mdps.is_empty() {
            return Err(bad("empty mdp set"));
        }
        Ok(PlacementTable::compute(&mdps, shards, factor, epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (1..=n).map(|i| format!("m{i}")).collect()
    }

    #[test]
    fn table_is_deterministic_and_order_independent() {
        let a = PlacementTable::compute(&names(5), 64, 2, 7);
        let mut shuffled = names(5);
        shuffled.reverse();
        let b = PlacementTable::compute(&shuffled, 64, 2, 7);
        assert_eq!(a, b);
        for s in 0..64 {
            assert_eq!(a.owners(s).count(), 2);
            assert_eq!(a.primary(s), a.owners(s).next().unwrap());
        }
    }

    #[test]
    fn factor_clamps_to_the_node_count() {
        let t = PlacementTable::compute(&names(3), 16, 8, 0);
        for s in 0..16 {
            assert_eq!(t.owners(s).count(), 3, "R >= N behaves as full");
        }
        let t1 = PlacementTable::compute(&names(3), 16, 0, 0);
        for s in 0..16 {
            assert_eq!(t1.owners(s).count(), 1, "R floors at one copy");
        }
    }

    #[test]
    fn removing_a_node_moves_only_its_shards() {
        let full = PlacementTable::compute(&names(5), 128, 2, 0);
        let survivors: Vec<String> = names(5).into_iter().filter(|m| m != "m3").collect();
        let after = PlacementTable::compute(&survivors, 128, 2, 1);
        for s in 0..128 {
            let before: Vec<&str> = full.owners(s).collect();
            let now: Vec<&str> = after.owners(s).collect();
            // every surviving owner keeps the shard, in the same relative
            // order; only m3's slots are re-filled
            let kept: Vec<&&str> = before.iter().filter(|o| **o != "m3").collect();
            for (i, o) in kept.iter().enumerate() {
                assert_eq!(now[i], **o, "shard {s} shuffled surviving owners");
            }
            if !before.contains(&"m3") {
                assert_eq!(before, now, "shard {s} moved without losing an owner");
            }
        }
    }

    #[test]
    fn adding_a_node_only_moves_shards_onto_it() {
        let small = PlacementTable::compute(&names(4), 128, 2, 0);
        let grown = PlacementTable::compute(&names(5), 128, 2, 1);
        for s in 0..128 {
            let before: Vec<&str> = small.owners(s).collect();
            let now: Vec<&str> = grown.owners(s).collect();
            for o in &now {
                assert!(
                    *o == "m5" || before.contains(o),
                    "shard {s} moved between old nodes"
                );
            }
        }
    }

    #[test]
    fn shards_spread_over_all_nodes() {
        let t = PlacementTable::compute(&names(4), 64, 2, 0);
        for m in names(4) {
            let owned = t.shards_of(&m).len();
            assert!(
                owned >= 64 / 4 / 2,
                "{m} owns only {owned} of 64 shards — HRW badly skewed"
            );
        }
        let share = t.storage_share();
        assert!(
            (share - 0.5).abs() < 1e-9,
            "2 of 4 copies = 0.5, got {share}"
        );
    }

    #[test]
    fn wire_roundtrip() {
        let t = PlacementTable::compute(&["a b", "c\td", "m1"], 32, 2, 9);
        let back = PlacementTable::from_wire(&t.to_wire()).unwrap();
        assert_eq!(t, back);
        assert!(PlacementTable::from_wire("x").is_err());
        assert!(PlacementTable::from_wire("1\t2").is_err());
        assert!(PlacementTable::from_wire("1\t2\t0\tm1").is_err());
        assert!(PlacementTable::from_wire("1\t2\t8").is_err());
    }
}
