//! Messages exchanged between MDV nodes.
//!
//! Resources travel as structured values inside publications; whole
//! documents (backbone replication) travel in the RDF/XML wire syntax,
//! exercising the same parser/writer an internet deployment would use.

use mdv_rdf::Resource;

/// A message between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// LMR → MDP: register a subscription rule. `lmr_rule` is the LMR-local
    /// rule id the MDP echoes in publications.
    Subscribe { lmr_rule: u64, rule_text: String },
    /// MDP → LMR: subscription outcome (errors are carried back).
    SubscribeAck {
        lmr_rule: u64,
        error: Option<String>,
    },
    /// LMR → MDP: retract a subscription.
    Unsubscribe { lmr_rule: u64 },
    /// MDP → LMR: confirms a retraction (so the LMR can stop retrying).
    UnsubscribeAck { lmr_rule: u64 },
    /// MDP → LMR: matched / updated / removed resources of one rule.
    Publish(PublishMsg),
    /// LMR → MDP: confirms receipt of the publication with sequence `seq`,
    /// completing the at-least-once delivery handshake.
    PublishAck { seq: u64 },
    /// MDP → MDP backbone replication: a newly registered document.
    ReplicateRegister { document_uri: String, xml: String },
    /// MDP → MDP: an updated document (re-registration).
    ReplicateUpdate { document_uri: String, xml: String },
    /// MDP → MDP: a deleted document.
    ReplicateDelete { document_uri: String },
}

impl Message {
    /// Short tag for logs and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Subscribe { .. } => "subscribe",
            Message::SubscribeAck { .. } => "subscribe-ack",
            Message::Unsubscribe { .. } => "unsubscribe",
            Message::UnsubscribeAck { .. } => "unsubscribe-ack",
            Message::Publish(_) => "publish",
            Message::PublishAck { .. } => "publish-ack",
            Message::ReplicateRegister { .. } => "replicate-register",
            Message::ReplicateUpdate { .. } => "replicate-update",
            Message::ReplicateDelete { .. } => "replicate-delete",
        }
    }

    /// Rough payload size in bytes, for the network statistics.
    pub fn approx_size(&self) -> usize {
        fn resource_size(r: &Resource) -> usize {
            r.uri().as_str().len()
                + r.class().len()
                + r.properties()
                    .iter()
                    .map(|(p, t)| p.len() + t.lexical().len())
                    .sum::<usize>()
        }
        match self {
            Message::Subscribe { rule_text, .. } => rule_text.len() + 8,
            Message::SubscribeAck { error, .. } => 8 + error.as_ref().map_or(0, |e| e.len()),
            Message::Unsubscribe { .. } => 8,
            Message::UnsubscribeAck { .. } => 8,
            Message::PublishAck { .. } => 8,
            Message::Publish(p) => {
                8 + p.matched.iter().map(resource_size).sum::<usize>()
                    + p.companions.iter().map(resource_size).sum::<usize>()
                    + p.updated.iter().map(resource_size).sum::<usize>()
                    + p.removed.iter().map(String::len).sum::<usize>()
            }
            Message::ReplicateRegister { xml, document_uri }
            | Message::ReplicateUpdate { xml, document_uri } => xml.len() + document_uri.len(),
            Message::ReplicateDelete { document_uri } => document_uri.len(),
        }
    }
}

/// A publication towards one LMR rule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PublishMsg {
    /// Per-(MDP, LMR) publication sequence number; the LMR acks it and
    /// applies publications in sequence order exactly once.
    pub seq: u64,
    /// The LMR-local id of the rule these resources belong to.
    pub lmr_rule: u64,
    /// Resources matching the rule (new matches or the initial backfill).
    pub matched: Vec<Resource>,
    /// Resources shipped along because they are in the strong-reference
    /// closure of a matched/updated resource (paper §2.4).
    pub companions: Vec<Resource>,
    /// Resources that still match but whose content changed.
    pub updated: Vec<Resource>,
    /// URIs of resources that no longer match the rule.
    pub removed: Vec<String>,
}

impl PublishMsg {
    pub fn is_empty(&self) -> bool {
        self.matched.is_empty()
            && self.companions.is_empty()
            && self.updated.is_empty()
            && self.removed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::{Term, UriRef};

    #[test]
    fn kinds_and_sizes() {
        let m = Message::Subscribe {
            lmr_rule: 1,
            rule_text: "search C c register c".into(),
        };
        assert_eq!(m.kind(), "subscribe");
        assert!(m.approx_size() > 8);

        let res = Resource::new(UriRef::new("d", "x"), "C").with("p", Term::literal("v"));
        let p = Message::Publish(PublishMsg {
            lmr_rule: 0,
            matched: vec![res],
            ..PublishMsg::default()
        });
        assert_eq!(p.kind(), "publish");
        assert!(p.approx_size() > 4);
    }

    #[test]
    fn publish_emptiness() {
        assert!(PublishMsg::default().is_empty());
        let mut p = PublishMsg::default();
        p.removed.push("d#x".into());
        assert!(!p.is_empty());
    }
}
