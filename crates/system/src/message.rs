//! Messages exchanged between MDV nodes.
//!
//! Resources travel as structured values inside publications; whole
//! documents (backbone replication) travel in the RDF/XML wire syntax,
//! exercising the same parser/writer an internet deployment would use.

use mdv_rdf::{Resource, Term, UriRef};

/// A message between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// LMR → MDP: register a subscription rule. `lmr_rule` is the LMR-local
    /// rule id the MDP echoes in publications.
    Subscribe { lmr_rule: u64, rule_text: String },
    /// MDP → LMR: subscription outcome (errors are carried back).
    SubscribeAck {
        lmr_rule: u64,
        error: Option<String>,
    },
    /// LMR → MDP: retract a subscription.
    Unsubscribe { lmr_rule: u64 },
    /// MDP → LMR: confirms a retraction (so the LMR can stop retrying).
    UnsubscribeAck { lmr_rule: u64 },
    /// MDP → LMR: matched / updated / removed resources of one rule.
    Publish(PublishMsg),
    /// LMR → MDP: confirms receipt of the publication with sequence `seq`,
    /// completing the at-least-once delivery handshake.
    PublishAck { seq: u64 },
    /// MDP → MDP backbone replication: a newly registered document.
    /// `seq` is the per-(origin, peer) replication sequence number of the
    /// at-least-once handshake; `version` is the origin's per-URI document
    /// version used for conflict resolution (DESIGN.md §7).
    ReplicateRegister {
        seq: u64,
        version: u64,
        document_uri: String,
        xml: String,
    },
    /// MDP → MDP: an updated document (re-registration).
    ReplicateUpdate {
        seq: u64,
        version: u64,
        document_uri: String,
        xml: String,
    },
    /// MDP → MDP: a deleted document.
    ReplicateDelete {
        seq: u64,
        version: u64,
        document_uri: String,
    },
    /// MDP → MDP: confirms receipt of the replication operation with
    /// sequence `seq`, completing the at-least-once handshake.
    ReplicateAck { seq: u64 },
    /// MDP → MDP anti-entropy: a digest of the sender's whole document set
    /// (per-URI version + content hash; deletions appear as tombstones).
    ReplicaDigest { entries: Vec<DigestEntry> },
    /// MDP → MDP anti-entropy under a placement table (DESIGN.md §11):
    /// like [`Message::ReplicaDigest`], but stamped with the sender's
    /// placement epoch. Receivers on a different epoch ignore it, and
    /// receivers on the same epoch pull only documents in shards they own —
    /// this is the shard-handoff vehicle of partitioned-with-replicas.
    PlacementDigest {
        epoch: u64,
        entries: Vec<DigestEntry>,
    },
    /// MDP → MDP anti-entropy: pull the listed documents, which the
    /// requester's diff against a [`Message::ReplicaDigest`] showed to be
    /// missing or stale locally.
    RepairRequest { uris: Vec<String> },
    /// MDP → MDP anti-entropy: repair payload answering a
    /// [`Message::RepairRequest`].
    RepairDocs { docs: Vec<RepairDoc> },
    /// LMR → MDP failover handshake: "you are my home MDP now; the last
    /// publication sequence I applied was `last_seq - 1`".
    FailoverHello { last_seq: u64 },
    /// MDP → LMR: floor synchronization answering a failover hello —
    /// `next_seq` is the next publication sequence this MDP will assign
    /// for the LMR, so the LMR can fast-forward its dedup floor.
    FailoverWelcome { next_seq: u64 },
    /// LMR → MDP: re-register a rule after failover. `last_seq` keys the
    /// catch-up: a subscriber that is already known and fully caught up
    /// skips the snapshot backfill.
    Resubscribe {
        lmr_rule: u64,
        rule_text: String,
        last_seq: u64,
    },
    /// MDP → MDP (Raft mode): a candidate solicits a vote for `term`.
    /// `last_log_index`/`last_log_term` implement the up-to-date check of
    /// the Raft election restriction (§5.4.1 of the Raft paper).
    RequestVote {
        term: u64,
        last_log_index: u64,
        last_log_term: u64,
    },
    /// MDP → MDP (Raft mode): vote reply. `term` is the voter's current
    /// term so a stale candidate can step down.
    RequestVoteReply { term: u64, granted: bool },
    /// MDP → MDP (Raft mode): leader log replication and heartbeat.
    /// `entries` carries `(term, command wire form)` pairs appended after
    /// the consistency-check point `(prev_log_index, prev_log_term)`.
    AppendEntries {
        term: u64,
        prev_log_index: u64,
        prev_log_term: u64,
        leader_commit: u64,
        entries: Vec<(u64, String)>,
    },
    /// MDP → MDP (Raft mode): append reply. `match_index` is the highest
    /// log index known replicated on the follower when `success`, or a
    /// hint for the leader's `next_index` backoff when not.
    AppendEntriesReply {
        term: u64,
        success: bool,
        match_index: u64,
    },
    /// MDP → MDP (Raft mode): leader ships a state-machine snapshot to a
    /// follower whose `next_index` precedes the leader's compacted log
    /// base. `data` is the serialized applied state.
    InstallSnapshot {
        term: u64,
        last_index: u64,
        last_term: u64,
        data: String,
    },
    /// MDP → MDP (Raft mode): snapshot install reply; `match_index` is the
    /// snapshot anchor the follower now sits at.
    InstallSnapshotReply { term: u64, match_index: u64 },
}

/// One entry of an anti-entropy digest: the origin's view of one URI.
#[derive(Debug, Clone, PartialEq)]
pub struct DigestEntry {
    pub uri: String,
    /// Per-URI document version (monotone across the backbone).
    pub version: u64,
    /// True if the entry is a deletion tombstone.
    pub deleted: bool,
    /// FNV-1a (64-bit) over the canonical RDF/XML serialization; 0 for
    /// tombstones.
    pub hash: u64,
}

/// One document shipped in an anti-entropy repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairDoc {
    pub uri: String,
    pub version: u64,
    pub deleted: bool,
    /// Canonical RDF/XML content; empty for tombstones.
    pub xml: String,
}

impl Message {
    /// Short tag for logs and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Subscribe { .. } => "subscribe",
            Message::SubscribeAck { .. } => "subscribe-ack",
            Message::Unsubscribe { .. } => "unsubscribe",
            Message::UnsubscribeAck { .. } => "unsubscribe-ack",
            Message::Publish(_) => "publish",
            Message::PublishAck { .. } => "publish-ack",
            Message::ReplicateRegister { .. } => "replicate-register",
            Message::ReplicateUpdate { .. } => "replicate-update",
            Message::ReplicateDelete { .. } => "replicate-delete",
            Message::ReplicateAck { .. } => "replicate-ack",
            Message::ReplicaDigest { .. } => "replica-digest",
            Message::PlacementDigest { .. } => "placement-digest",
            Message::RepairRequest { .. } => "repair-request",
            Message::RepairDocs { .. } => "repair-docs",
            Message::FailoverHello { .. } => "failover-hello",
            Message::FailoverWelcome { .. } => "failover-welcome",
            Message::Resubscribe { .. } => "resubscribe",
            Message::RequestVote { .. } => "request-vote",
            Message::RequestVoteReply { .. } => "request-vote-reply",
            Message::AppendEntries { .. } => "append-entries",
            Message::AppendEntriesReply { .. } => "append-entries-reply",
            Message::InstallSnapshot { .. } => "install-snapshot",
            Message::InstallSnapshotReply { .. } => "install-snapshot-reply",
        }
    }

    /// Rough payload size in bytes, for the network statistics.
    pub fn approx_size(&self) -> usize {
        fn resource_size(r: &Resource) -> usize {
            r.uri().as_str().len()
                + r.class().len()
                + r.properties()
                    .iter()
                    .map(|(p, t)| p.len() + t.lexical().len())
                    .sum::<usize>()
        }
        match self {
            Message::Subscribe { rule_text, .. } => rule_text.len() + 8,
            Message::SubscribeAck { error, .. } => 8 + error.as_ref().map_or(0, |e| e.len()),
            Message::Unsubscribe { .. } => 8,
            Message::UnsubscribeAck { .. } => 8,
            Message::PublishAck { .. } => 8,
            Message::Publish(p) => {
                8 + p.matched.iter().map(resource_size).sum::<usize>()
                    + p.companions.iter().map(resource_size).sum::<usize>()
                    + p.updated.iter().map(resource_size).sum::<usize>()
                    + p.removed.iter().map(String::len).sum::<usize>()
            }
            Message::ReplicateRegister {
                xml, document_uri, ..
            }
            | Message::ReplicateUpdate {
                xml, document_uri, ..
            } => xml.len() + document_uri.len() + 16,
            Message::ReplicateDelete { document_uri, .. } => document_uri.len() + 16,
            Message::ReplicateAck { .. } => 8,
            Message::ReplicaDigest { entries } => {
                entries.iter().map(|e| e.uri.len() + 17).sum::<usize>()
            }
            Message::PlacementDigest { entries, .. } => {
                8 + entries.iter().map(|e| e.uri.len() + 17).sum::<usize>()
            }
            Message::RepairRequest { uris } => uris.iter().map(String::len).sum::<usize>(),
            Message::RepairDocs { docs } => docs
                .iter()
                .map(|d| d.uri.len() + d.xml.len() + 9)
                .sum::<usize>(),
            Message::FailoverHello { .. } => 8,
            Message::FailoverWelcome { .. } => 8,
            Message::Resubscribe { rule_text, .. } => rule_text.len() + 16,
            Message::RequestVote { .. } => 24,
            Message::RequestVoteReply { .. } => 9,
            Message::AppendEntries { entries, .. } => {
                32 + entries.iter().map(|(_, cmd)| cmd.len() + 8).sum::<usize>()
            }
            Message::AppendEntriesReply { .. } => 17,
            Message::InstallSnapshot { data, .. } => data.len() + 24,
            Message::InstallSnapshotReply { .. } => 16,
        }
    }
}

/// A publication towards one LMR rule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PublishMsg {
    /// Per-(MDP, LMR) publication sequence number; the LMR acks it and
    /// applies publications in sequence order exactly once.
    pub seq: u64,
    /// The LMR-local id of the rule these resources belong to.
    pub lmr_rule: u64,
    /// Resources matching the rule (new matches or the initial backfill).
    pub matched: Vec<Resource>,
    /// Resources shipped along because they are in the strong-reference
    /// closure of a matched/updated resource (paper §2.4).
    pub companions: Vec<Resource>,
    /// Resources that still match but whose content changed.
    pub updated: Vec<Resource>,
    /// URIs of resources that no longer match the rule.
    pub removed: Vec<String>,
    /// True for a reconciling snapshot sent after failover: `matched` +
    /// `companions` are the *complete* current state of the rule, and the
    /// LMR drops anchors that the snapshot does not list.
    pub snapshot: bool,
}

impl PublishMsg {
    pub fn is_empty(&self) -> bool {
        self.matched.is_empty()
            && self.companions.is_empty()
            && self.updated.is_empty()
            && self.removed.is_empty()
    }

    /// Serializes the publication into the line-oriented wire form used by
    /// the durable mirror tables (MDP outbox, LMR publication buffer). One
    /// record per line:
    ///
    /// ```text
    /// seq <seq>\t<lmr_rule>
    /// m|c|u <uri>\t<class>     -- matched/companion/updated resource
    /// p <name>\t<R|L>\t<value> -- property of the preceding resource
    /// x <uri>                  -- removed match
    /// ```
    pub fn to_wire(&self) -> String {
        let mut out = format!("seq {}\t{}\n", self.seq, self.lmr_rule);
        if self.snapshot {
            // only emitted when set, so pre-failover wire forms are unchanged
            out.push_str("snap 1\n");
        }
        let mut section = |tag: &str, resources: &[Resource]| {
            for r in resources {
                out.push_str(&format!(
                    "{tag} {}\t{}\n",
                    escape(r.uri().as_str()),
                    escape(r.class())
                ));
                for (name, term) in r.properties() {
                    let kind = if term.is_resource() { 'R' } else { 'L' };
                    out.push_str(&format!(
                        "p {}\t{kind}\t{}\n",
                        escape(name),
                        escape(term.lexical())
                    ));
                }
            }
        };
        section("m", &self.matched);
        section("c", &self.companions);
        section("u", &self.updated);
        for uri in &self.removed {
            out.push_str(&format!("x {}\n", escape(uri)));
        }
        out
    }

    /// Parses the wire form produced by [`PublishMsg::to_wire`].
    pub fn from_wire(text: &str) -> std::result::Result<PublishMsg, String> {
        let mut msg = PublishMsg::default();
        // index of the section the next resource lands in
        let mut current: Option<(usize, Resource)> = None;
        let flush = |msg: &mut PublishMsg, current: &mut Option<(usize, Resource)>| {
            if let Some((section, res)) = current.take() {
                match section {
                    0 => msg.matched.push(res),
                    1 => msg.companions.push(res),
                    _ => msg.updated.push(res),
                }
            }
        };
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let (tag, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed publication record: {line}"))?;
            match tag {
                "seq" => {
                    let (seq, rule) = rest
                        .split_once('\t')
                        .ok_or_else(|| "malformed seq record".to_owned())?;
                    msg.seq = seq.parse().map_err(|_| "bad seq".to_owned())?;
                    msg.lmr_rule = rule.parse().map_err(|_| "bad rule id".to_owned())?;
                }
                "snap" => msg.snapshot = rest == "1",
                "m" | "c" | "u" => {
                    flush(&mut msg, &mut current);
                    let (uri, class) = rest
                        .split_once('\t')
                        .ok_or_else(|| "malformed resource record".to_owned())?;
                    let uri = UriRef::parse(&unescape(uri))
                        .ok_or_else(|| format!("bad resource uri '{uri}'"))?;
                    let section = match tag {
                        "m" => 0,
                        "c" => 1,
                        _ => 2,
                    };
                    current = Some((section, Resource::new(uri, unescape(class))));
                }
                "p" => {
                    let mut fields = rest.splitn(3, '\t');
                    let (Some(name), Some(kind), Some(value)) =
                        (fields.next(), fields.next(), fields.next())
                    else {
                        return Err("malformed property record".to_owned());
                    };
                    let term = match kind {
                        "R" => Term::resource(
                            UriRef::parse(&unescape(value))
                                .ok_or_else(|| format!("bad reference '{value}'"))?,
                        ),
                        "L" => Term::literal(unescape(value)),
                        other => return Err(format!("bad property kind '{other}'")),
                    };
                    let (section, res) = current
                        .take()
                        .ok_or_else(|| "property before any resource".to_owned())?;
                    current = Some((section, res.with(unescape(name), term)));
                }
                "x" => {
                    flush(&mut msg, &mut current);
                    msg.removed.push(unescape(rest));
                }
                other => return Err(format!("unknown publication record '{other}'")),
            }
        }
        flush(&mut msg, &mut current);
        Ok(msg)
    }
}

/// Escapes tabs, newlines, and backslashes for the line-oriented state and
/// wire formats.
pub(crate) fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

/// Inverse of [`escape`].
pub(crate) fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::{Term, UriRef};

    #[test]
    fn kinds_and_sizes() {
        let m = Message::Subscribe {
            lmr_rule: 1,
            rule_text: "search C c register c".into(),
        };
        assert_eq!(m.kind(), "subscribe");
        assert!(m.approx_size() > 8);

        let res = Resource::new(UriRef::new("d", "x"), "C").with("p", Term::literal("v"));
        let p = Message::Publish(PublishMsg {
            lmr_rule: 0,
            matched: vec![res],
            ..PublishMsg::default()
        });
        assert_eq!(p.kind(), "publish");
        assert!(p.approx_size() > 4);
    }

    #[test]
    fn publish_wire_roundtrip() {
        let host = Resource::new(UriRef::new("d.rdf", "host"), "CycleProvider")
            .with("serverHost", Term::literal("a\torg\nb"))
            .with(
                "serverInformation",
                Term::resource(UriRef::new("d.rdf", "i")),
            );
        let info = Resource::new(UriRef::new("d.rdf", "i"), "ServerInformation")
            .with("memory", Term::literal("92"));
        let msg = PublishMsg {
            seq: 42,
            lmr_rule: 7,
            matched: vec![host.clone()],
            companions: vec![info.clone()],
            updated: vec![host],
            removed: vec!["old.rdf#gone".into(), "w\teird#x".into()],
            snapshot: true,
        };
        let decoded = PublishMsg::from_wire(&msg.to_wire()).unwrap();
        assert_eq!(decoded, msg);
        // empty publication roundtrips too
        assert_eq!(
            PublishMsg::from_wire(&PublishMsg::default().to_wire()).unwrap(),
            PublishMsg::default()
        );
    }

    #[test]
    fn publish_wire_rejects_garbage() {
        assert!(PublishMsg::from_wire("nope").is_err());
        assert!(PublishMsg::from_wire("seq x\ty\n").is_err());
        assert!(PublishMsg::from_wire("p orphan\tL\tv\n").is_err());
        assert!(PublishMsg::from_wire("m nouri\tC\n").is_err());
    }

    #[test]
    fn publish_emptiness() {
        assert!(PublishMsg::default().is_empty());
        let mut p = PublishMsg::default();
        p.removed.push("d#x".into());
        assert!(!p.is_empty());
    }
}
