//! Local Metadata Repositories (paper §2.2): the mid-tier caches that do the
//! actual metadata query processing.
//!
//! An LMR caches global metadata matching its subscription rules, applies
//! publications from its MDP to keep the cache consistent, stores local
//! metadata that is never forwarded to the backbone, and answers queries
//! from local clients against the cache only.

use std::collections::{BTreeMap, HashMap, HashSet};

use mdv_filter::{query_eval, store::create_base_tables, BaseStore};
use mdv_rdf::{Document, RdfSchema, RefKind, Resource};
use mdv_relstore::Database;
use mdv_rulelang::{normalize, parse_rule, split_or, typecheck};

use crate::error::{Error, Result};
use crate::gc::RefTracker;
use crate::message::{Message, PublishMsg};
use crate::transport::{Envelope, Network};

/// Lifecycle of a subscription rule at the LMR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleStatus {
    /// Sent to the MDP, no ack yet.
    Pending,
    /// Accepted by the MDP; publications flow.
    Active,
    /// Rejected by the MDP (error message attached).
    Failed(String),
}

/// A subscription rule registered by this LMR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmrRule {
    pub text: String,
    pub status: RuleStatus,
}

/// Retry state of an unacked control message (Subscribe/Unsubscribe).
#[derive(Debug, Clone)]
struct Retry {
    /// Logical time of the next retransmission.
    next_retry_ms: u64,
    /// Current backoff interval (doubles per retry up to the config cap).
    backoff_ms: u64,
}

impl Retry {
    fn new(net: &Network) -> Self {
        let backoff = net.config().retry_initial_ms;
        Retry {
            next_retry_ms: net.now_ms() + backoff,
            backoff_ms: backoff,
        }
    }
}

/// A Local Metadata Repository.
#[derive(Debug)]
pub struct Lmr {
    name: String,
    /// The MDP this LMR is subscribed to.
    mdp: String,
    schema: RdfSchema,
    pub(crate) cache: Database,
    pub(crate) tracker: RefTracker,
    pub(crate) rules: BTreeMap<u64, LmrRule>,
    pub(crate) next_rule: u64,
    pub(crate) local_docs: HashMap<String, Document>,
    /// Next publication sequence number expected from the MDP.
    pub(crate) next_pub_seq: u64,
    /// Publications received out of order, parked until the gap closes.
    pub_buffer: BTreeMap<u64, PublishMsg>,
    /// Rules retracted locally: late/duplicated publications for them are
    /// acked and discarded instead of resurrecting cache entries.
    dead_rules: HashSet<u64>,
    /// Subscribe messages awaiting their SubscribeAck, keyed by rule id.
    sub_retry: BTreeMap<u64, Retry>,
    /// Unsubscribe messages awaiting their UnsubscribeAck, keyed by rule id.
    unsub_retry: BTreeMap<u64, Retry>,
}

impl Lmr {
    pub fn new(name: &str, mdp: &str, schema: RdfSchema) -> Self {
        let mut cache = Database::new();
        create_base_tables(&mut cache).expect("fresh database accepts base tables");
        Lmr {
            name: name.to_owned(),
            mdp: mdp.to_owned(),
            schema,
            cache,
            tracker: RefTracker::new(),
            rules: BTreeMap::new(),
            next_rule: 0,
            local_docs: HashMap::new(),
            next_pub_seq: 0,
            pub_buffer: BTreeMap::new(),
            dead_rules: HashSet::new(),
            sub_retry: BTreeMap::new(),
            unsub_retry: BTreeMap::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn mdp(&self) -> &str {
        &self.mdp
    }

    pub fn rule(&self, id: u64) -> Option<&LmrRule> {
        self.rules.get(&id)
    }

    pub fn rules(&self) -> impl Iterator<Item = (u64, &LmrRule)> {
        self.rules.iter().map(|(id, r)| (*id, r))
    }

    /// URIs currently cached (global and local).
    pub fn cached_uris(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .cache
            .table("Resources")
            .expect("cache has base tables")
            .iter()
            .map(|(_, row)| row[0].to_string())
            .collect();
        out.sort();
        out
    }

    pub fn is_cached(&self, uri: &str) -> bool {
        BaseStore::resource_exists(&self.cache, uri).unwrap_or(false)
    }

    /// The cached copy of a resource.
    pub fn cached_resource(&self, uri: &str) -> Result<Option<Resource>> {
        Ok(BaseStore::resource(&self.cache, uri)?)
    }

    /// Registers a subscription rule: records it as pending and sends it to
    /// the MDP. Returns the LMR-local rule id.
    pub fn subscribe(&mut self, rule_text: &str, net: &Network) -> Result<u64> {
        let id = self.next_rule;
        self.next_rule += 1;
        self.rules.insert(
            id,
            LmrRule {
                text: rule_text.to_owned(),
                status: RuleStatus::Pending,
            },
        );
        net.send(
            &self.name,
            &self.mdp,
            Message::Subscribe {
                lmr_rule: id,
                rule_text: rule_text.to_owned(),
            },
        )?;
        self.sub_retry.insert(id, Retry::new(net));
        Ok(id)
    }

    /// Retracts a subscription rule and garbage-collects resources that were
    /// cached only because of it.
    pub fn unsubscribe(&mut self, rule: u64, net: &Network) -> Result<()> {
        if self.rules.remove(&rule).is_none() {
            return Err(Error::Subscription(format!(
                "LMR '{}' has no rule {rule}",
                self.name
            )));
        }
        self.tracker.remove_rule(rule);
        self.collect_garbage()?;
        self.sub_retry.remove(&rule);
        self.dead_rules.insert(rule);
        net.send(
            &self.name,
            &self.mdp,
            Message::Unsubscribe { lmr_rule: rule },
        )?;
        self.unsub_retry.insert(rule, Retry::new(net));
        Ok(())
    }

    /// Registers metadata that must stay local (paper §2.2: "local metadata
    /// must be explicitly marked as such at registration time" and is not
    /// forwarded to the backbone).
    pub fn register_local_metadata(&mut self, doc: &Document) -> Result<()> {
        doc.check_internal_references()?;
        self.schema.validate(doc)?;
        if self.local_docs.contains_key(doc.uri()) {
            return Err(Error::Local(format!(
                "local document '{}' already registered",
                doc.uri()
            )));
        }
        for res in doc.resources() {
            if self.is_cached(res.uri().as_str()) {
                return Err(Error::Local(format!(
                    "resource '{}' already exists in the cache",
                    res.uri()
                )));
            }
        }
        for res in doc.resources() {
            self.upsert_resource(res)?;
            self.tracker.mark_local(res.uri().as_str());
        }
        self.local_docs.insert(doc.uri().to_owned(), doc.clone());
        Ok(())
    }

    /// Evaluates a declarative query against the local cache only
    /// (paper §2.2: "LMRs use only locally available metadata for query
    /// processing"). Returns full resources.
    pub fn query(&self, query_text: &str) -> Result<Vec<Resource>> {
        let query = parse_rule(query_text)?;
        let mut uris = Vec::new();
        for conj in split_or(&query) {
            let normalized = match normalize(&conj, &self.schema) {
                Ok(n) => n,
                Err(mdv_rulelang::Error::Unsatisfiable) => continue,
                Err(e) => return Err(e.into()),
            };
            typecheck(&normalized, &self.schema)?;
            uris.extend(query_eval::evaluate(
                &self.cache,
                &self.schema,
                &normalized,
            )?);
        }
        uris.sort();
        uris.dedup();
        uris.into_iter()
            .map(|u| {
                BaseStore::resource(&self.cache, &u)?
                    .ok_or_else(|| Error::Local(format!("cache lost resource '{u}'")))
            })
            .collect()
    }

    /// Like [`Lmr::query`], but through the SQL translation path: the query
    /// is translated into a SQL join query over the cache's base tables and
    /// executed by the relational engine (paper §2.2: "search requests are
    /// translated into SQL join queries").
    pub fn query_sql(&self, query_text: &str) -> Result<Vec<Resource>> {
        let query = parse_rule(query_text)?;
        let mut uris = Vec::new();
        for conj in split_or(&query) {
            let normalized = match normalize(&conj, &self.schema) {
                Ok(n) => n,
                Err(mdv_rulelang::Error::Unsatisfiable) => continue,
                Err(e) => return Err(e.into()),
            };
            typecheck(&normalized, &self.schema)?;
            uris.extend(mdv_filter::sql_translate::evaluate_via_sql(
                &self.cache,
                &self.schema,
                &normalized,
            )?);
        }
        uris.sort();
        uris.dedup();
        uris.into_iter()
            .map(|u| {
                BaseStore::resource(&self.cache, &u)?
                    .ok_or_else(|| Error::Local(format!("cache lost resource '{u}'")))
            })
            .collect()
    }

    /// Processes one incoming message.
    pub fn handle(&mut self, env: Envelope, net: &Network) -> Result<()> {
        match env.message {
            Message::SubscribeAck { lmr_rule, error } => {
                self.sub_retry.remove(&lmr_rule);
                if let Some(rule) = self.rules.get_mut(&lmr_rule) {
                    rule.status = match error {
                        None => RuleStatus::Active,
                        Some(e) => RuleStatus::Failed(e),
                    };
                }
                Ok(())
            }
            Message::UnsubscribeAck { lmr_rule } => {
                self.unsub_retry.remove(&lmr_rule);
                Ok(())
            }
            Message::Publish(msg) => self.receive_publication(msg, net),
            other => Err(Error::Topology(format!(
                "LMR '{}' received unexpected message kind '{}'",
                self.name,
                other.kind()
            ))),
        }
    }

    /// The receiving half of the at-least-once protocol: acks every copy,
    /// discards duplicates by sequence number, parks out-of-order arrivals,
    /// and applies publications exactly once in sequence order.
    fn receive_publication(&mut self, msg: PublishMsg, net: &Network) -> Result<()> {
        net.send(&self.name, &self.mdp, Message::PublishAck { seq: msg.seq })?;
        if msg.seq < self.next_pub_seq || self.pub_buffer.contains_key(&msg.seq) {
            return Ok(()); // duplicate (retransmission or injected copy)
        }
        self.pub_buffer.insert(msg.seq, msg);
        while let Some(next) = self.pub_buffer.remove(&self.next_pub_seq) {
            self.next_pub_seq += 1;
            if self.dead_rules.contains(&next.lmr_rule) {
                continue; // late publication for a retracted rule
            }
            self.apply_publish(next)?;
        }
        Ok(())
    }

    /// Publications parked behind a sequence gap.
    pub fn buffered_publications(&self) -> usize {
        self.pub_buffer.len()
    }

    /// Earliest scheduled control-message retransmission, if any.
    pub fn next_retry_at(&self) -> Option<u64> {
        self.sub_retry
            .values()
            .chain(self.unsub_retry.values())
            .map(|r| r.next_retry_ms)
            .min()
    }

    /// Retransmits every unacked Subscribe/Unsubscribe whose timer is due;
    /// returns whether anything was resent.
    pub fn retransmit_due(&mut self, net: &Network) -> Result<bool> {
        let now = net.now_ms();
        let max = net.config().retry_max_ms;
        let mut resent = false;
        // defensive: a retry entry whose rule vanished can never be acked
        let rules = &self.rules;
        self.sub_retry.retain(|id, _| rules.contains_key(id));
        for (id, retry) in self.sub_retry.iter_mut() {
            if retry.next_retry_ms > now {
                continue;
            }
            let rule = &self.rules[id];
            net.send_retry(
                &self.name,
                &self.mdp,
                Message::Subscribe {
                    lmr_rule: *id,
                    rule_text: rule.text.clone(),
                },
            )?;
            retry.backoff_ms = (retry.backoff_ms * 2).min(max);
            retry.next_retry_ms = now + retry.backoff_ms;
            resent = true;
        }
        for (id, retry) in self.unsub_retry.iter_mut() {
            if retry.next_retry_ms > now {
                continue;
            }
            net.send_retry(
                &self.name,
                &self.mdp,
                Message::Unsubscribe { lmr_rule: *id },
            )?;
            retry.backoff_ms = (retry.backoff_ms * 2).min(max);
            retry.next_retry_ms = now + retry.backoff_ms;
            resent = true;
        }
        Ok(resent)
    }

    /// Applies a publication: inserts matched resources and their closure
    /// companions, replaces updated ones, removes match anchors, and runs
    /// the garbage collector.
    fn apply_publish(&mut self, msg: PublishMsg) -> Result<()> {
        for res in &msg.matched {
            self.upsert_resource(res)?;
            self.tracker.add_match(res.uri().as_str(), msg.lmr_rule);
        }
        for res in &msg.companions {
            self.upsert_resource(res)?;
        }
        for res in &msg.updated {
            self.upsert_resource(res)?;
        }
        for uri in &msg.removed {
            self.tracker.remove_match(uri, msg.lmr_rule);
        }
        self.collect_garbage()?;
        Ok(())
    }

    /// Inserts or replaces a resource in the cache, maintaining the strong
    /// reference counts of its targets.
    fn upsert_resource(&mut self, res: &Resource) -> Result<()> {
        let uri = res.uri().as_str();
        if self.is_cached(uri) {
            self.drop_edges(uri)?;
            BaseStore::remove_resource(&mut self.cache, uri)?;
        }
        BaseStore::insert_resource(&mut self.cache, res, res.uri().document_uri())?;
        for (prop, target) in res.references() {
            if self.schema.ref_kind(res.class(), prop) == Some(RefKind::Strong) {
                self.tracker.add_edge(target.as_str());
            }
        }
        Ok(())
    }

    /// Removes the strong-reference counts contributed by a cached resource.
    fn drop_edges(&mut self, uri: &str) -> Result<()> {
        let Some(class) = BaseStore::resource_class(&self.cache, uri)? else {
            return Ok(());
        };
        for (prop, value) in BaseStore::statements_of(&self.cache, uri)? {
            if self.schema.ref_kind(&class, &prop) == Some(RefKind::Strong) {
                self.tracker.remove_edge(&value);
            }
        }
        Ok(())
    }

    /// The reference-counting garbage collector (paper §2.4): removes cached
    /// resources that match no rule, are not strongly referenced, and are
    /// not local — cascading, since removing a resource drops its outgoing
    /// references.
    pub fn collect_garbage(&mut self) -> Result<usize> {
        let mut collected = 0;
        loop {
            let garbage: Vec<String> = self
                .cached_uris()
                .into_iter()
                .filter(|u| !self.tracker.is_anchored(u))
                .collect();
            if garbage.is_empty() {
                return Ok(collected);
            }
            for uri in garbage {
                self.drop_edges(&uri)?;
                BaseStore::remove_resource(&mut self.cache, &uri)?;
                self.tracker.forget(&uri);
                collected += 1;
            }
        }
    }

    /// Test/diagnostic access to the tracker.
    pub fn tracker(&self) -> &RefTracker {
        &self.tracker
    }

    /// Rebuilds the reference tracker from the cache contents, the schema,
    /// the local-document registry, and explicit match anchors (state
    /// import): strong counts are derivable, matches are not.
    pub(crate) fn rebuild_tracker(&mut self, matches: &[(String, u64)]) -> Result<()> {
        self.tracker = RefTracker::new();
        for uri in self.cached_uris() {
            let Some(class) = BaseStore::resource_class(&self.cache, &uri)? else {
                continue;
            };
            for (prop, value) in BaseStore::statements_of(&self.cache, &uri)? {
                if self.schema.ref_kind(&class, &prop) == Some(RefKind::Strong) {
                    self.tracker.add_edge(&value);
                }
            }
        }
        for doc in self.local_docs.values() {
            for res in doc.resources() {
                self.tracker.mark_local(res.uri().as_str());
            }
        }
        for (uri, rule) in matches {
            self.tracker.add_match(uri, *rule);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::NetConfig;
    use mdv_rdf::{Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn provider(i: usize, host: &str, memory: i64) -> (Resource, Resource) {
        let uri = format!("doc{i}.rdf");
        (
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal(host))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new(&uri, "info")),
                ),
            Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                .with("memory", Term::literal(memory.to_string()))
                .with("cpu", Term::literal("600")),
        )
    }

    fn lmr() -> Lmr {
        Lmr::new("lmr1", "mdp1", schema())
    }

    fn publish(lmr_rule: u64, matched: Vec<Resource>, companions: Vec<Resource>) -> PublishMsg {
        PublishMsg {
            lmr_rule,
            matched,
            companions,
            ..PublishMsg::default()
        }
    }

    #[test]
    fn publish_fills_cache_and_anchors() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.org", 92);
        l.apply_publish(publish(0, vec![host], vec![info])).unwrap();
        assert!(l.is_cached("doc1.rdf#host"));
        assert!(
            l.is_cached("doc1.rdf#info"),
            "companion cached via strong ref"
        );
        assert_eq!(l.tracker().matching_rules("doc1.rdf#host"), vec![0]);
        assert_eq!(l.tracker().strong_count("doc1.rdf#info"), 1);
    }

    #[test]
    fn removal_collects_companions() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.org", 92);
        l.apply_publish(publish(0, vec![host], vec![info])).unwrap();
        // the rule no longer matches host: both host and its companion go
        let msg = PublishMsg {
            lmr_rule: 0,
            removed: vec!["doc1.rdf#host".into()],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        assert!(!l.is_cached("doc1.rdf#host"));
        assert!(!l.is_cached("doc1.rdf#info"), "garbage-collected companion");
    }

    #[test]
    fn resource_matched_by_two_rules_survives_one_removal() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.org", 92);
        l.apply_publish(publish(0, vec![host.clone()], vec![info.clone()]))
            .unwrap();
        l.apply_publish(publish(1, vec![host], vec![info])).unwrap();
        let msg = PublishMsg {
            lmr_rule: 0,
            removed: vec!["doc1.rdf#host".into()],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        assert!(l.is_cached("doc1.rdf#host"), "still matched by rule 1");
        let msg = PublishMsg {
            lmr_rule: 1,
            removed: vec!["doc1.rdf#host".into()],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        assert!(!l.is_cached("doc1.rdf#host"));
    }

    #[test]
    fn shared_companion_survives_one_referrer() {
        let mut l = lmr();
        // two providers share one ServerInformation
        let info = Resource::new(UriRef::new("s.rdf", "i"), "ServerInformation")
            .with("memory", Term::literal("92"))
            .with("cpu", Term::literal("600"));
        let mk_host = |i: usize| {
            Resource::new(UriRef::new(&format!("doc{i}.rdf"), "host"), "CycleProvider")
                .with("serverHost", Term::literal("a.org"))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new("s.rdf", "i")),
                )
        };
        l.apply_publish(publish(0, vec![mk_host(1), mk_host(2)], vec![info]))
            .unwrap();
        assert_eq!(l.tracker().strong_count("s.rdf#i"), 2);
        let msg = PublishMsg {
            lmr_rule: 0,
            removed: vec!["doc1.rdf#host".into()],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        assert!(l.is_cached("s.rdf#i"), "still referenced by doc2's host");
        let msg = PublishMsg {
            lmr_rule: 0,
            removed: vec!["doc2.rdf#host".into()],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        assert!(!l.is_cached("s.rdf#i"));
    }

    #[test]
    fn update_replaces_content_and_edges() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.org", 92);
        l.apply_publish(publish(0, vec![host], vec![info])).unwrap();
        // host's update drops the reference to info
        let new_host = Resource::new(UriRef::new("doc1.rdf", "host"), "CycleProvider")
            .with("serverHost", Term::literal("b.org"));
        let msg = PublishMsg {
            lmr_rule: 0,
            updated: vec![new_host],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        let cached = l.cached_resource("doc1.rdf#host").unwrap().unwrap();
        assert_eq!(cached.property("serverHost").unwrap().lexical(), "b.org");
        assert!(
            !l.is_cached("doc1.rdf#info"),
            "orphaned companion collected"
        );
    }

    #[test]
    fn local_metadata_is_never_collected_and_queryable() {
        let mut l = lmr();
        let doc = Document::new("local.rdf").with_resource(
            Resource::new(UriRef::new("local.rdf", "s"), "ServerInformation")
                .with("memory", Term::literal("512"))
                .with("cpu", Term::literal("1000")),
        );
        l.register_local_metadata(&doc).unwrap();
        assert_eq!(l.collect_garbage().unwrap(), 0);
        assert!(l.is_cached("local.rdf#s"));
        let hits = l
            .query("search ServerInformation s register s where s.memory > 100")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].uri().as_str(), "local.rdf#s");
        // duplicate registration rejected
        assert!(l.register_local_metadata(&doc).is_err());
    }

    #[test]
    fn query_sees_cached_and_local_metadata_only() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.uni-passau.de", 92);
        l.apply_publish(publish(0, vec![host], vec![info])).unwrap();
        let hits = l
            .query(
                "search CycleProvider c register c \
                 where c.serverHost contains 'uni-passau.de' \
                 and c.serverInformation.memory > 64",
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].uri().as_str(), "doc1.rdf#host");
        // nothing else is visible
        assert!(l
            .query("search CycleProvider c register c where c.serverHost contains 'nothere'")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sql_query_path_agrees_with_direct_path() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.uni-passau.de", 92);
        let (host2, info2) = provider(2, "b.org", 128);
        l.apply_publish(publish(0, vec![host, host2], vec![info, info2]))
            .unwrap();
        for q in [
            "search CycleProvider c register c",
            "search CycleProvider c register c where c.serverHost contains 'uni-passau.de'",
            "search CycleProvider c register c where c.serverInformation.memory > 100",
            "search ServerInformation s register s where s.cpu = 600",
        ] {
            let direct = l.query(q).unwrap();
            let via_sql = l.query_sql(q).unwrap();
            assert_eq!(direct, via_sql, "divergence for: {q}");
        }
    }

    #[test]
    fn subscribe_unsubscribe_lifecycle() {
        let net = Network::new(NetConfig::default());
        let _rx = net.register("mdp1").unwrap();
        let mut l = lmr();
        let id = l
            .subscribe("search CycleProvider c register c", &net)
            .unwrap();
        assert_eq!(l.rule(id).unwrap().status, RuleStatus::Pending);
        l.handle(
            Envelope {
                from: "mdp1".into(),
                to: "lmr1".into(),
                message: Message::SubscribeAck {
                    lmr_rule: id,
                    error: None,
                },
                deliver_at_ms: 0,
            },
            &net,
        )
        .unwrap();
        assert_eq!(l.rule(id).unwrap().status, RuleStatus::Active);
        l.unsubscribe(id, &net).unwrap();
        assert!(l.rule(id).is_none());
        assert!(l.unsubscribe(id, &net).is_err());
    }
}
