//! Local Metadata Repositories (paper §2.2): the mid-tier caches that do the
//! actual metadata query processing.
//!
//! An LMR caches global metadata matching its subscription rules, applies
//! publications from its MDP to keep the cache consistent, stores local
//! metadata that is never forwarded to the backbone, and answers queries
//! from local clients against the cache only.

use std::collections::{BTreeMap, HashMap, HashSet};

use mdv_filter::{query_eval, store::create_base_tables, BaseStore};
use mdv_rdf::{parse_document, write_document, Document, RdfSchema, RefKind, Resource};
use mdv_relstore::{ColumnDef, DataType, Database, StorageEngine};
use mdv_rulelang::{normalize, parse_rule, split_or, typecheck};

use crate::error::{Error, Result};
use crate::gc::RefTracker;
use crate::message::{Message, PublishMsg};
use crate::mirror::{self, i, s};
use crate::transport::{Envelope, Network};

/// Durable mirror tables (created only on mirror-enabled backends, see
/// DESIGN.md §6): the LMR's non-relational state lives next to the cache's
/// base tables, sharing their WAL.
const T_META: &str = "LmrMeta"; // key, val (protocol counters)
const T_RULES: &str = "LmrRules"; // id, status, error, text
const T_LOCAL: &str = "LmrLocalDocs"; // uri, xml
const T_MATCH: &str = "LmrMatches"; // uri, rule (match anchors)
const T_PUBBUF: &str = "LmrPubBuffer"; // seq, wire-form publication
const T_DEAD: &str = "LmrDeadRules"; // rule
const T_HOME: &str = "LmrHome"; // home, backup, awaiting (failover state)

/// Lifecycle of a subscription rule at the LMR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleStatus {
    /// Sent to the MDP, no ack yet.
    Pending,
    /// Accepted by the MDP; publications flow.
    Active,
    /// Rejected by the MDP (error message attached).
    Failed(String),
}

/// A subscription rule registered by this LMR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmrRule {
    pub text: String,
    pub status: RuleStatus,
}

/// Retry state of an unacked control message (Subscribe/Unsubscribe/
/// FailoverHello).
#[derive(Debug, Clone)]
struct Retry {
    /// Logical time of the next retransmission.
    next_retry_ms: u64,
    /// Current backoff interval (doubles per retry up to the config cap).
    backoff_ms: u64,
    /// Retransmissions performed so far; reaching the configured
    /// `failover_attempts` budget counts as detected silence of the home
    /// MDP (DESIGN.md §7).
    attempts: u32,
    /// `Some(last_seq)`: retransmit as a failover Resubscribe carrying this
    /// catch-up key instead of a plain Subscribe.
    resubscribe: Option<u64>,
}

impl Retry {
    fn new(net: &Network) -> Self {
        let backoff = net.config().retry_initial_ms;
        Retry {
            next_retry_ms: net.now_ms() + backoff,
            backoff_ms: backoff,
            attempts: 0,
            resubscribe: None,
        }
    }

    fn resubscribe(net: &Network, last_seq: u64) -> Self {
        Retry {
            resubscribe: Some(last_seq),
            ..Retry::new(net)
        }
    }
}

/// A Local Metadata Repository, generic over its cache's storage backend
/// (in-memory [`Database`] by default; a durable WAL+snapshot engine via
/// [`Lmr::with_storage`]).
#[derive(Debug)]
pub struct Lmr<S: StorageEngine = Database> {
    name: String,
    /// The MDP this LMR is subscribed to (its current home; may change on
    /// failover).
    mdp: String,
    /// Backup MDP to fail over to when the home goes silent.
    backup: Option<String>,
    /// Failover in progress: the FailoverHello is out, the dedup floor is
    /// not yet synced with the new home, so publications are discarded.
    awaiting_welcome: bool,
    /// Retry state of the unacked FailoverHello.
    hello_retry: Option<Retry>,
    schema: RdfSchema,
    pub(crate) cache: S,
    /// Mirror node state into the `Lmr*` tables (durable backends only).
    mirror: bool,
    pub(crate) tracker: RefTracker,
    pub(crate) rules: BTreeMap<u64, LmrRule>,
    pub(crate) next_rule: u64,
    pub(crate) local_docs: HashMap<String, Document>,
    /// Next publication sequence number expected from the MDP.
    pub(crate) next_pub_seq: u64,
    /// Publications received out of order, parked until the gap closes.
    pub_buffer: BTreeMap<u64, PublishMsg>,
    /// Rules retracted locally: late/duplicated publications for them are
    /// acked and discarded instead of resurrecting cache entries.
    dead_rules: HashSet<u64>,
    /// Subscribe messages awaiting their SubscribeAck, keyed by rule id.
    sub_retry: BTreeMap<u64, Retry>,
    /// Unsubscribe messages awaiting their UnsubscribeAck, keyed by rule id.
    unsub_retry: BTreeMap<u64, Retry>,
    /// Placement mode (DESIGN.md §11): publications legitimately arrive
    /// from every shard primary, not only the home MDP, each on its own
    /// per-sender sequence stream.
    placement: bool,
    /// Next publication sequence expected per non-home sender (placement
    /// mode only). Out-of-order alt-stream arrivals are *not* buffered:
    /// they are dropped unacked, and the sender's in-order outbox
    /// retransmission redelivers them once the gap closes.
    alt_next_seq: BTreeMap<String, u64>,
}

impl Lmr {
    pub fn new(name: &str, mdp: &str, schema: RdfSchema) -> Self {
        let mut cache = Database::new();
        // infallible: a brand-new in-memory database (no I/O) can only
        // refuse a duplicate table, and there are none yet
        create_base_tables(&mut cache).expect("fresh database accepts base tables");
        Self::from_store(name, mdp, schema, cache, false)
    }
}

impl<S: StorageEngine> Lmr<S> {
    /// Builds an LMR whose cache runs on an explicit storage backend and
    /// mirrors node state into the `Lmr*` tables of the same database — on
    /// a durable backend the whole node becomes crash-recoverable
    /// (DESIGN.md §6).
    pub fn with_storage(name: &str, mdp: &str, schema: RdfSchema, mut store: S) -> Result<Self> {
        store.begin();
        create_base_tables(&mut store).map_err(crate::error::Error::from)?;
        Self::create_mirror_tables(&mut store)?;
        mirror::insert(&mut store, T_META, vec![s("next_rule"), i(0)])?;
        mirror::insert(&mut store, T_META, vec![s("next_pub_seq"), i(0)])?;
        mirror::insert(&mut store, T_HOME, vec![s(mdp), s(""), i(0)])?;
        store.commit().map_err(mirror::store_err)?;
        Ok(Self::from_store(name, mdp, schema, store, true))
    }

    /// Reopens an LMR over a crash-recovered durable store: the cache
    /// tables are already in place (snapshot + WAL replay), node state is
    /// rebuilt from the `Lmr*` mirrors, and the engine keeps appending to
    /// the same log. Retry timers are transient; the caller re-arms the
    /// in-flight control messages via [`Lmr::rearm_after_recovery`].
    pub fn reopen(name: &str, mdp: &str, schema: RdfSchema, store: S) -> Result<Self> {
        let corrupt = |table: &str| Error::Topology(format!("corrupt mirror row in {table}"));
        let mut lmr = Self::from_store(name, mdp, schema, store, true);
        let db = lmr.cache.database();
        if db.table(T_META).is_err() {
            return Err(Error::Topology(format!(
                "'{}' is not a durable LMR store (no {T_META} table)",
                lmr.name
            )));
        }
        let mut rules = BTreeMap::new();
        let mut next_rule = 0;
        let mut next_pub_seq = 0;
        let mut placement = false;
        let mut alt_next_seq = BTreeMap::new();
        for row in mirror::rows_sorted(db, T_META) {
            let (Some(key), Some(val)) = (row[0].as_str(), row[1].as_int()) else {
                return Err(corrupt(T_META));
            };
            match key {
                "next_rule" => next_rule = val as u64,
                "next_pub_seq" => next_pub_seq = val as u64,
                "placement" => placement = val != 0,
                other => match other.strip_prefix("alt:") {
                    Some(sender) => {
                        alt_next_seq.insert(sender.to_owned(), val as u64);
                    }
                    None => {
                        return Err(Error::Topology(format!(
                            "unknown {T_META} counter '{other}'"
                        )))
                    }
                },
            }
        }
        for row in mirror::rows_sorted(db, T_RULES) {
            let (Some(id), Some(status), Some(error), Some(text)) = (
                row[0].as_int(),
                row[1].as_str(),
                row[2].as_str(),
                row[3].as_str(),
            ) else {
                return Err(corrupt(T_RULES));
            };
            let status = match status {
                "pending" => RuleStatus::Pending,
                "active" => RuleStatus::Active,
                "failed" => RuleStatus::Failed(error.to_owned()),
                _ => return Err(corrupt(T_RULES)),
            };
            rules.insert(
                id as u64,
                LmrRule {
                    text: text.to_owned(),
                    status,
                },
            );
        }
        let mut local_docs = HashMap::new();
        for row in mirror::rows_sorted(db, T_LOCAL) {
            let (Some(uri), Some(xml)) = (row[0].as_str(), row[1].as_str()) else {
                return Err(corrupt(T_LOCAL));
            };
            let doc = parse_document(uri, xml).map_err(mdv_filter::Error::from)?;
            local_docs.insert(uri.to_owned(), doc);
        }
        let mut pub_buffer = BTreeMap::new();
        for row in mirror::rows_sorted(db, T_PUBBUF) {
            let Some(wire) = row[1].as_str() else {
                return Err(corrupt(T_PUBBUF));
            };
            let msg = PublishMsg::from_wire(wire)
                .map_err(|e| Error::Topology(format!("corrupt buffered publication: {e}")))?;
            pub_buffer.insert(msg.seq, msg);
        }
        let mut dead_rules = HashSet::new();
        for row in mirror::rows_sorted(db, T_DEAD) {
            let Some(rule) = row[0].as_int() else {
                return Err(corrupt(T_DEAD));
            };
            dead_rules.insert(rule as u64);
        }
        let mut matches = Vec::new();
        for row in mirror::rows_sorted(db, T_MATCH) {
            let (Some(uri), Some(rule)) = (row[0].as_str(), row[1].as_int()) else {
                return Err(corrupt(T_MATCH));
            };
            matches.push((uri.to_owned(), rule as u64));
        }
        // The mirrored failover state wins over the caller-supplied home:
        // after a crash mid-failover the LMR must come back attached to the
        // MDP it last pointed at. Stores from before the table existed fall
        // back to the argument.
        let mut home = None;
        let mut backup = None;
        let mut awaiting = false;
        for row in mirror::rows_sorted(db, T_HOME) {
            let (Some(h), Some(b), Some(a)) = (row[0].as_str(), row[1].as_str(), row[2].as_int())
            else {
                return Err(corrupt(T_HOME));
            };
            home = Some(h.to_owned());
            backup = (!b.is_empty()).then(|| b.to_owned());
            awaiting = a != 0;
        }
        lmr.mdp = home.unwrap_or_else(|| mdp.to_owned());
        lmr.backup = backup;
        lmr.awaiting_welcome = awaiting;
        lmr.rules = rules;
        lmr.next_rule = next_rule;
        lmr.next_pub_seq = next_pub_seq;
        lmr.local_docs = local_docs;
        lmr.pub_buffer = pub_buffer;
        lmr.dead_rules = dead_rules;
        lmr.placement = placement;
        lmr.alt_next_seq = alt_next_seq;
        lmr.rebuild_tracker(&matches)?;
        Ok(lmr)
    }

    fn create_mirror_tables(store: &mut S) -> Result<()> {
        mirror::create_table(
            store,
            T_META,
            vec![
                ColumnDef::new("key", DataType::Str),
                ColumnDef::new("val", DataType::Int),
            ],
        )?;
        mirror::create_table(
            store,
            T_RULES,
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("status", DataType::Str),
                ColumnDef::new("error", DataType::Str),
                ColumnDef::new("text", DataType::Str),
            ],
        )?;
        mirror::create_table(
            store,
            T_LOCAL,
            vec![
                ColumnDef::new("uri", DataType::Str),
                ColumnDef::new("xml", DataType::Str),
            ],
        )?;
        mirror::create_table(
            store,
            T_MATCH,
            vec![
                ColumnDef::new("uri", DataType::Str),
                ColumnDef::new("rule", DataType::Int),
            ],
        )?;
        mirror::create_table(
            store,
            T_PUBBUF,
            vec![
                ColumnDef::new("seq", DataType::Int),
                ColumnDef::new("publication", DataType::Str),
            ],
        )?;
        mirror::create_table(store, T_DEAD, vec![ColumnDef::new("rule", DataType::Int)])?;
        mirror::create_table(
            store,
            T_HOME,
            vec![
                ColumnDef::new("home", DataType::Str),
                ColumnDef::new("backup", DataType::Str),
                ColumnDef::new("awaiting", DataType::Int),
            ],
        )
    }

    fn from_store(name: &str, mdp: &str, schema: RdfSchema, cache: S, mirror: bool) -> Self {
        Lmr {
            name: name.to_owned(),
            mdp: mdp.to_owned(),
            backup: None,
            awaiting_welcome: false,
            hello_retry: None,
            schema,
            cache,
            mirror,
            tracker: RefTracker::new(),
            rules: BTreeMap::new(),
            next_rule: 0,
            local_docs: HashMap::new(),
            next_pub_seq: 0,
            pub_buffer: BTreeMap::new(),
            dead_rules: HashSet::new(),
            sub_retry: BTreeMap::new(),
            unsub_retry: BTreeMap::new(),
            placement: false,
            alt_next_seq: BTreeMap::new(),
        }
    }

    /// Read access to the storage backend (e.g. the WAL directory or byte
    /// counters of a durable cache).
    pub fn storage(&self) -> &S {
        &self.cache
    }

    /// Mutable access to the cache store, for storage-level tuning (e.g.
    /// checkpoint thresholds) on a live node.
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.cache
    }

    /// Snapshot-as-compaction: checkpoints the cache store — writes a fresh
    /// snapshot reflecting every GC deletion and truncates the WAL.
    pub fn compact(&mut self) -> Result<()> {
        self.cache.checkpoint().map_err(mirror::store_err)
    }

    /// Runs `body` inside one storage commit group, so the cache mutations
    /// and mirror writes of a whole node operation become durable
    /// atomically.
    fn with_group<T>(&mut self, body: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        self.cache.begin();
        let out = body(self);
        self.cache.commit().map_err(mirror::store_err)?;
        out
    }

    /// Re-sends the control messages that were in flight when the node
    /// crashed: Resubscribe for every still-pending rule, Unsubscribe for
    /// every retracted rule, FailoverHello if a failover handshake was open
    /// (the MDP re-acks duplicates, so over-sending is harmless). Pending
    /// rules are re-sent as Resubscribe rather than Subscribe because a
    /// crash mid-failover can leave a pending rule whose cache still holds
    /// anchors from the previous home — only the Resubscribe snapshot
    /// clears those.
    pub fn rearm_after_recovery(&mut self, net: &Network) -> Result<()> {
        if self.awaiting_welcome {
            net.send(
                &self.name,
                &self.mdp,
                Message::FailoverHello {
                    last_seq: self.next_pub_seq,
                },
            )?;
            self.hello_retry = Some(Retry::new(net));
            // resubscribes follow once the welcome syncs the floor
            return self.rearm_dead_rules(net);
        }
        let pending: Vec<(u64, String)> = self
            .rules
            .iter()
            .filter(|(_, r)| r.status == RuleStatus::Pending)
            .map(|(id, r)| (*id, r.text.clone()))
            .collect();
        for (id, text) in pending {
            net.send(
                &self.name,
                &self.mdp,
                Message::Resubscribe {
                    lmr_rule: id,
                    rule_text: text,
                    last_seq: self.next_pub_seq,
                },
            )?;
            self.sub_retry
                .insert(id, Retry::resubscribe(net, self.next_pub_seq));
        }
        self.rearm_dead_rules(net)
    }

    fn rearm_dead_rules(&mut self, net: &Network) -> Result<()> {
        let mut dead: Vec<u64> = self.dead_rules.iter().copied().collect();
        dead.sort_unstable();
        for rule in dead {
            net.send(
                &self.name,
                &self.mdp,
                Message::Unsubscribe { lmr_rule: rule },
            )?;
            self.unsub_retry.insert(rule, Retry::new(net));
        }
        Ok(())
    }

    // ---- mirror writes (no-ops on memory-backed nodes) -------------------

    fn mirror_meta(&mut self, key: &str, val: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::upsert_where(
            &mut self.cache,
            T_META,
            |r| r[0].as_str() == Some(key),
            vec![s(key), i(val)],
        )
    }

    fn mirror_home(&mut self) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        let backup = self.backup.clone().unwrap_or_default();
        let row = vec![
            s(&self.mdp),
            s(&backup),
            i(u64::from(self.awaiting_welcome)),
        ];
        mirror::upsert_where(&mut self.cache, T_HOME, |_| true, row)
    }

    fn mirror_rule_upsert(&mut self, id: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        let Some(rule) = self.rules.get(&id) else {
            return Ok(());
        };
        let (status, error) = match &rule.status {
            RuleStatus::Pending => ("pending", String::new()),
            RuleStatus::Active => ("active", String::new()),
            RuleStatus::Failed(e) => ("failed", e.clone()),
        };
        let row = vec![i(id), s(status), s(&error), s(&rule.text)];
        mirror::upsert_where(
            &mut self.cache,
            T_RULES,
            |r| r[0].as_int() == Some(id as i64),
            row,
        )
    }

    fn mirror_rule_delete(&mut self, id: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::delete_where(&mut self.cache, T_RULES, |r| {
            r[0].as_int() == Some(id as i64)
        })?;
        mirror::delete_where(&mut self.cache, T_MATCH, |r| {
            r[1].as_int() == Some(id as i64)
        })?;
        mirror::insert_unique(
            &mut self.cache,
            T_DEAD,
            |r| r[0].as_int() == Some(id as i64),
            vec![i(id)],
        )
    }

    fn mirror_match_add(&mut self, uri: &str, rule: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::insert_unique(
            &mut self.cache,
            T_MATCH,
            |r| r[0].as_str() == Some(uri) && r[1].as_int() == Some(rule as i64),
            vec![s(uri), i(rule)],
        )
    }

    fn mirror_match_remove(&mut self, uri: &str, rule: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::delete_where(&mut self.cache, T_MATCH, |r| {
            r[0].as_str() == Some(uri) && r[1].as_int() == Some(rule as i64)
        })?;
        Ok(())
    }

    fn mirror_match_forget(&mut self, uri: &str) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::delete_where(&mut self.cache, T_MATCH, |r| r[0].as_str() == Some(uri))?;
        Ok(())
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn mdp(&self) -> &str {
        &self.mdp
    }

    /// The configured backup MDP, if any.
    pub fn backup(&self) -> Option<&str> {
        self.backup.as_deref()
    }

    /// Configures (or clears) the backup MDP this LMR fails over to when
    /// its home goes silent.
    pub fn set_backup(&mut self, backup: Option<&str>) -> Result<()> {
        self.with_group(|this| {
            this.backup = backup.map(str::to_owned);
            this.mirror_home()
        })
    }

    /// True while a failover handshake is in flight (hello sent, welcome
    /// not yet received).
    pub fn failing_over(&self) -> bool {
        self.awaiting_welcome
    }

    /// Switches this LMR into placement mode (DESIGN.md §11): publications
    /// from MDPs other than the home are accepted on per-sender sequence
    /// streams instead of triggering cleanup unsubscribes. Durable, so a
    /// crash-recovered LMR keeps accepting its alt streams.
    pub(crate) fn set_placement(&mut self, on: bool) -> Result<()> {
        self.with_group(|this| {
            this.placement = on;
            this.mirror_meta("placement", u64::from(on))
        })
    }

    pub fn rule(&self, id: u64) -> Option<&LmrRule> {
        self.rules.get(&id)
    }

    pub fn rules(&self) -> impl Iterator<Item = (u64, &LmrRule)> {
        self.rules.iter().map(|(id, r)| (*id, r))
    }

    /// URIs currently cached (global and local).
    pub fn cached_uris(&self) -> Vec<String> {
        // a cache recovered from a very early crash image may predate the
        // base tables' commit group: treat that as an empty cache rather
        // than panicking (the torture harness exercises this)
        let mut out: Vec<String> = self
            .cache
            .database()
            .table("Resources")
            .map(|t| t.iter().map(|(_, row)| row[0].to_string()).collect())
            .unwrap_or_default();
        out.sort();
        out
    }

    pub fn is_cached(&self, uri: &str) -> bool {
        BaseStore::resource_exists(self.cache.database(), uri).unwrap_or(false)
    }

    /// The cached copy of a resource.
    pub fn cached_resource(&self, uri: &str) -> Result<Option<Resource>> {
        Ok(BaseStore::resource(self.cache.database(), uri)?)
    }

    /// Registers a subscription rule: records it as pending and sends it to
    /// the MDP. Returns the LMR-local rule id.
    pub fn subscribe(&mut self, rule_text: &str, net: &Network) -> Result<u64> {
        self.with_group(|this| {
            let id = this.next_rule;
            this.next_rule += 1;
            this.rules.insert(
                id,
                LmrRule {
                    text: rule_text.to_owned(),
                    status: RuleStatus::Pending,
                },
            );
            this.mirror_meta("next_rule", this.next_rule)?;
            this.mirror_rule_upsert(id)?;
            net.send(
                &this.name,
                &this.mdp,
                Message::Subscribe {
                    lmr_rule: id,
                    rule_text: rule_text.to_owned(),
                },
            )?;
            this.sub_retry.insert(id, Retry::new(net));
            Ok(id)
        })
    }

    /// Retracts a subscription rule and garbage-collects resources that were
    /// cached only because of it.
    pub fn unsubscribe(&mut self, rule: u64, net: &Network) -> Result<()> {
        if self.rules.remove(&rule).is_none() {
            return Err(Error::Subscription(format!(
                "LMR '{}' has no rule {rule}",
                self.name
            )));
        }
        self.with_group(|this| {
            this.tracker.remove_rule(rule);
            this.mirror_rule_delete(rule)?;
            this.collect_garbage()?;
            this.sub_retry.remove(&rule);
            this.dead_rules.insert(rule);
            net.send(
                &this.name,
                &this.mdp,
                Message::Unsubscribe { lmr_rule: rule },
            )?;
            this.unsub_retry.insert(rule, Retry::new(net));
            Ok(())
        })
    }

    /// Registers metadata that must stay local (paper §2.2: "local metadata
    /// must be explicitly marked as such at registration time" and is not
    /// forwarded to the backbone).
    pub fn register_local_metadata(&mut self, doc: &Document) -> Result<()> {
        doc.check_internal_references()?;
        self.schema.validate(doc)?;
        if self.local_docs.contains_key(doc.uri()) {
            return Err(Error::Local(format!(
                "local document '{}' already registered",
                doc.uri()
            )));
        }
        for res in doc.resources() {
            if self.is_cached(res.uri().as_str()) {
                return Err(Error::Local(format!(
                    "resource '{}' already exists in the cache",
                    res.uri()
                )));
            }
        }
        self.with_group(|this| {
            for res in doc.resources() {
                this.upsert_resource(res)?;
                this.tracker.mark_local(res.uri().as_str());
            }
            if this.mirror {
                mirror::insert(
                    &mut this.cache,
                    T_LOCAL,
                    vec![s(doc.uri()), s(&write_document(doc))],
                )?;
            }
            this.local_docs.insert(doc.uri().to_owned(), doc.clone());
            Ok(())
        })
    }

    /// Evaluates a declarative query against the local cache only
    /// (paper §2.2: "LMRs use only locally available metadata for query
    /// processing"). Returns full resources.
    pub fn query(&self, query_text: &str) -> Result<Vec<Resource>> {
        let query = parse_rule(query_text)?;
        let mut uris = Vec::new();
        for conj in split_or(&query) {
            let normalized = match normalize(&conj, &self.schema) {
                Ok(n) => n,
                Err(mdv_rulelang::Error::Unsatisfiable) => continue,
                Err(e) => return Err(e.into()),
            };
            typecheck(&normalized, &self.schema)?;
            uris.extend(query_eval::evaluate(
                self.cache.database(),
                &self.schema,
                &normalized,
            )?);
        }
        uris.sort();
        uris.dedup();
        uris.into_iter()
            .map(|u| {
                BaseStore::resource(self.cache.database(), &u)?
                    .ok_or_else(|| Error::Local(format!("cache lost resource '{u}'")))
            })
            .collect()
    }

    /// Like [`Lmr::query`], but through the SQL translation path: the query
    /// is translated into a SQL join query over the cache's base tables and
    /// executed by the relational engine (paper §2.2: "search requests are
    /// translated into SQL join queries").
    pub fn query_sql(&self, query_text: &str) -> Result<Vec<Resource>> {
        let query = parse_rule(query_text)?;
        let mut uris = Vec::new();
        for conj in split_or(&query) {
            let normalized = match normalize(&conj, &self.schema) {
                Ok(n) => n,
                Err(mdv_rulelang::Error::Unsatisfiable) => continue,
                Err(e) => return Err(e.into()),
            };
            typecheck(&normalized, &self.schema)?;
            uris.extend(mdv_filter::sql_translate::evaluate_via_sql(
                self.cache.database(),
                &self.schema,
                &normalized,
            )?);
        }
        uris.sort();
        uris.dedup();
        uris.into_iter()
            .map(|u| {
                BaseStore::resource(self.cache.database(), &u)?
                    .ok_or_else(|| Error::Local(format!("cache lost resource '{u}'")))
            })
            .collect()
    }

    /// Processes one incoming message. On a durable backend the whole
    /// handler runs as one WAL commit group.
    pub fn handle(&mut self, env: Envelope, net: &Network) -> Result<()> {
        self.with_group(|this| this.handle_inner(env, net))
    }

    fn handle_inner(&mut self, env: Envelope, net: &Network) -> Result<()> {
        match env.message {
            Message::SubscribeAck { lmr_rule, error } => {
                self.sub_retry.remove(&lmr_rule);
                if let Some(rule) = self.rules.get_mut(&lmr_rule) {
                    rule.status = match error {
                        None => RuleStatus::Active,
                        Some(e) => RuleStatus::Failed(e),
                    };
                    self.mirror_rule_upsert(lmr_rule)?;
                }
                Ok(())
            }
            Message::UnsubscribeAck { lmr_rule } => {
                self.unsub_retry.remove(&lmr_rule);
                Ok(())
            }
            Message::FailoverWelcome { next_seq } => self.receive_welcome(&env.from, next_seq, net),
            Message::Publish(msg) => self.receive_publication(&env.from, msg, net),
            other => Err(Error::Topology(format!(
                "LMR '{}' received unexpected message kind '{}'",
                self.name,
                other.kind()
            ))),
        }
    }

    /// Completes the failover handshake: the new home reports the next
    /// publication sequence it will assign, the LMR adopts it as its dedup
    /// floor, drops parked publications from the old stream, and re-registers
    /// every live rule at the new home as a snapshot-requesting Resubscribe
    /// (DESIGN.md §7). Syncing the floor *before* resubscribing is what lets
    /// the snapshots flow as ordinary in-order sequenced publications.
    fn receive_welcome(&mut self, from: &str, next_seq: u64, net: &Network) -> Result<()> {
        if from != self.mdp || !self.awaiting_welcome {
            return Ok(()); // stale handshake from a previous home
        }
        self.hello_retry = None;
        self.awaiting_welcome = false;
        self.next_pub_seq = next_seq;
        self.mirror_meta("next_pub_seq", next_seq)?;
        self.mirror_home()?;
        self.pub_buffer.clear();
        if self.mirror {
            mirror::delete_where(&mut self.cache, T_PUBBUF, |_| true)?;
        }
        let live: Vec<(u64, String)> = self
            .rules
            .iter()
            .filter(|(_, r)| !matches!(r.status, RuleStatus::Failed(_)))
            .map(|(id, r)| (*id, r.text.clone()))
            .collect();
        for (id, text) in live {
            if let Some(rule) = self.rules.get_mut(&id) {
                rule.status = RuleStatus::Pending;
            }
            self.mirror_rule_upsert(id)?;
            net.send(
                &self.name,
                &self.mdp,
                Message::Resubscribe {
                    lmr_rule: id,
                    rule_text: text,
                    last_seq: next_seq,
                },
            )?;
            self.sub_retry.insert(id, Retry::resubscribe(net, next_seq));
        }
        Ok(())
    }

    /// The receiving half of the at-least-once protocol: acks every copy,
    /// discards duplicates by sequence number, parks out-of-order arrivals,
    /// and applies publications exactly once in sequence order. Publications
    /// from a node other than the current home (a previous home still
    /// retransmitting after a failover) are acked and discarded, and the
    /// sender is told to retire the subscription.
    fn receive_publication(&mut self, from: &str, msg: PublishMsg, net: &Network) -> Result<()> {
        if self.placement && from != self.mdp {
            return self.receive_alt_publication(from, msg, net);
        }
        net.send(&self.name, from, Message::PublishAck { seq: msg.seq })?;
        if from != self.mdp {
            // One-shot cleanup unsubscribe, deliberately not retried:
            // further strays re-trigger it. Suppressed while a failover
            // handshake is open, so a delayed cleanup can never race a
            // fresh resubscription at a new home.
            if !self.awaiting_welcome {
                net.send(
                    &self.name,
                    from,
                    Message::Unsubscribe {
                        lmr_rule: msg.lmr_rule,
                    },
                )?;
            }
            return Ok(());
        }
        if self.awaiting_welcome {
            // Floor not synced with the new home yet; the Resubscribe
            // snapshot that follows the welcome supersedes this.
            return Ok(());
        }
        if msg.seq < self.next_pub_seq || self.pub_buffer.contains_key(&msg.seq) {
            return Ok(()); // duplicate (retransmission or injected copy)
        }
        if self.mirror {
            let row = vec![i(msg.seq), s(&msg.to_wire())];
            mirror::insert(&mut self.cache, T_PUBBUF, row)?;
        }
        self.pub_buffer.insert(msg.seq, msg);
        while let Some(next) = self.pub_buffer.remove(&self.next_pub_seq) {
            self.next_pub_seq += 1;
            let next_seq = self.next_pub_seq;
            self.mirror_meta("next_pub_seq", next_seq)?;
            if self.mirror {
                mirror::delete_where(&mut self.cache, T_PUBBUF, |r| {
                    r[0].as_int() == Some(next.seq as i64)
                })?;
            }
            if self.dead_rules.contains(&next.lmr_rule) {
                continue; // late publication for a retracted rule
            }
            if next.snapshot {
                self.apply_snapshot(next)?;
            } else {
                self.apply_publish(next)?;
            }
        }
        Ok(())
    }

    /// The placement-mode receive path for a publication from a non-home
    /// shard primary. Each sender has its own sequence stream; there is no
    /// reorder buffer — an arrival above the expected sequence is dropped
    /// *without* an ack, and the sender's in-order outbox retransmission
    /// redelivers it after the gap closes. Duplicates below the floor are
    /// acked and discarded like on the home stream.
    fn receive_alt_publication(
        &mut self,
        from: &str,
        msg: PublishMsg,
        net: &Network,
    ) -> Result<()> {
        let expected = self.alt_next_seq.get(from).copied().unwrap_or(0);
        if msg.seq > expected {
            return Ok(()); // gap: withhold the ack, let retransmission reorder
        }
        net.send(&self.name, from, Message::PublishAck { seq: msg.seq })?;
        if msg.seq < expected {
            return Ok(()); // duplicate
        }
        let next = expected + 1;
        self.alt_next_seq.insert(from.to_owned(), next);
        let meta_key = format!("alt:{from}");
        self.mirror_meta(&meta_key, next)?;
        if self.dead_rules.contains(&msg.lmr_rule) {
            return Ok(()); // late publication for a retracted rule
        }
        // alt streams never carry snapshots (resubscription is a failover
        // feature, and placement + backup failover is rejected upstream),
        // so every in-order arrival applies as an incremental publication
        self.apply_publish(msg)
    }

    /// Publications parked behind a sequence gap.
    pub fn buffered_publications(&self) -> usize {
        self.pub_buffer.len()
    }

    /// Earliest scheduled control-message retransmission, if any. Entries
    /// parked against a down home with no failover target are excluded, so
    /// that a stranded LMR does not drive the clock while nothing can make
    /// progress; they resume automatically once the home heals.
    pub fn next_retry_at(&self, net: &Network) -> Option<u64> {
        let budget = net.config().failover_attempts;
        let home_down = net.is_down(&self.mdp);
        let can_fail_over = self
            .backup
            .as_ref()
            .is_some_and(|b| *b != self.mdp && !net.is_down(b));
        self.sub_retry
            .values()
            .chain(self.unsub_retry.values())
            .chain(self.hello_retry.iter())
            .filter(|r| !(home_down && r.attempts >= budget && !can_fail_over))
            .map(|r| r.next_retry_ms)
            .min()
    }

    /// Retransmits every unacked Subscribe/Unsubscribe/FailoverHello whose
    /// timer is due; returns whether anything was resent. Exhausting the
    /// retransmission budget of any entry counts as detected silence of the
    /// home MDP and triggers failover to the configured backup, if one is
    /// reachable (DESIGN.md §7).
    pub fn retransmit_due(&mut self, net: &Network) -> Result<bool> {
        let now = net.now_ms();
        let cfg = net.config();
        let max = cfg.retry_max_ms;
        let budget = cfg.failover_attempts;
        let home_down = net.is_down(&self.mdp);
        let can_fail_over = self
            .backup
            .as_ref()
            .is_some_and(|b| *b != self.mdp && !net.is_down(b));
        // entries to a silent home with no failover target are parked; they
        // resume once the home heals
        let parked = |r: &Retry| home_down && r.attempts >= budget && !can_fail_over;
        let mut resent = false;
        let mut exhausted = false;
        // defensive: a retry entry whose rule vanished can never be acked
        let rules = &self.rules;
        self.sub_retry.retain(|id, _| rules.contains_key(id));
        for (id, retry) in self.sub_retry.iter_mut() {
            if retry.next_retry_ms > now || parked(retry) {
                continue;
            }
            let rule = &self.rules[id];
            let msg = match retry.resubscribe {
                Some(last_seq) => Message::Resubscribe {
                    lmr_rule: *id,
                    rule_text: rule.text.clone(),
                    last_seq,
                },
                None => Message::Subscribe {
                    lmr_rule: *id,
                    rule_text: rule.text.clone(),
                },
            };
            net.send_retry(&self.name, &self.mdp, msg)?;
            retry.attempts += 1;
            retry.backoff_ms = (retry.backoff_ms * 2).min(max);
            retry.next_retry_ms = now + retry.backoff_ms;
            resent = true;
            exhausted |= retry.attempts >= budget;
        }
        for (id, retry) in self.unsub_retry.iter_mut() {
            if retry.next_retry_ms > now || parked(retry) {
                continue;
            }
            net.send_retry(
                &self.name,
                &self.mdp,
                Message::Unsubscribe { lmr_rule: *id },
            )?;
            retry.attempts += 1;
            retry.backoff_ms = (retry.backoff_ms * 2).min(max);
            retry.next_retry_ms = now + retry.backoff_ms;
            resent = true;
            exhausted |= retry.attempts >= budget;
        }
        if let Some(retry) = self.hello_retry.as_mut() {
            if retry.next_retry_ms <= now && !parked(retry) {
                net.send_retry(
                    &self.name,
                    &self.mdp,
                    Message::FailoverHello {
                        last_seq: self.next_pub_seq,
                    },
                )?;
                retry.attempts += 1;
                retry.backoff_ms = (retry.backoff_ms * 2).min(max);
                retry.next_retry_ms = now + retry.backoff_ms;
                resent = true;
            }
        }
        if exhausted && can_fail_over && !self.awaiting_welcome {
            self.start_failover(net)?;
            resent = true;
        }
        Ok(resent)
    }

    /// Switches home to the configured backup and opens the failover
    /// handshake. In-flight retries against the old home are dropped: live
    /// rules are re-registered wholesale once the welcome arrives, and
    /// retracted rules get retired at the old home lazily, by the cleanup
    /// unsubscribes its stray publications trigger after a heal.
    fn start_failover(&mut self, net: &Network) -> Result<()> {
        let Some(backup) = self.backup.clone() else {
            return Ok(());
        };
        if backup == self.mdp {
            return Ok(());
        }
        self.with_group(|this| {
            this.mdp = backup;
            this.awaiting_welcome = true;
            this.mirror_home()?;
            this.sub_retry.clear();
            this.unsub_retry.clear();
            net.send(
                &this.name,
                &this.mdp,
                Message::FailoverHello {
                    last_seq: this.next_pub_seq,
                },
            )?;
            this.hello_retry = Some(Retry::new(net));
            Ok(())
        })
    }

    /// Re-homes this LMR to an explicit target MDP — the automatic-failover
    /// entry point of Raft mode (DESIGN.md §9), where the orchestrator
    /// steers every LMR to the current leader instead of a manually
    /// configured backup. Same handshake as [`Lmr::start_failover`]: the
    /// welcome triggers a wholesale resubscribe of every live rule.
    pub(crate) fn rehome_to(&mut self, target: &str, net: &Network) -> Result<()> {
        if target == self.mdp {
            return Ok(());
        }
        let target = target.to_owned();
        self.with_group(|this| {
            this.mdp = target;
            this.awaiting_welcome = true;
            this.mirror_home()?;
            this.sub_retry.clear();
            this.unsub_retry.clear();
            net.send(
                &this.name,
                &this.mdp,
                Message::FailoverHello {
                    last_seq: this.next_pub_seq,
                },
            )?;
            this.hello_retry = Some(Retry::new(net));
            Ok(())
        })
    }

    /// Applies a snapshot publication (the full current match set of one
    /// rule, sent by a Resubscribe): first drops every anchor of the rule
    /// that the snapshot does not list — stale state inherited from a
    /// previous home — then applies the snapshot like a regular publication,
    /// letting the garbage collector reclaim what lost its last anchor.
    fn apply_snapshot(&mut self, msg: PublishMsg) -> Result<()> {
        let rule = msg.lmr_rule;
        let listed: HashSet<&str> = msg.matched.iter().map(|r| r.uri().as_str()).collect();
        let stale: Vec<String> = self
            .cached_uris()
            .into_iter()
            .filter(|u| {
                self.tracker.matching_rules(u).contains(&rule) && !listed.contains(u.as_str())
            })
            .collect();
        for uri in stale {
            self.tracker.remove_match(&uri, rule);
            self.mirror_match_remove(&uri, rule)?;
        }
        self.apply_publish(msg)
    }

    /// Applies a publication: inserts matched resources and their closure
    /// companions, replaces updated ones, removes match anchors, and runs
    /// the garbage collector.
    fn apply_publish(&mut self, msg: PublishMsg) -> Result<()> {
        for res in &msg.matched {
            self.upsert_resource(res)?;
            self.tracker.add_match(res.uri().as_str(), msg.lmr_rule);
            self.mirror_match_add(res.uri().as_str(), msg.lmr_rule)?;
        }
        for res in &msg.companions {
            self.upsert_resource(res)?;
        }
        for res in &msg.updated {
            self.upsert_resource(res)?;
        }
        for uri in &msg.removed {
            self.tracker.remove_match(uri, msg.lmr_rule);
            self.mirror_match_remove(uri, msg.lmr_rule)?;
        }
        self.collect_garbage()?;
        Ok(())
    }

    /// Inserts or replaces a resource in the cache, maintaining the strong
    /// reference counts of its targets.
    fn upsert_resource(&mut self, res: &Resource) -> Result<()> {
        let uri = res.uri().as_str();
        if self.is_cached(uri) {
            self.drop_edges(uri)?;
            BaseStore::remove_resource(&mut self.cache, uri)?;
        }
        BaseStore::insert_resource(&mut self.cache, res, res.uri().document_uri())?;
        for (prop, target) in res.references() {
            if self.schema.ref_kind(res.class(), prop) == Some(RefKind::Strong) {
                self.tracker.add_edge(target.as_str());
            }
        }
        Ok(())
    }

    /// Removes the strong-reference counts contributed by a cached resource.
    fn drop_edges(&mut self, uri: &str) -> Result<()> {
        let Some(class) = BaseStore::resource_class(self.cache.database(), uri)? else {
            return Ok(());
        };
        for (prop, value) in BaseStore::statements_of(self.cache.database(), uri)? {
            if self.schema.ref_kind(&class, &prop) == Some(RefKind::Strong) {
                self.tracker.remove_edge(&value);
            }
        }
        Ok(())
    }

    /// The reference-counting garbage collector (paper §2.4): removes cached
    /// resources that match no rule, are not strongly referenced, and are
    /// not local — cascading, since removing a resource drops its outgoing
    /// references.
    pub fn collect_garbage(&mut self) -> Result<usize> {
        // Its own commit group, so a GC wave invoked outside a node
        // operation (e.g. by a maintenance sweep) is still one atomic,
        // WAL-logged batch of deletions on a durable backend.
        self.with_group(|this| {
            let mut collected = 0;
            loop {
                let garbage: Vec<String> = this
                    .cached_uris()
                    .into_iter()
                    .filter(|u| !this.tracker.is_anchored(u))
                    .collect();
                if garbage.is_empty() {
                    return Ok(collected);
                }
                for uri in garbage {
                    this.drop_edges(&uri)?;
                    BaseStore::remove_resource(&mut this.cache, &uri)?;
                    this.tracker.forget(&uri);
                    this.mirror_match_forget(&uri)?;
                    collected += 1;
                }
            }
        })
    }

    /// Test/diagnostic access to the tracker.
    pub fn tracker(&self) -> &RefTracker {
        &self.tracker
    }

    /// Rebuilds the reference tracker from the cache contents, the schema,
    /// the local-document registry, and explicit match anchors (state
    /// import): strong counts are derivable, matches are not.
    pub(crate) fn rebuild_tracker(&mut self, matches: &[(String, u64)]) -> Result<()> {
        self.tracker = RefTracker::new();
        for uri in self.cached_uris() {
            let Some(class) = BaseStore::resource_class(self.cache.database(), &uri)? else {
                continue;
            };
            for (prop, value) in BaseStore::statements_of(self.cache.database(), &uri)? {
                if self.schema.ref_kind(&class, &prop) == Some(RefKind::Strong) {
                    self.tracker.add_edge(&value);
                }
            }
        }
        for doc in self.local_docs.values() {
            for res in doc.resources() {
                self.tracker.mark_local(res.uri().as_str());
            }
        }
        for (uri, rule) in matches {
            self.tracker.add_match(uri, *rule);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::NetConfig;
    use mdv_rdf::{Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn provider(i: usize, host: &str, memory: i64) -> (Resource, Resource) {
        let uri = format!("doc{i}.rdf");
        (
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal(host))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new(&uri, "info")),
                ),
            Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                .with("memory", Term::literal(memory.to_string()))
                .with("cpu", Term::literal("600")),
        )
    }

    fn lmr() -> Lmr {
        Lmr::new("lmr1", "mdp1", schema())
    }

    fn publish(lmr_rule: u64, matched: Vec<Resource>, companions: Vec<Resource>) -> PublishMsg {
        PublishMsg {
            lmr_rule,
            matched,
            companions,
            ..PublishMsg::default()
        }
    }

    #[test]
    fn publish_fills_cache_and_anchors() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.org", 92);
        l.apply_publish(publish(0, vec![host], vec![info])).unwrap();
        assert!(l.is_cached("doc1.rdf#host"));
        assert!(
            l.is_cached("doc1.rdf#info"),
            "companion cached via strong ref"
        );
        assert_eq!(l.tracker().matching_rules("doc1.rdf#host"), vec![0]);
        assert_eq!(l.tracker().strong_count("doc1.rdf#info"), 1);
    }

    #[test]
    fn removal_collects_companions() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.org", 92);
        l.apply_publish(publish(0, vec![host], vec![info])).unwrap();
        // the rule no longer matches host: both host and its companion go
        let msg = PublishMsg {
            lmr_rule: 0,
            removed: vec!["doc1.rdf#host".into()],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        assert!(!l.is_cached("doc1.rdf#host"));
        assert!(!l.is_cached("doc1.rdf#info"), "garbage-collected companion");
    }

    #[test]
    fn resource_matched_by_two_rules_survives_one_removal() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.org", 92);
        l.apply_publish(publish(0, vec![host.clone()], vec![info.clone()]))
            .unwrap();
        l.apply_publish(publish(1, vec![host], vec![info])).unwrap();
        let msg = PublishMsg {
            lmr_rule: 0,
            removed: vec!["doc1.rdf#host".into()],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        assert!(l.is_cached("doc1.rdf#host"), "still matched by rule 1");
        let msg = PublishMsg {
            lmr_rule: 1,
            removed: vec!["doc1.rdf#host".into()],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        assert!(!l.is_cached("doc1.rdf#host"));
    }

    #[test]
    fn shared_companion_survives_one_referrer() {
        let mut l = lmr();
        // two providers share one ServerInformation
        let info = Resource::new(UriRef::new("s.rdf", "i"), "ServerInformation")
            .with("memory", Term::literal("92"))
            .with("cpu", Term::literal("600"));
        let mk_host = |i: usize| {
            Resource::new(UriRef::new(&format!("doc{i}.rdf"), "host"), "CycleProvider")
                .with("serverHost", Term::literal("a.org"))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new("s.rdf", "i")),
                )
        };
        l.apply_publish(publish(0, vec![mk_host(1), mk_host(2)], vec![info]))
            .unwrap();
        assert_eq!(l.tracker().strong_count("s.rdf#i"), 2);
        let msg = PublishMsg {
            lmr_rule: 0,
            removed: vec!["doc1.rdf#host".into()],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        assert!(l.is_cached("s.rdf#i"), "still referenced by doc2's host");
        let msg = PublishMsg {
            lmr_rule: 0,
            removed: vec!["doc2.rdf#host".into()],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        assert!(!l.is_cached("s.rdf#i"));
    }

    #[test]
    fn update_replaces_content_and_edges() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.org", 92);
        l.apply_publish(publish(0, vec![host], vec![info])).unwrap();
        // host's update drops the reference to info
        let new_host = Resource::new(UriRef::new("doc1.rdf", "host"), "CycleProvider")
            .with("serverHost", Term::literal("b.org"));
        let msg = PublishMsg {
            lmr_rule: 0,
            updated: vec![new_host],
            ..PublishMsg::default()
        };
        l.apply_publish(msg).unwrap();
        let cached = l.cached_resource("doc1.rdf#host").unwrap().unwrap();
        assert_eq!(cached.property("serverHost").unwrap().lexical(), "b.org");
        assert!(
            !l.is_cached("doc1.rdf#info"),
            "orphaned companion collected"
        );
    }

    #[test]
    fn local_metadata_is_never_collected_and_queryable() {
        let mut l = lmr();
        let doc = Document::new("local.rdf").with_resource(
            Resource::new(UriRef::new("local.rdf", "s"), "ServerInformation")
                .with("memory", Term::literal("512"))
                .with("cpu", Term::literal("1000")),
        );
        l.register_local_metadata(&doc).unwrap();
        assert_eq!(l.collect_garbage().unwrap(), 0);
        assert!(l.is_cached("local.rdf#s"));
        let hits = l
            .query("search ServerInformation s register s where s.memory > 100")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].uri().as_str(), "local.rdf#s");
        // duplicate registration rejected
        assert!(l.register_local_metadata(&doc).is_err());
    }

    #[test]
    fn query_sees_cached_and_local_metadata_only() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.uni-passau.de", 92);
        l.apply_publish(publish(0, vec![host], vec![info])).unwrap();
        let hits = l
            .query(
                "search CycleProvider c register c \
                 where c.serverHost contains 'uni-passau.de' \
                 and c.serverInformation.memory > 64",
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].uri().as_str(), "doc1.rdf#host");
        // nothing else is visible
        assert!(l
            .query("search CycleProvider c register c where c.serverHost contains 'nothere'")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sql_query_path_agrees_with_direct_path() {
        let mut l = lmr();
        let (host, info) = provider(1, "a.uni-passau.de", 92);
        let (host2, info2) = provider(2, "b.org", 128);
        l.apply_publish(publish(0, vec![host, host2], vec![info, info2]))
            .unwrap();
        for q in [
            "search CycleProvider c register c",
            "search CycleProvider c register c where c.serverHost contains 'uni-passau.de'",
            "search CycleProvider c register c where c.serverInformation.memory > 100",
            "search ServerInformation s register s where s.cpu = 600",
        ] {
            let direct = l.query(q).unwrap();
            let via_sql = l.query_sql(q).unwrap();
            assert_eq!(direct, via_sql, "divergence for: {q}");
        }
    }

    #[test]
    fn subscribe_unsubscribe_lifecycle() {
        let net = Network::new(NetConfig::default());
        let _rx = net.register("mdp1").unwrap();
        let mut l = lmr();
        let id = l
            .subscribe("search CycleProvider c register c", &net)
            .unwrap();
        assert_eq!(l.rule(id).unwrap().status, RuleStatus::Pending);
        l.handle(
            Envelope {
                from: "mdp1".into(),
                to: "lmr1".into(),
                message: Message::SubscribeAck {
                    lmr_rule: id,
                    error: None,
                },
                deliver_at_ms: 0,
            },
            &net,
        )
        .unwrap();
        assert_eq!(l.rule(id).unwrap().status, RuleStatus::Active);
        l.unsubscribe(id, &net).unwrap();
        assert!(l.rule(id).is_none());
        assert!(l.unsubscribe(id, &net).is_err());
    }
}
