//! Plumbing for the durable mirror tables (DESIGN.md §6).
//!
//! Nodes constructed on a durable [`StorageEngine`] keep their
//! non-relational state — subscriptions, the document registry, protocol
//! counters, parked publications — mirrored in ordinary tables inside the
//! same database, so every mirror write rides in the same WAL commit group
//! as the engine mutation it accompanies, and crash recovery can rebuild
//! the node from the recovered database alone. Memory-backed nodes never
//! create these tables, which keeps the in-memory path byte-identical to
//! the pre-storage-engine behaviour.

use mdv_relstore::{ColumnDef, Database, RowId, StorageEngine, TableSchema, Value};

use crate::error::Result;

pub(crate) fn store_err(e: mdv_relstore::Error) -> crate::error::Error {
    mdv_filter::Error::from(e).into()
}

pub(crate) fn create_table<S: StorageEngine>(
    store: &mut S,
    name: &str,
    cols: Vec<ColumnDef>,
) -> Result<()> {
    let schema = TableSchema::new(name, cols).map_err(store_err)?;
    store.create_table(schema).map_err(store_err)?;
    Ok(())
}

/// A sort key giving mirror rows a well-defined replay order (`Value` has no
/// `Ord`: floats).
fn value_key(v: &Value) -> (u8, i64, String) {
    match v {
        Value::Null => (0, 0, String::new()),
        Value::Bool(b) => (1, i64::from(*b), String::new()),
        Value::Int(i) => (2, *i, String::new()),
        Value::Float(f) => (3, 0, f.to_string()),
        Value::Str(s) => (4, 0, s.clone()),
    }
}

/// All rows of a mirror table, sorted column-wise (deterministic replay).
/// A missing table reads as empty, so recovery code works uniformly on
/// databases written before a mirror table existed.
pub(crate) fn rows_sorted(db: &Database, table: &str) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = match db.table(table) {
        Ok(t) => t.iter().map(|(_, r)| r.clone()).collect(),
        Err(_) => Vec::new(),
    };
    rows.sort_by_key(|r| r.iter().map(value_key).collect::<Vec<_>>());
    rows
}

/// Ids of the rows satisfying `pred`.
fn find_rows(db: &Database, table: &str, pred: impl Fn(&[Value]) -> bool) -> Vec<RowId> {
    match db.table(table) {
        Ok(t) => t
            .iter()
            .filter(|(_, r)| pred(r))
            .map(|(id, _)| id)
            .collect(),
        Err(_) => Vec::new(),
    }
}

pub(crate) fn insert<S: StorageEngine>(store: &mut S, table: &str, row: Vec<Value>) -> Result<()> {
    store.insert(table, row).map_err(store_err)?;
    Ok(())
}

/// Inserts `row` unless a row matching `pred` already exists (set
/// semantics, e.g. match anchors published twice).
pub(crate) fn insert_unique<S: StorageEngine>(
    store: &mut S,
    table: &str,
    pred: impl Fn(&[Value]) -> bool,
    row: Vec<Value>,
) -> Result<()> {
    if find_rows(store.database(), table, pred).is_empty() {
        insert(store, table, row)?;
    }
    Ok(())
}

/// Replaces the row matching `pred` (inserting when absent).
pub(crate) fn upsert_where<S: StorageEngine>(
    store: &mut S,
    table: &str,
    pred: impl Fn(&[Value]) -> bool,
    row: Vec<Value>,
) -> Result<()> {
    match find_rows(store.database(), table, pred).first() {
        Some(id) => {
            store.update(table, *id, row).map_err(store_err)?;
        }
        None => insert(store, table, row)?,
    }
    Ok(())
}

/// Deletes every row matching `pred`; returns how many went.
pub(crate) fn delete_where<S: StorageEngine>(
    store: &mut S,
    table: &str,
    pred: impl Fn(&[Value]) -> bool,
) -> Result<usize> {
    let ids = find_rows(store.database(), table, pred);
    let n = ids.len();
    for id in ids {
        store.delete(table, id).map_err(store_err)?;
    }
    Ok(n)
}

/// `Value::Str` shorthand.
pub(crate) fn s(v: &str) -> Value {
    Value::Str(v.to_owned())
}

/// `Value::Int` shorthand for the protocol's u64 counters.
pub(crate) fn i(v: u64) -> Value {
    Value::Int(v as i64)
}
