//! # mdv-system
//!
//! MDV's 3-tier distributed architecture (paper §2, Figure 2):
//!
//! * **[`Mdp`]** — Metadata Providers, the replicated backbone. Each owns a
//!   [`mdv_filter::FilterEngine`], accepts metadata administration, and
//!   publishes matching insertions/updates/deletions to subscribed LMRs
//!   together with the strong-reference closure (§2.4).
//! * **[`Lmr`]** — Local Metadata Repositories, mid-tier caches close to
//!   the applications. They register subscription rules, keep their caches
//!   consistent from publications, hold local metadata, run a
//!   reference-counting garbage collector ([`gc::RefTracker`]), and answer
//!   MDV's declarative query language from the cache alone.
//! * **[`MdvSystem`]** — the deployment: nodes plus a deterministic
//!   in-process [`transport::Network`] with configurable per-link latency
//!   and a full traffic log (the documented substitution for an Internet
//!   deployment).
//!
//! ```
//! use mdv_rdf::{parse_document, RdfSchema};
//! use mdv_system::MdvSystem;
//!
//! let schema = RdfSchema::builder()
//!     .class("ServerInformation", |c| c.int("memory").int("cpu"))
//!     .class("CycleProvider", |c| c
//!         .str("serverHost")
//!         .strong_ref("serverInformation", "ServerInformation"))
//!     .build().unwrap();
//!
//! let mut sys = MdvSystem::new(schema);
//! sys.add_mdp("mdp").unwrap();
//! sys.add_lmr("lmr", "mdp").unwrap();
//! sys.subscribe("lmr",
//!     "search CycleProvider c register c \
//!      where c.serverInformation.memory > 64").unwrap();
//!
//! let doc = parse_document("doc.rdf", r##"
//!     <rdf:RDF>
//!       <CycleProvider rdf:ID="host">
//!         <serverHost>pirates.uni-passau.de</serverHost>
//!         <serverInformation rdf:resource="#info"/>
//!       </CycleProvider>
//!       <ServerInformation rdf:ID="info">
//!         <memory>92</memory><cpu>600</cpu>
//!       </ServerInformation>
//!     </rdf:RDF>"##).unwrap();
//! sys.register_document("mdp", &doc).unwrap();
//!
//! // the cache now answers locally, including the strong-ref companion
//! let hits = sys.query("lmr", "search CycleProvider c register c").unwrap();
//! assert_eq!(hits.len(), 1);
//! assert!(sys.lmr("lmr").unwrap().is_cached("doc.rdf#info"));
//! ```
//!
//! `DESIGN.md` §4 holds the workspace-wide module map locating this
//! crate's files.

pub mod client;
pub mod error;
pub mod gc;
pub mod lmr;
pub mod mdp;
pub mod message;
mod mirror;
pub mod placement;
pub mod raft;
pub mod state;
pub mod system;
pub mod transport;

pub use error::{Error, Result};
pub use gc::RefTracker;
pub use lmr::{Lmr, LmrRule, RuleStatus};
pub use mdp::Mdp;
pub use message::{Message, PublishMsg};
pub use placement::{PlacementConfig, PlacementTable, DEFAULT_PLACEMENT_SHARDS};
pub use raft::{RaftProbe, RaftRole, ReplicationMode};
pub use system::MdvSystem;
pub use transport::{
    Envelope, FaultPlan, FaultTag, LinkFaults, LogRecord, NetConfig, NetStats, Network, Partition,
};
