//! Metadata Providers (paper §2.2): the backbone nodes.
//!
//! An MDP owns a [`ShardedFilterEngine`], accepts metadata administration
//! (register / update / delete documents), evaluates subscriptions through
//! the filter, ships publications to subscribed LMRs (with the
//! strong-reference closure of transmitted resources, §2.4), and replicates
//! registrations to its backbone peers.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use mdv_filter::{BaseStore, FilterConfig, Publication, ShardedFilterEngine, SubscriptionId};
use mdv_rdf::{parse_document, write_document, Document, RdfSchema, Resource};
use mdv_relstore::{ColumnDef, DataType, Database, StorageEngine};

use crate::error::{Error, Result};
use crate::message::{DigestEntry, Message, PublishMsg, RepairDoc};
use crate::mirror::{self, i, s};
use crate::placement::PlacementTable;
use crate::transport::{Envelope, Network};

/// Durable mirror tables (created only on mirror-enabled backends, see
/// DESIGN.md §6): the MDP's non-relational state lives in the same database
/// as the filter tables, so it shares the WAL and survives crashes.
pub(crate) const T_SUBS: &str = "SysSubscriptions"; // lmr, rule, text
const T_DOCS: &str = "SysDocuments"; // uri, xml
pub(crate) const T_PUBSEQ: &str = "SysPubSeq"; // lmr, next_seq
const T_OUTBOX: &str = "SysOutbox"; // lmr, seq, wire-form publication
pub(crate) const T_RETIRED: &str = "SysRetired"; // lmr, rule
const T_DOCVER: &str = "SysDocVersions"; // uri, version, deleted
const T_RSEQ: &str = "SysReplSeq"; // peer, next_seq (outgoing)
const T_RFLOOR: &str = "SysReplFloor"; // peer, next_seq (incoming)
const T_ROUT: &str = "SysReplOutbox"; // peer, seq, kind, version, uri, xml
const T_RBUF: &str = "SysReplBuffer"; // peer, seq, kind, version, uri, xml
const T_PLACE: &str = "SysPlacement"; // key, val (installed placement table)

/// An unacked publication awaiting retransmission (at-least-once delivery).
#[derive(Debug, Clone)]
struct Outgoing {
    msg: PublishMsg,
    /// Logical time of the next retransmission.
    next_retry_ms: u64,
    /// Current backoff interval (doubles per retry up to the config cap).
    backoff_ms: u64,
}

/// Per-URI replication metadata: a monotone version plus a tombstone flag.
/// Together with the content hash it forms the total order `(version,
/// deleted, hash)` that makes replicated applies commute (DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DocMeta {
    pub version: u64,
    pub deleted: bool,
}

/// One replicated document operation, as carried by the backbone
/// at-least-once channel and its durable outbox/reorder-buffer mirrors.
#[derive(Debug, Clone, PartialEq)]
enum ReplOp {
    Register {
        uri: String,
        version: u64,
        xml: String,
    },
    Update {
        uri: String,
        version: u64,
        xml: String,
    },
    Delete {
        uri: String,
        version: u64,
    },
}

impl ReplOp {
    fn uri(&self) -> &str {
        match self {
            ReplOp::Register { uri, .. }
            | ReplOp::Update { uri, .. }
            | ReplOp::Delete { uri, .. } => uri,
        }
    }

    fn kind_tag(&self) -> i64 {
        match self {
            ReplOp::Register { .. } => 0,
            ReplOp::Update { .. } => 1,
            ReplOp::Delete { .. } => 2,
        }
    }

    fn fields(&self) -> (u64, &str, &str) {
        match self {
            ReplOp::Register { uri, version, xml } | ReplOp::Update { uri, version, xml } => {
                (*version, uri.as_str(), xml.as_str())
            }
            ReplOp::Delete { uri, version } => (*version, uri.as_str(), ""),
        }
    }

    fn from_parts(kind: i64, version: u64, uri: &str, xml: &str) -> Option<ReplOp> {
        Some(match kind {
            0 => ReplOp::Register {
                uri: uri.to_owned(),
                version,
                xml: xml.to_owned(),
            },
            1 => ReplOp::Update {
                uri: uri.to_owned(),
                version,
                xml: xml.to_owned(),
            },
            2 => ReplOp::Delete {
                uri: uri.to_owned(),
                version,
            },
            _ => return None,
        })
    }

    fn into_message(self, seq: u64) -> Message {
        match self {
            ReplOp::Register { uri, version, xml } => Message::ReplicateRegister {
                seq,
                version,
                document_uri: uri,
                xml,
            },
            ReplOp::Update { uri, version, xml } => Message::ReplicateUpdate {
                seq,
                version,
                document_uri: uri,
                xml,
            },
            ReplOp::Delete { uri, version } => Message::ReplicateDelete {
                seq,
                version,
                document_uri: uri,
            },
        }
    }
}

/// An unacked replicated operation awaiting retransmission.
#[derive(Debug, Clone)]
struct ReplOutgoing {
    op: ReplOp,
    next_retry_ms: u64,
    backoff_ms: u64,
}

/// FNV-1a (64-bit) over a canonical RDF/XML serialization; the content
/// half of the anti-entropy digest entries.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The document URI of a resource URI: resources live at `doc.rdf#frag`,
/// and placement partitions whole documents, never individual resources.
pub(crate) fn doc_uri_of(resource_uri: &str) -> &str {
    resource_uri.split('#').next().unwrap_or(resource_uri)
}

/// A Metadata Provider, generic over the storage backend of its filter
/// engine (in-memory [`Database`] by default; a durable WAL+snapshot
/// engine via [`Mdp::with_storage`]).
#[derive(Debug)]
pub struct Mdp<S: StorageEngine = Database> {
    pub(crate) name: String,
    pub(crate) engine: ShardedFilterEngine<S>,
    /// Mirror node state into the `Sys*` tables. Set only by
    /// [`Mdp::with_storage`]; the memory path never creates the tables, so
    /// its databases stay byte-identical to the pre-storage-engine layout.
    pub(crate) mirror: bool,
    /// subscription → (LMR node, LMR-local rule id).
    pub(crate) subscribers: HashMap<SubscriptionId, (String, u64)>,
    /// Backbone peers receiving replicated registrations.
    pub(crate) peers: Vec<String>,
    /// Periodic-batch mode (paper §4: "decide if the filter should be
    /// started either when a new document is registered or periodically, to
    /// process several documents in one batch"): when set, registrations
    /// queue up and the filter runs once per `batch_size` documents (or on
    /// an explicit [`Mdp::flush`]).
    batch_size: Option<usize>,
    pending: Vec<Document>,
    /// Next publication sequence number per subscriber LMR.
    pub(crate) next_pub_seq: HashMap<String, u64>,
    /// Unacked publications keyed `(lmr, seq)`; BTreeMap so retransmission
    /// order is deterministic.
    outbox: BTreeMap<(String, u64), Outgoing>,
    /// `(lmr, lmr_rule)` pairs whose subscription was retracted: duplicate
    /// Subscribe/Unsubscribe retransmissions for them are re-acked without
    /// touching the filter engine.
    pub(crate) retired: HashSet<(String, u64)>,
    /// Per-URI replication metadata (version + tombstone); tombstones are
    /// retained so deletions win over stale replicated registrations.
    doc_meta: BTreeMap<String, DocMeta>,
    /// Next outgoing replication sequence number per backbone peer.
    repl_next_seq: HashMap<String, u64>,
    /// Unacked replicated operations keyed `(peer, seq)`.
    repl_outbox: BTreeMap<(String, u64), ReplOutgoing>,
    /// Next incoming replication sequence expected per backbone peer.
    repl_floor: HashMap<String, u64>,
    /// Out-of-order replicated operations parked until the floor closes.
    repl_buffer: BTreeMap<(String, u64), ReplOp>,
    /// Raft consensus state when the backbone runs in
    /// [`crate::raft::ReplicationMode::Raft`]; `None` in LWW mode, where the
    /// replication fields above carry the backbone instead.
    pub(crate) raft: Option<crate::raft::RaftState>,
    /// The installed placement table when the backbone runs
    /// partitioned-with-replicas (DESIGN.md §11); `None` under full
    /// replication, where every legacy code path runs verbatim.
    placement: Option<PlacementTable>,
}

impl Mdp {
    pub fn new(name: &str, schema: RdfSchema) -> Self {
        Self::with_filter_config(name, schema, FilterConfig::default())
    }

    /// Like [`Mdp::new`] with an explicit filter configuration — the knobs
    /// the system tier exposes for parallel batch filtering
    /// (`FilterConfig::threads`) and sharded filtering
    /// (`FilterConfig::shards`). Publications do not depend on the
    /// configuration (DESIGN.md §5 and §8), so mixed-config deployments
    /// stay consistent.
    pub fn with_filter_config(name: &str, schema: RdfSchema, config: FilterConfig) -> Self {
        Self::from_engine(
            name,
            ShardedFilterEngine::with_config(schema, config),
            false,
        )
    }
}

impl<S: StorageEngine + Send + Sync> Mdp<S> {
    /// Builds an MDP whose filter engine runs on an explicit storage
    /// backend and mirrors node state into the `Sys*` tables of the same
    /// database — on a durable backend the whole node becomes
    /// crash-recoverable (DESIGN.md §6).
    pub fn with_storage(
        name: &str,
        store: S,
        schema: RdfSchema,
        config: FilterConfig,
    ) -> Result<Self> {
        Self::with_storages(name, vec![store], schema, config)
    }

    /// Like [`Mdp::with_storage`] with one backend per filter shard
    /// (DESIGN.md §8): the shard count is `stores.len()`, each shard owns
    /// its store (and WAL, under a durable backend), and the `Sys*` mirror
    /// tables live in shard 0's store.
    pub fn with_storages(
        name: &str,
        stores: Vec<S>,
        schema: RdfSchema,
        config: FilterConfig,
    ) -> Result<Self> {
        let mut engine = ShardedFilterEngine::try_with_storages(stores, schema, config)?;
        let store = engine.storage_mut();
        store.begin();
        mirror::create_table(
            store,
            T_SUBS,
            vec![
                ColumnDef::new("lmr", DataType::Str),
                ColumnDef::new("rule", DataType::Int),
                ColumnDef::new("text", DataType::Str),
            ],
        )?;
        mirror::create_table(
            store,
            T_DOCS,
            vec![
                ColumnDef::new("uri", DataType::Str),
                ColumnDef::new("xml", DataType::Str),
            ],
        )?;
        mirror::create_table(
            store,
            T_PUBSEQ,
            vec![
                ColumnDef::new("lmr", DataType::Str),
                ColumnDef::new("next_seq", DataType::Int),
            ],
        )?;
        mirror::create_table(
            store,
            T_OUTBOX,
            vec![
                ColumnDef::new("lmr", DataType::Str),
                ColumnDef::new("seq", DataType::Int),
                ColumnDef::new("publication", DataType::Str),
            ],
        )?;
        mirror::create_table(
            store,
            T_RETIRED,
            vec![
                ColumnDef::new("lmr", DataType::Str),
                ColumnDef::new("rule", DataType::Int),
            ],
        )?;
        mirror::create_table(
            store,
            T_DOCVER,
            vec![
                ColumnDef::new("uri", DataType::Str),
                ColumnDef::new("version", DataType::Int),
                ColumnDef::new("deleted", DataType::Int),
            ],
        )?;
        mirror::create_table(
            store,
            T_RSEQ,
            vec![
                ColumnDef::new("peer", DataType::Str),
                ColumnDef::new("next_seq", DataType::Int),
            ],
        )?;
        mirror::create_table(
            store,
            T_RFLOOR,
            vec![
                ColumnDef::new("peer", DataType::Str),
                ColumnDef::new("next_seq", DataType::Int),
            ],
        )?;
        let repl_columns = || {
            vec![
                ColumnDef::new("peer", DataType::Str),
                ColumnDef::new("seq", DataType::Int),
                ColumnDef::new("kind", DataType::Int),
                ColumnDef::new("version", DataType::Int),
                ColumnDef::new("uri", DataType::Str),
                ColumnDef::new("xml", DataType::Str),
            ]
        };
        mirror::create_table(store, T_ROUT, repl_columns())?;
        mirror::create_table(store, T_RBUF, repl_columns())?;
        mirror::create_table(
            store,
            T_PLACE,
            vec![
                ColumnDef::new("key", DataType::Str),
                ColumnDef::new("val", DataType::Str),
            ],
        )?;
        store.commit().map_err(mirror::store_err)?;
        Ok(Self::from_engine(name, engine, true))
    }

    fn from_engine(name: &str, engine: ShardedFilterEngine<S>, mirror: bool) -> Self {
        Mdp {
            name: name.to_owned(),
            engine,
            mirror,
            subscribers: HashMap::new(),
            peers: Vec::new(),
            batch_size: None,
            pending: Vec::new(),
            next_pub_seq: HashMap::new(),
            outbox: BTreeMap::new(),
            retired: HashSet::new(),
            doc_meta: BTreeMap::new(),
            repl_next_seq: HashMap::new(),
            repl_outbox: BTreeMap::new(),
            repl_floor: HashMap::new(),
            repl_buffer: BTreeMap::new(),
            raft: None,
            placement: None,
        }
    }

    /// Runs `body` inside one storage commit group spanning *every* filter
    /// shard's backend, so the engine mutations and mirror writes of a
    /// whole node operation become durable atomically. Commits even when
    /// the body fails — the memory path keeps partial state on error, and
    /// the durable path must agree with it.
    pub(crate) fn with_group<T>(&mut self, body: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        self.engine.begin_group();
        let out = body(self);
        self.engine.commit_group()?;
        out
    }

    // ---- mirror writes (no-ops on memory-backed nodes) -------------------

    pub(crate) fn mirror_doc_upsert(&mut self, doc: &Document) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        let uri = doc.uri().to_owned();
        let xml = write_document(doc);
        mirror::upsert_where(
            self.engine.storage_mut(),
            T_DOCS,
            |r| r[0].as_str() == Some(uri.as_str()),
            vec![s(&uri), s(&xml)],
        )
    }

    pub(crate) fn mirror_doc_delete(&mut self, uri: &str) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::delete_where(self.engine.storage_mut(), T_DOCS, |r| {
            r[0].as_str() == Some(uri)
        })?;
        Ok(())
    }

    pub(crate) fn mirror_sub_insert(&mut self, lmr: &str, rule: u64, text: &str) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::insert(
            self.engine.storage_mut(),
            T_SUBS,
            vec![s(lmr), i(rule), s(text)],
        )
    }

    pub(crate) fn mirror_sub_retire(&mut self, lmr: &str, rule: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        let store = self.engine.storage_mut();
        mirror::delete_where(store, T_SUBS, |r| {
            r[0].as_str() == Some(lmr) && r[1].as_int() == Some(rule as i64)
        })?;
        mirror::insert_unique(
            store,
            T_RETIRED,
            |r| r[0].as_str() == Some(lmr) && r[1].as_int() == Some(rule as i64),
            vec![s(lmr), i(rule)],
        )
    }

    fn mirror_outbox_insert(&mut self, lmr: &str, msg: &PublishMsg) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::insert(
            self.engine.storage_mut(),
            T_OUTBOX,
            vec![s(lmr), i(msg.seq), s(&msg.to_wire())],
        )
    }

    fn mirror_outbox_remove(&mut self, lmr: &str, seq: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::delete_where(self.engine.storage_mut(), T_OUTBOX, |r| {
            r[0].as_str() == Some(lmr) && r[1].as_int() == Some(seq as i64)
        })?;
        Ok(())
    }

    pub(crate) fn mirror_pub_seq(&mut self, lmr: &str, next_seq: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::upsert_where(
            self.engine.storage_mut(),
            T_PUBSEQ,
            |r| r[0].as_str() == Some(lmr),
            vec![s(lmr), i(next_seq)],
        )
    }

    pub(crate) fn mirror_sub_unretire(&mut self, lmr: &str, rule: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::delete_where(self.engine.storage_mut(), T_RETIRED, |r| {
            r[0].as_str() == Some(lmr) && r[1].as_int() == Some(rule as i64)
        })?;
        Ok(())
    }

    fn mirror_docver(&mut self, uri: &str) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        let Some(meta) = self.doc_meta.get(uri).copied() else {
            return Ok(());
        };
        mirror::upsert_where(
            self.engine.storage_mut(),
            T_DOCVER,
            |r| r[0].as_str() == Some(uri),
            vec![s(uri), i(meta.version), i(u64::from(meta.deleted))],
        )
    }

    fn mirror_docver_delete(&mut self, uri: &str) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::delete_where(self.engine.storage_mut(), T_DOCVER, |r| {
            r[0].as_str() == Some(uri)
        })?;
        Ok(())
    }

    fn mirror_repl_seq(&mut self, peer: &str, next_seq: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::upsert_where(
            self.engine.storage_mut(),
            T_RSEQ,
            |r| r[0].as_str() == Some(peer),
            vec![s(peer), i(next_seq)],
        )
    }

    fn mirror_repl_floor(&mut self, peer: &str, next_seq: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::upsert_where(
            self.engine.storage_mut(),
            T_RFLOOR,
            |r| r[0].as_str() == Some(peer),
            vec![s(peer), i(next_seq)],
        )
    }

    fn mirror_repl_row_insert(
        &mut self,
        table: &str,
        peer: &str,
        seq: u64,
        op: &ReplOp,
    ) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        let (version, uri, xml) = op.fields();
        mirror::insert(
            self.engine.storage_mut(),
            table,
            vec![
                s(peer),
                i(seq),
                i(op.kind_tag() as u64),
                i(version),
                s(uri),
                s(xml),
            ],
        )
    }

    fn mirror_repl_row_remove(&mut self, table: &str, peer: &str, seq: u64) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::delete_where(self.engine.storage_mut(), table, |r| {
            r[0].as_str() == Some(peer) && r[1].as_int() == Some(seq as i64)
        })?;
        Ok(())
    }

    /// Switches between immediate filtering (`None`, the default) and
    /// periodic batch filtering with the given batch size. Switching back
    /// to immediate mode does not flush; call [`Mdp::flush`] first.
    pub fn set_batch_size(&mut self, batch_size: Option<usize>) {
        self.batch_size = batch_size;
    }

    pub fn batch_size(&self) -> Option<usize> {
        self.batch_size
    }

    /// Sets the worker-thread count for this MDP's filter runs. Takes
    /// effect on the next batch; publications are unaffected (the parallel
    /// filter is deterministic, DESIGN.md §5).
    pub fn set_filter_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    /// Documents queued for the next batch run.
    pub fn pending_documents(&self) -> usize {
        self.pending.len()
    }

    /// Runs the filter over all queued documents and publishes the results.
    pub fn flush(&mut self, net: &Network) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.with_group(|this| {
            let batch = std::mem::take(&mut this.pending);
            let pubs = this.engine.register_batch(&batch)?;
            // queued documents reach durability only here: a crash loses an
            // unflushed batch wholesale, like any uncommitted group
            for doc in &batch {
                this.mirror_doc_upsert(doc)?;
                // the version was bumped when the document was queued
                this.mirror_docver(doc.uri())?;
            }
            this.publish(pubs, net)
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn engine(&self) -> &ShardedFilterEngine<S> {
        &self.engine
    }

    /// Mutable access to the sharded filter engine, for storage-level
    /// tuning (e.g. checkpoint thresholds) on a live node.
    pub fn engine_mut(&mut self) -> &mut ShardedFilterEngine<S> {
        &mut self.engine
    }

    /// Snapshot-as-compaction: checkpoints every shard's storage backend —
    /// writes a fresh snapshot (GC'd of every deleted row) and truncates
    /// each shard's WAL.
    pub fn compact(&mut self) -> Result<()> {
        for store in self.engine.shard_storages_mut() {
            store.checkpoint().map_err(mirror::store_err)?;
        }
        Ok(())
    }

    pub fn set_peers(&mut self, peers: Vec<String>) {
        self.peers = peers;
    }

    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Installs (or clears) the system-tier placement table. Mirrored into
    /// `SysPlacement`, so a crash-recovered node rejoins the partitioned
    /// backbone with the table it last acknowledged.
    pub(crate) fn set_placement(&mut self, table: Option<PlacementTable>) -> Result<()> {
        self.with_group(|this| {
            if this.mirror {
                match &table {
                    Some(t) => {
                        let wire = t.to_wire();
                        mirror::upsert_where(
                            this.engine.storage_mut(),
                            T_PLACE,
                            |r| r[0].as_str() == Some("table"),
                            vec![s("table"), s(&wire)],
                        )?;
                    }
                    None => {
                        mirror::delete_where(this.engine.storage_mut(), T_PLACE, |r| {
                            r[0].as_str() == Some("table")
                        })?;
                    }
                }
            }
            this.placement = table;
            Ok(())
        })
    }

    /// The placement table installed on this node (`None` under full
    /// replication, DESIGN.md §11).
    pub fn placement(&self) -> Option<&PlacementTable> {
        self.placement.as_ref()
    }

    /// Whether this node is the publishing primary for `doc_uri` (always
    /// true under full replication).
    fn publishes_for(&self, doc_uri: &str) -> bool {
        self.placement
            .as_ref()
            .is_none_or(|p| p.is_primary(&self.name, doc_uri))
    }

    /// Publishes filter output for one document operation — unless a
    /// placement table is installed and this node is not the document's
    /// primary, in which case the publications are dropped (the primary
    /// ships the identical matches to every subscriber, DESIGN.md §11).
    fn publish_for(&mut self, doc_uri: &str, pubs: Vec<Publication>, net: &Network) -> Result<()> {
        if self.publishes_for(doc_uri) {
            self.publish(pubs, net)
        } else {
            Ok(())
        }
    }

    /// Filters a match set down to the resources whose document this node
    /// is primary for — the initial cache fill of a subscription under
    /// placement, where every other owner ships its own primaries.
    fn primary_matches(&self, uris: Vec<String>) -> Vec<String> {
        if self.placement.is_none() {
            return uris;
        }
        uris.into_iter()
            .filter(|u| self.publishes_for(doc_uri_of(u)))
            .collect()
    }

    /// Registers a new document: filter, publish, and (when this node is the
    /// origin) replicate to the backbone.
    pub fn register_document(
        &mut self,
        doc: &Document,
        net: &Network,
        replicate: bool,
    ) -> Result<()> {
        match self.batch_size {
            Some(batch_size) => {
                // bumped before replication below so the op carries the new
                // version; the docver mirror row is written at flush time
                self.bump_doc_meta(doc.uri(), false);
                self.pending.push(doc.clone());
                if self.pending.len() >= batch_size {
                    self.flush(net)?;
                }
            }
            None => {
                self.with_group(|this| {
                    let pubs = this.engine.register_document(doc)?;
                    this.mirror_doc_upsert(doc)?;
                    this.bump_doc_meta(doc.uri(), false);
                    this.mirror_docver(doc.uri())?;
                    this.publish_for(doc.uri(), pubs, net)
                })?;
            }
        }
        if replicate {
            let version = self.doc_meta.get(doc.uri()).map_or(1, |m| m.version);
            self.replicate_to_peers(
                ReplOp::Register {
                    uri: doc.uri().to_owned(),
                    version,
                    xml: write_document(doc),
                },
                net,
            )?;
        }
        Ok(())
    }

    /// Re-registers a modified document (paper §3.5).
    pub fn update_document(
        &mut self,
        doc: &Document,
        net: &Network,
        replicate: bool,
    ) -> Result<()> {
        // a pending batch must be filtered before its documents can change
        self.flush(net)?;
        self.with_group(|this| {
            let pubs = this.engine.update_document(doc)?;
            this.mirror_doc_upsert(doc)?;
            this.bump_doc_meta(doc.uri(), false);
            this.mirror_docver(doc.uri())?;
            this.publish_for(doc.uri(), pubs, net)
        })?;
        if replicate {
            let version = self.doc_meta.get(doc.uri()).map_or(1, |m| m.version);
            self.replicate_to_peers(
                ReplOp::Update {
                    uri: doc.uri().to_owned(),
                    version,
                    xml: write_document(doc),
                },
                net,
            )?;
        }
        Ok(())
    }

    /// Deletes a document with all its resources.
    pub fn delete_document(&mut self, uri: &str, net: &Network, replicate: bool) -> Result<()> {
        self.flush(net)?;
        self.with_group(|this| {
            let pubs = this.engine.delete_document(uri)?;
            this.mirror_doc_delete(uri)?;
            // the tombstone keeps its bumped version so the deletion wins
            // over stale replicated registrations
            this.bump_doc_meta(uri, true);
            this.mirror_docver(uri)?;
            this.publish_for(uri, pubs, net)
        })?;
        if replicate {
            let version = self.doc_meta.get(uri).map_or(1, |m| m.version);
            self.replicate_to_peers(
                ReplOp::Delete {
                    uri: uri.to_owned(),
                    version,
                },
                net,
            )?;
        }
        Ok(())
    }

    /// Advances the local version of `uri`; every local mutation bumps it
    /// and the new version ships with the replicated operation.
    fn bump_doc_meta(&mut self, uri: &str, deleted: bool) -> u64 {
        let meta = self.doc_meta.entry(uri.to_owned()).or_insert(DocMeta {
            version: 0,
            deleted: false,
        });
        meta.version += 1;
        meta.deleted = deleted;
        meta.version
    }

    /// Queues one replicated operation per backbone peer on the reliable
    /// at-least-once channel and ships the first copy of each. Under a
    /// placement table the fan-out shrinks from every peer to the replica
    /// set of the operation's document shard.
    fn replicate_to_peers(&mut self, op: ReplOp, net: &Network) -> Result<()> {
        let peers = match &self.placement {
            Some(table) => table.replica_peers(&self.name, op.uri()),
            None => self.peers.clone(),
        };
        if peers.is_empty() {
            return Ok(());
        }
        self.with_group(|this| {
            for peer in &peers {
                let counter = this.repl_next_seq.entry(peer.clone()).or_insert(0);
                let seq = *counter;
                *counter += 1;
                this.mirror_repl_seq(peer, seq + 1)?;
                this.mirror_repl_row_insert(T_ROUT, peer, seq, &op)?;
                let backoff = net.config().retry_initial_ms;
                this.repl_outbox.insert(
                    (peer.clone(), seq),
                    ReplOutgoing {
                        op: op.clone(),
                        next_retry_ms: net.now_ms() + backoff,
                        backoff_ms: backoff,
                    },
                );
                net.send(&this.name, peer, op.clone().into_message(seq))?;
            }
            Ok(())
        })
    }

    /// Subscribers sorted by subscription id (deterministic export).
    pub(crate) fn subscribers_sorted(&self) -> Vec<(SubscriptionId, (String, u64))> {
        let mut out: Vec<_> = self
            .subscribers
            .iter()
            .map(|(s, t)| (*s, t.clone()))
            .collect();
        out.sort_by_key(|(s, _)| *s);
        out
    }

    /// Re-registers a subscription during state import: no ack, no initial
    /// publication (the subscriber already holds its cache).
    pub(crate) fn restore_subscription(
        &mut self,
        lmr: &str,
        lmr_rule: u64,
        rule_text: &str,
    ) -> Result<()> {
        let (sub, _initial) = self.engine.register_subscription(rule_text)?;
        self.subscribers.insert(sub, (lmr.to_owned(), lmr_rule));
        self.mirror_sub_insert(lmr, lmr_rule, rule_text)
    }

    /// Per-LMR publication sequence counters, sorted (deterministic export).
    pub(crate) fn pub_seqs_sorted(&self) -> Vec<(String, u64)> {
        let mut out: Vec<_> = self
            .next_pub_seq
            .iter()
            .map(|(l, s)| (l.clone(), *s))
            .collect();
        out.sort();
        out
    }

    /// Restores a per-LMR publication sequence counter during state import.
    pub(crate) fn restore_pub_seq(&mut self, lmr: &str, next_seq: u64) -> Result<()> {
        self.next_pub_seq.insert(lmr.to_owned(), next_seq);
        self.mirror_pub_seq(lmr, next_seq)
    }

    /// Re-registers a document during state import: no publication, no
    /// replication.
    pub(crate) fn restore_document(&mut self, doc: &Document) -> Result<()> {
        let _pubs = self.engine.register_document(doc)?;
        self.mirror_doc_upsert(doc)
    }

    /// Restores an unacked publication during crash recovery. The entry is
    /// scheduled for immediate retransmission: it was in flight when the
    /// node died, and the at-least-once protocol tolerates the duplicate.
    pub(crate) fn restore_outbox_entry(
        &mut self,
        lmr: &str,
        msg: PublishMsg,
        retry_backoff_ms: u64,
    ) -> Result<()> {
        self.mirror_outbox_insert(lmr, &msg)?;
        self.outbox.insert(
            (lmr.to_owned(), msg.seq),
            Outgoing {
                msg,
                next_retry_ms: 0,
                backoff_ms: retry_backoff_ms.max(1),
            },
        );
        Ok(())
    }

    /// Per-URI replication metadata, sorted (deterministic export).
    pub(crate) fn doc_meta_sorted(&self) -> Vec<(String, DocMeta)> {
        self.doc_meta.iter().map(|(u, m)| (u.clone(), *m)).collect()
    }

    /// Restores one URI's replication metadata during state import or
    /// crash recovery (overwrites whatever registration implied).
    pub(crate) fn restore_doc_meta(
        &mut self,
        uri: &str,
        version: u64,
        deleted: bool,
    ) -> Result<()> {
        self.doc_meta
            .insert(uri.to_owned(), DocMeta { version, deleted });
        self.mirror_docver(uri)
    }

    /// Outgoing replication counters, sorted (deterministic export).
    pub(crate) fn repl_seqs_sorted(&self) -> Vec<(String, u64)> {
        let mut out: Vec<_> = self
            .repl_next_seq
            .iter()
            .map(|(p, s)| (p.clone(), *s))
            .collect();
        out.sort();
        out
    }

    pub(crate) fn restore_repl_seq(&mut self, peer: &str, next_seq: u64) -> Result<()> {
        self.repl_next_seq.insert(peer.to_owned(), next_seq);
        self.mirror_repl_seq(peer, next_seq)
    }

    /// Incoming replication floors, sorted (deterministic export).
    pub(crate) fn repl_floors_sorted(&self) -> Vec<(String, u64)> {
        let mut out: Vec<_> = self
            .repl_floor
            .iter()
            .map(|(p, s)| (p.clone(), *s))
            .collect();
        out.sort();
        out
    }

    pub(crate) fn restore_repl_floor(&mut self, peer: &str, next_seq: u64) -> Result<()> {
        self.repl_floor.insert(peer.to_owned(), next_seq);
        self.mirror_repl_floor(peer, next_seq)
    }

    /// Restores an unacked replicated operation during crash recovery,
    /// due for immediate retransmission (duplicates are tolerated).
    fn restore_repl_outbox_entry(
        &mut self,
        peer: &str,
        seq: u64,
        op: ReplOp,
        retry_backoff_ms: u64,
    ) -> Result<()> {
        self.mirror_repl_row_insert(T_ROUT, peer, seq, &op)?;
        self.repl_outbox.insert(
            (peer.to_owned(), seq),
            ReplOutgoing {
                op,
                next_retry_ms: 0,
                backoff_ms: retry_backoff_ms.max(1),
            },
        );
        Ok(())
    }

    /// Restores a parked out-of-order replicated operation during crash
    /// recovery.
    fn restore_repl_buffer_entry(&mut self, peer: &str, seq: u64, op: ReplOp) -> Result<()> {
        self.mirror_repl_row_insert(T_RBUF, peer, seq, &op)?;
        self.repl_buffer.insert((peer.to_owned(), seq), op);
        Ok(())
    }

    /// Restores a retracted-subscription tombstone during crash recovery.
    pub(crate) fn restore_retired(&mut self, lmr: &str, lmr_rule: u64) -> Result<()> {
        self.retired.insert((lmr.to_owned(), lmr_rule));
        if self.mirror {
            mirror::insert_unique(
                self.engine.storage_mut(),
                T_RETIRED,
                |r| r[0].as_str() == Some(lmr) && r[1].as_int() == Some(lmr_rule as i64),
                vec![s(lmr), i(lmr_rule)],
            )?;
        }
        Ok(())
    }

    /// Rebuilds this (freshly constructed) node from the `Sys*` mirror
    /// tables of a crash-recovered database: subscriptions and documents
    /// replay through the normal registration paths (publications
    /// suppressed), protocol state is restored verbatim, and unacked
    /// publications re-enter the outbox due for retransmission.
    pub(crate) fn rebuild_from_tables(
        &mut self,
        src: &Database,
        retry_backoff_ms: u64,
    ) -> Result<(usize, usize)> {
        let corrupt = |table: &str| Error::Topology(format!("corrupt mirror row in {table}"));
        self.with_group(|this| {
            let mut subs = 0;
            for row in mirror::rows_sorted(src, T_SUBS) {
                let (Some(lmr), Some(rule), Some(text)) =
                    (row[0].as_str(), row[1].as_int(), row[2].as_str())
                else {
                    return Err(corrupt(T_SUBS));
                };
                this.restore_subscription(lmr, rule as u64, text)?;
                subs += 1;
            }
            let mut docs = 0;
            for row in mirror::rows_sorted(src, T_DOCS) {
                let (Some(uri), Some(xml)) = (row[0].as_str(), row[1].as_str()) else {
                    return Err(corrupt(T_DOCS));
                };
                let doc = parse_document(uri, xml).map_err(mdv_filter::Error::from)?;
                this.restore_document(&doc)?;
                docs += 1;
            }
            for row in mirror::rows_sorted(src, T_PUBSEQ) {
                let (Some(lmr), Some(next)) = (row[0].as_str(), row[1].as_int()) else {
                    return Err(corrupt(T_PUBSEQ));
                };
                this.restore_pub_seq(lmr, next as u64)?;
            }
            for row in mirror::rows_sorted(src, T_OUTBOX) {
                let (Some(lmr), Some(wire)) = (row[0].as_str(), row[2].as_str()) else {
                    return Err(corrupt(T_OUTBOX));
                };
                let msg = PublishMsg::from_wire(wire)
                    .map_err(|e| Error::Topology(format!("corrupt outbox publication: {e}")))?;
                this.restore_outbox_entry(lmr, msg, retry_backoff_ms)?;
            }
            for row in mirror::rows_sorted(src, T_RETIRED) {
                let (Some(lmr), Some(rule)) = (row[0].as_str(), row[1].as_int()) else {
                    return Err(corrupt(T_RETIRED));
                };
                this.restore_retired(lmr, rule as u64)?;
            }
            for row in mirror::rows_sorted(src, T_DOCVER) {
                let (Some(uri), Some(version), Some(deleted)) =
                    (row[0].as_str(), row[1].as_int(), row[2].as_int())
                else {
                    return Err(corrupt(T_DOCVER));
                };
                this.restore_doc_meta(uri, version as u64, deleted != 0)?;
            }
            for row in mirror::rows_sorted(src, T_RSEQ) {
                let (Some(peer), Some(next)) = (row[0].as_str(), row[1].as_int()) else {
                    return Err(corrupt(T_RSEQ));
                };
                this.restore_repl_seq(peer, next as u64)?;
            }
            for row in mirror::rows_sorted(src, T_RFLOOR) {
                let (Some(peer), Some(next)) = (row[0].as_str(), row[1].as_int()) else {
                    return Err(corrupt(T_RFLOOR));
                };
                this.restore_repl_floor(peer, next as u64)?;
            }
            let parse_repl = |table: &str, row: &[mdv_relstore::Value]| {
                let (Some(peer), Some(seq), Some(kind), Some(version), Some(uri), Some(xml)) = (
                    row[0].as_str(),
                    row[1].as_int(),
                    row[2].as_int(),
                    row[3].as_int(),
                    row[4].as_str(),
                    row[5].as_str(),
                ) else {
                    return Err(corrupt(table));
                };
                let op = ReplOp::from_parts(kind, version as u64, uri, xml).ok_or_else(|| {
                    Error::Topology(format!("corrupt replication op kind in {table}"))
                })?;
                Ok((peer.to_owned(), seq as u64, op))
            };
            for row in mirror::rows_sorted(src, T_ROUT) {
                let (peer, seq, op) = parse_repl(T_ROUT, &row)?;
                this.restore_repl_outbox_entry(&peer, seq, op, retry_backoff_ms)?;
            }
            for row in mirror::rows_sorted(src, T_RBUF) {
                let (peer, seq, op) = parse_repl(T_RBUF, &row)?;
                this.restore_repl_buffer_entry(&peer, seq, op)?;
            }
            for row in mirror::rows_sorted(src, T_PLACE) {
                let (Some(key), Some(val)) = (row[0].as_str(), row[1].as_str()) else {
                    return Err(corrupt(T_PLACE));
                };
                if key != "table" {
                    return Err(corrupt(T_PLACE));
                }
                let table = PlacementTable::from_wire(val)?;
                if this.mirror {
                    mirror::upsert_where(
                        this.engine.storage_mut(),
                        T_PLACE,
                        |r| r[0].as_str() == Some("table"),
                        vec![s("table"), s(val)],
                    )?;
                }
                this.placement = Some(table);
            }
            Ok((subs, docs))
        })
    }

    /// Browsing support (paper §2.2: "real users can also browse metadata at
    /// an MDP and select it for caching").
    pub fn browse_classes(&self) -> Vec<String> {
        self.engine
            .schema()
            .class_names()
            .into_iter()
            .map(str::to_owned)
            .collect()
    }

    pub fn browse_resources(&self, class: &str) -> Result<Vec<Resource>> {
        let mut uris = BaseStore::resources_of_class(self.engine.db(), class)?;
        uris.sort();
        uris.into_iter()
            .map(|u| {
                self.engine
                    .resource(&u)?
                    .ok_or_else(|| Error::Topology(format!("resource '{u}' vanished")))
            })
            .collect()
    }

    /// The class of a registered resource (browse + OID-rule generation).
    pub fn class_of_resource(&self, uri: &str) -> Result<Option<String>> {
        Ok(BaseStore::resource_class(self.engine.db(), uri)?)
    }

    /// Processes one incoming message. Each message is handled inside one
    /// storage commit group, so a crash never persists half an operation.
    pub fn handle(&mut self, env: Envelope, net: &Network) -> Result<()> {
        self.with_group(|this| this.handle_inner(env, net))
    }

    fn handle_inner(&mut self, env: Envelope, net: &Network) -> Result<()> {
        match env.message {
            // ---- consensus-mode arms (DESIGN.md §9): subscription traffic
            // is proposed to the replicated log by the leader; every other
            // voter silently drops it (the LMR retransmits, and re-homing
            // steers it to the leader). Idempotent re-acks stay local.
            Message::Subscribe {
                lmr_rule,
                rule_text,
            } if self.raft.is_some() => {
                let key = (env.from.clone(), lmr_rule);
                if self.retired.contains(&key) || self.subscribers.values().any(|v| *v == key) {
                    return net.send(
                        &self.name,
                        &env.from,
                        Message::SubscribeAck {
                            lmr_rule,
                            error: None,
                        },
                    );
                }
                if !self.raft_is_leader() {
                    return Ok(());
                }
                self.raft_propose(
                    crate::raft::RaftCmd::Subscribe {
                        lmr: env.from,
                        lmr_rule,
                        rule_text,
                    },
                    net,
                )
                .map(|_| ())
            }
            Message::Unsubscribe { lmr_rule } if self.raft.is_some() => {
                if self.retired.contains(&(env.from.clone(), lmr_rule)) {
                    return net.send(&self.name, &env.from, Message::UnsubscribeAck { lmr_rule });
                }
                if !self.raft_is_leader() {
                    return Ok(());
                }
                self.raft_propose(
                    crate::raft::RaftCmd::Unsubscribe {
                        lmr: env.from,
                        lmr_rule,
                    },
                    net,
                )
                .map(|_| ())
            }
            Message::Resubscribe {
                lmr_rule,
                rule_text,
                last_seq,
            } if self.raft.is_some() => {
                let key = (env.from.clone(), lmr_rule);
                let registered = self.subscribers.values().any(|v| *v == key);
                let cur = self.next_pub_seq.get(&env.from).copied().unwrap_or(0);
                if registered && last_seq == cur {
                    return net.send(
                        &self.name,
                        &env.from,
                        Message::SubscribeAck {
                            lmr_rule,
                            error: None,
                        },
                    );
                }
                if !self.raft_is_leader() {
                    return Ok(());
                }
                self.raft_propose(
                    crate::raft::RaftCmd::Resubscribe {
                        lmr: env.from,
                        lmr_rule,
                        rule_text,
                        last_seq,
                    },
                    net,
                )
                .map(|_| ())
            }
            // only the leader welcomes a re-homing LMR; a stale or deposed
            // voter stays silent and the LMR's hello retry finds the leader
            Message::FailoverHello { last_seq: _ } if self.raft.is_some() => {
                if !self.raft_is_leader() {
                    return Ok(());
                }
                let next_seq = self.next_pub_seq.get(&env.from).copied().unwrap_or(0);
                net.send(&self.name, &env.from, Message::FailoverWelcome { next_seq })
            }
            Message::RequestVote { .. }
            | Message::RequestVoteReply { .. }
            | Message::AppendEntries { .. }
            | Message::AppendEntriesReply { .. }
            | Message::InstallSnapshot { .. }
            | Message::InstallSnapshotReply { .. }
                if self.raft.is_some() =>
            {
                self.raft_handle(&env.from, env.message, net)
            }
            // ---- LWW-mode arms (and mode-independent protocol) ----------
            Message::Subscribe {
                lmr_rule,
                rule_text,
            } => {
                let key = (env.from.clone(), lmr_rule);
                // retransmitted or duplicated Subscribe: the subscription is
                // already registered (or already retracted again) — re-ack
                // without touching the engine, so retries are idempotent
                if self.retired.contains(&key) || self.subscribers.values().any(|v| *v == key) {
                    return net.send(
                        &self.name,
                        &env.from,
                        Message::SubscribeAck {
                            lmr_rule,
                            error: None,
                        },
                    );
                }
                match self.engine.register_subscription(&rule_text) {
                    Ok((sub, initial)) => {
                        self.subscribers.insert(sub, (env.from.clone(), lmr_rule));
                        self.mirror_sub_insert(&env.from, lmr_rule, &rule_text)?;
                        net.send(
                            &self.name,
                            &env.from,
                            Message::SubscribeAck {
                                lmr_rule,
                                error: None,
                            },
                        )?;
                        // initial cache fill (under placement: only the
                        // documents this node is primary for — every other
                        // owner ships its own share)
                        let initial = self.primary_matches(initial);
                        if !initial.is_empty() {
                            let msg = self.build_publish(lmr_rule, &initial, &[], &[])?;
                            self.send_publication(&env.from, msg, net)?;
                        }
                        Ok(())
                    }
                    Err(e) => net.send(
                        &self.name,
                        &env.from,
                        Message::SubscribeAck {
                            lmr_rule,
                            error: Some(e.to_string()),
                        },
                    ),
                }
            }
            Message::Unsubscribe { lmr_rule } => {
                let key = self
                    .subscribers
                    .iter()
                    .find(|(_, (lmr, rule))| *lmr == env.from && *rule == lmr_rule)
                    .map(|(sub, _)| *sub);
                match key {
                    Some(sub) => {
                        self.subscribers.remove(&sub);
                        self.engine.unregister_subscription(sub)?;
                        self.retired.insert((env.from.clone(), lmr_rule));
                        self.mirror_sub_retire(&env.from, lmr_rule)?;
                        net.send(&self.name, &env.from, Message::UnsubscribeAck { lmr_rule })
                    }
                    // retransmitted/duplicated Unsubscribe: already retracted
                    None if self.retired.contains(&(env.from.clone(), lmr_rule)) => {
                        net.send(&self.name, &env.from, Message::UnsubscribeAck { lmr_rule })
                    }
                    // unknown rule: tombstone it and ack idempotently. A
                    // failover cleanup unsubscribe can reach an MDP that
                    // never saw the subscription (e.g. after a crash); rule
                    // ids are never reused, so retiring is always safe.
                    None => {
                        self.retired.insert((env.from.clone(), lmr_rule));
                        self.mirror_sub_retire(&env.from, lmr_rule)?;
                        net.send(&self.name, &env.from, Message::UnsubscribeAck { lmr_rule })
                    }
                }
            }
            Message::PublishAck { seq } => {
                self.outbox.remove(&(env.from.clone(), seq));
                self.mirror_outbox_remove(&env.from, seq)?;
                Ok(())
            }
            Message::ReplicateRegister {
                seq,
                version,
                document_uri,
                xml,
            } => self.receive_replicated(
                &env.from,
                seq,
                ReplOp::Register {
                    uri: document_uri,
                    version,
                    xml,
                },
                net,
            ),
            Message::ReplicateUpdate {
                seq,
                version,
                document_uri,
                xml,
            } => self.receive_replicated(
                &env.from,
                seq,
                ReplOp::Update {
                    uri: document_uri,
                    version,
                    xml,
                },
                net,
            ),
            Message::ReplicateDelete {
                seq,
                version,
                document_uri,
            } => self.receive_replicated(
                &env.from,
                seq,
                ReplOp::Delete {
                    uri: document_uri,
                    version,
                },
                net,
            ),
            Message::ReplicateAck { seq } => {
                self.repl_outbox.remove(&(env.from.clone(), seq));
                self.mirror_repl_row_remove(T_ROUT, &env.from, seq)?;
                Ok(())
            }
            Message::ReplicaDigest { entries } => self.handle_digest(&env.from, &entries, net),
            Message::PlacementDigest { epoch, entries } => {
                self.handle_placement_digest(&env.from, epoch, &entries, net)
            }
            Message::RepairRequest { uris } => self.handle_repair_request(&env.from, &uris, net),
            Message::RepairDocs { docs } => self.handle_repair_docs(docs, net),
            Message::FailoverHello { last_seq: _ } => {
                let next_seq = self.next_pub_seq.get(&env.from).copied().unwrap_or(0);
                net.send(&self.name, &env.from, Message::FailoverWelcome { next_seq })
            }
            Message::Resubscribe {
                lmr_rule,
                rule_text,
                last_seq,
            } => self.handle_resubscribe(&env.from, lmr_rule, &rule_text, last_seq, net),
            other => Err(Error::Topology(format!(
                "MDP '{}' received unexpected message kind '{}'",
                self.name,
                other.kind()
            ))),
        }
    }

    /// Receives one sequenced replicated operation: ack every copy, dedup
    /// below the floor, park out-of-order arrivals, and apply in sequence
    /// order as the floor closes.
    fn receive_replicated(
        &mut self,
        peer: &str,
        seq: u64,
        op: ReplOp,
        net: &Network,
    ) -> Result<()> {
        net.send(&self.name, peer, Message::ReplicateAck { seq })?;
        let floor = self.repl_floor.get(peer).copied().unwrap_or(0);
        if seq < floor || self.repl_buffer.contains_key(&(peer.to_owned(), seq)) {
            return Ok(()); // duplicate delivery
        }
        self.mirror_repl_row_insert(T_RBUF, peer, seq, &op)?;
        self.repl_buffer.insert((peer.to_owned(), seq), op);
        let mut next = floor;
        while let Some(op) = self.repl_buffer.remove(&(peer.to_owned(), next)) {
            self.mirror_repl_row_remove(T_RBUF, peer, next)?;
            next += 1;
            self.repl_floor.insert(peer.to_owned(), next);
            self.mirror_repl_floor(peer, next)?;
            self.apply_remote_op(op, net)?;
        }
        Ok(())
    }

    fn apply_remote_op(&mut self, op: ReplOp, net: &Network) -> Result<bool> {
        match op {
            ReplOp::Register { uri, version, xml } | ReplOp::Update { uri, version, xml } => {
                self.apply_remote_doc(&uri, version, false, Some(&xml), net)
            }
            ReplOp::Delete { uri, version } => {
                self.apply_remote_doc(&uri, version, true, None, net)
            }
        }
    }

    /// The `(version, deleted, hash)` conflict-resolution key of this
    /// node's current state for `uri` (all-zero when the URI is unknown).
    fn local_doc_key(&self, uri: &str) -> (u64, u8, u64) {
        let meta = self.doc_meta.get(uri).copied().unwrap_or(DocMeta {
            version: 0,
            deleted: false,
        });
        let hash = if meta.deleted {
            0
        } else {
            self.engine
                .document(uri)
                .map(|d| fnv1a64(write_document(d).as_bytes()))
                .unwrap_or(0)
        };
        (meta.version, u8::from(meta.deleted), hash)
    }

    /// Applies one remote document state if it is newer than the local one
    /// under the total order `(version, deleted, hash)`; stale and
    /// duplicate states are skipped, which makes replicated applies (and
    /// anti-entropy repairs racing them) idempotent and commutative.
    /// Returns whether the state was applied.
    fn apply_remote_doc(
        &mut self,
        uri: &str,
        version: u64,
        deleted: bool,
        xml: Option<&str>,
        net: &Network,
    ) -> Result<bool> {
        let incoming = (
            version,
            u8::from(deleted),
            xml.filter(|_| !deleted)
                .map_or(0, |x| fnv1a64(x.as_bytes())),
        );
        if incoming <= self.local_doc_key(uri) {
            return Ok(false);
        }
        // replicated state never mixes into a pending local batch
        self.flush(net)?;
        if deleted {
            if self.engine.document(uri).is_some() {
                self.with_group(|this| {
                    let pubs = this.engine.delete_document(uri)?;
                    this.mirror_doc_delete(uri)?;
                    this.publish_for(uri, pubs, net)
                })?;
            }
        } else if let Some(xml) = xml {
            let doc = parse_document(uri, xml).map_err(mdv_filter::Error::from)?;
            let known = self.engine.document(uri).is_some();
            self.with_group(|this| {
                // a register racing a tombstoned or diverged URI degrades
                // to an update (and vice versa), so op kinds never error
                let pubs = if known {
                    this.engine.update_document(&doc)?
                } else {
                    this.engine.register_document(&doc)?
                };
                this.mirror_doc_upsert(&doc)?;
                this.publish_for(uri, pubs, net)
            })?;
        }
        self.doc_meta
            .insert(uri.to_owned(), DocMeta { version, deleted });
        self.mirror_docver(uri)?;
        Ok(true)
    }

    /// This node's anti-entropy digest: one `(version, deleted, hash)`
    /// entry per URI it has ever seen (tombstones included), sorted by URI.
    pub(crate) fn digest(&self) -> Vec<DigestEntry> {
        let mut entries: Vec<DigestEntry> = self
            .doc_meta
            .iter()
            .map(|(uri, meta)| DigestEntry {
                uri: uri.clone(),
                version: meta.version,
                deleted: meta.deleted,
                hash: if meta.deleted {
                    0
                } else {
                    self.engine
                        .document(uri)
                        .map(|d| fnv1a64(write_document(d).as_bytes()))
                        .unwrap_or(0)
                },
            })
            .collect();
        // documents restored from a pre-versioning export carry no meta;
        // advertise them at version 0 so newer replicas overwrite them
        for doc in self.engine.documents() {
            if !self.doc_meta.contains_key(doc.uri()) {
                entries.push(DigestEntry {
                    uri: doc.uri().to_owned(),
                    version: 0,
                    deleted: false,
                    hash: fnv1a64(write_document(doc).as_bytes()),
                });
            }
        }
        entries.sort_by(|a, b| a.uri.cmp(&b.uri));
        entries
    }

    /// Diffs a peer's digest against local state and pulls every URI whose
    /// advertised key is newer (pull-only: the reverse digest covers the
    /// other direction).
    fn handle_digest(&mut self, peer: &str, entries: &[DigestEntry], net: &Network) -> Result<()> {
        let mut want = Vec::new();
        for e in entries {
            if (e.version, u8::from(e.deleted), e.hash) > self.local_doc_key(&e.uri) {
                want.push(e.uri.clone());
            }
        }
        if want.is_empty() {
            return Ok(());
        }
        net.send(&self.name, peer, Message::RepairRequest { uris: want })
    }

    /// Answers an anti-entropy pull with the *current* local state of the
    /// requested URIs (which may be newer than the digest that was sent).
    fn handle_repair_request(&mut self, peer: &str, uris: &[String], net: &Network) -> Result<()> {
        let mut docs = Vec::new();
        for uri in uris {
            let (version, deleted) = self
                .doc_meta
                .get(uri)
                .map(|m| (m.version, m.deleted))
                .unwrap_or((0, false));
            let xml = if deleted {
                String::new()
            } else {
                match self.engine.document(uri) {
                    Some(d) => write_document(d),
                    None => continue,
                }
            };
            docs.push(RepairDoc {
                uri: uri.clone(),
                version,
                deleted,
                xml,
            });
        }
        if docs.is_empty() {
            return Ok(());
        }
        net.send(&self.name, peer, Message::RepairDocs { docs })
    }

    fn handle_repair_docs(&mut self, docs: Vec<RepairDoc>, net: &Network) -> Result<()> {
        for d in docs {
            let xml = if d.deleted {
                None
            } else {
                Some(d.xml.as_str())
            };
            if self.apply_remote_doc(&d.uri, d.version, d.deleted, xml, net)? {
                net.note_repair();
            }
        }
        Ok(())
    }

    /// Diffs a peer's placement digest against local state: like
    /// [`Mdp::handle_digest`] but scoped to the shards this node owns — a
    /// partitioned node never pulls documents it is not an owner of, and a
    /// digest from a different placement epoch is ignored (the orchestrator
    /// re-runs anti-entropy once every node holds the matching table).
    fn handle_placement_digest(
        &mut self,
        peer: &str,
        epoch: u64,
        entries: &[DigestEntry],
        net: &Network,
    ) -> Result<()> {
        let Some(table) = &self.placement else {
            return Ok(());
        };
        if table.epoch() != epoch {
            return Ok(());
        }
        let mut want = Vec::new();
        for e in entries {
            if table.owns_doc(&self.name, &e.uri)
                && (e.version, u8::from(e.deleted), e.hash) > self.local_doc_key(&e.uri)
            {
                want.push(e.uri.clone());
            }
        }
        if want.is_empty() {
            return Ok(());
        }
        net.send(&self.name, peer, Message::RepairRequest { uris: want })
    }

    /// Drops every document this node no longer owns under the installed
    /// placement table: engine rows, mirror rows, and replication metadata
    /// are all *erased* (not tombstoned — the shard's owners keep the
    /// authoritative copies, and an erased URI can be re-acquired wholesale
    /// if ownership ever returns). Publications from the drops are
    /// discarded: subscriber caches are maintained by the shard's primary,
    /// not by nodes shedding their copy. Returns the number of URIs
    /// dropped.
    pub(crate) fn prune_unowned(&mut self) -> Result<usize> {
        let Some(table) = self.placement.clone() else {
            return Ok(0);
        };
        let mut victims: BTreeSet<String> = self
            .doc_meta
            .keys()
            .filter(|u| !table.owns_doc(&self.name, u.as_str()))
            .cloned()
            .collect();
        for doc in self.engine.documents() {
            if !table.owns_doc(&self.name, doc.uri()) {
                victims.insert(doc.uri().to_owned());
            }
        }
        if victims.is_empty() {
            return Ok(0);
        }
        self.with_group(|this| {
            for uri in &victims {
                if this.engine.document(uri).is_some() {
                    let _pubs = this.engine.delete_document(uri)?;
                    this.mirror_doc_delete(uri)?;
                }
                this.doc_meta.remove(uri);
                this.mirror_docver_delete(uri)?;
            }
            Ok(victims.len())
        })
    }

    /// Registers a subscription homed at another MDP. Under placement every
    /// owner evaluates every rule (matching documents can live on any
    /// shard), so the orchestrator mirrors each subscription onto every
    /// live MDP. Idempotent; the initial fill covers only this node's
    /// primary documents and ships on this node's own publication stream.
    pub(crate) fn register_remote_subscription(
        &mut self,
        lmr: &str,
        lmr_rule: u64,
        rule_text: &str,
        net: &Network,
    ) -> Result<()> {
        let key = (lmr.to_owned(), lmr_rule);
        if self.retired.contains(&key) || self.subscribers.values().any(|v| *v == key) {
            return Ok(());
        }
        self.with_group(|this| {
            let (sub, initial) = this.engine.register_subscription(rule_text)?;
            this.subscribers.insert(sub, key);
            this.mirror_sub_insert(lmr, lmr_rule, rule_text)?;
            let initial = this.primary_matches(initial);
            if !initial.is_empty() {
                let msg = this.build_publish(lmr_rule, &initial, &[], &[])?;
                this.send_publication(lmr, msg, net)?;
            }
            Ok(())
        })
    }

    /// Retracts a remotely-registered subscription (idempotent); the
    /// orchestrator's counterpart to [`Mdp::register_remote_subscription`]
    /// when the LMR unsubscribes at its home MDP.
    pub(crate) fn remove_remote_subscription(&mut self, lmr: &str, lmr_rule: u64) -> Result<()> {
        let key = (lmr.to_owned(), lmr_rule);
        let sub = self
            .subscribers
            .iter()
            .find(|(_, v)| **v == key)
            .map(|(sub, _)| *sub);
        self.with_group(|this| {
            if let Some(sub) = sub {
                this.subscribers.remove(&sub);
                this.engine.unregister_subscription(sub)?;
            }
            if this.retired.insert(key) {
                this.mirror_sub_retire(lmr, lmr_rule)?;
            }
            Ok(())
        })
    }

    /// Re-registers a rule for a failed-over (or failed-back) LMR and
    /// ships a reconciling snapshot unless the subscriber is provably
    /// caught up (`last_seq` equals the current stream position of an
    /// already-registered rule).
    fn handle_resubscribe(
        &mut self,
        lmr: &str,
        lmr_rule: u64,
        rule_text: &str,
        last_seq: u64,
        net: &Network,
    ) -> Result<()> {
        let key = (lmr.to_owned(), lmr_rule);
        let existing = self
            .subscribers
            .iter()
            .find(|(_, v)| **v == key)
            .map(|(sub, _)| *sub);
        let cur = self.next_pub_seq.get(lmr).copied().unwrap_or(0);
        let ack = |error: Option<String>| Message::SubscribeAck { lmr_rule, error };
        if existing.is_some() && last_seq == cur {
            // already subscribed here and fully caught up — nothing to resync
            return net.send(&self.name, lmr, ack(None));
        }
        // re-registering returns the full current match set, which the
        // snapshot needs anyway; a rule retired by a cleanup unsubscribe
        // comes back to life when its LMR fails back home
        if let Some(sub) = existing {
            self.subscribers.remove(&sub);
            self.engine.unregister_subscription(sub)?;
        }
        if self.retired.remove(&key) {
            self.mirror_sub_unretire(lmr, lmr_rule)?;
        }
        match self.engine.register_subscription(rule_text) {
            Err(e) => net.send(&self.name, lmr, ack(Some(e.to_string()))),
            Ok((sub, initial)) => {
                self.subscribers.insert(sub, key);
                if existing.is_none() {
                    self.mirror_sub_insert(lmr, lmr_rule, rule_text)?;
                }
                net.send(&self.name, lmr, ack(None))?;
                let initial = self.primary_matches(initial);
                let mut msg = self.build_publish(lmr_rule, &initial, &[], &[])?;
                // sent even when empty: the subscriber drops stale anchors
                // that the snapshot no longer lists
                msg.snapshot = true;
                self.send_publication(lmr, msg, net)
            }
        }
    }

    /// Converts filter publications into publish messages (resolving URIs to
    /// full resources and computing the strong-reference closure) and sends
    /// them to the subscribed LMRs.
    fn publish(&mut self, pubs: Vec<Publication>, net: &Network) -> Result<()> {
        for p in pubs {
            let Some((lmr, lmr_rule)) = self.subscribers.get(&p.subscription).cloned() else {
                // subscription without a live subscriber (e.g. engine-level
                // tests); nothing to ship
                continue;
            };
            let msg = self.build_publish(lmr_rule, &p.added, &p.updated, &p.removed)?;
            if !msg.is_empty() {
                self.send_publication(&lmr, msg, net)?;
            }
        }
        Ok(())
    }

    /// Assigns the next per-LMR sequence number, remembers the publication
    /// in the outbox until it is acked, and ships it.
    pub(crate) fn send_publication(
        &mut self,
        lmr: &str,
        mut msg: PublishMsg,
        net: &Network,
    ) -> Result<()> {
        let seq = self.next_pub_seq.entry(lmr.to_owned()).or_insert(0);
        msg.seq = *seq;
        *seq += 1;
        let next = *seq;
        self.mirror_pub_seq(lmr, next)?;
        self.mirror_outbox_insert(lmr, &msg)?;
        let backoff = net.config().retry_initial_ms;
        self.outbox.insert(
            (lmr.to_owned(), msg.seq),
            Outgoing {
                msg: msg.clone(),
                next_retry_ms: net.now_ms() + backoff,
                backoff_ms: backoff,
            },
        );
        net.send(&self.name, lmr, Message::Publish(msg))
    }

    /// Publications sent but not yet acked by their LMR.
    pub fn unacked_publications(&self) -> usize {
        self.outbox.len()
    }

    /// Replicated operations sent but not yet acked by their peer.
    pub fn unacked_replications(&self) -> usize {
        self.repl_outbox.len()
    }

    /// Earliest scheduled retransmission over both outboxes. Entries whose
    /// destination is marked down are parked (excluded), so quiescence is
    /// reachable while a node is failed; they become due again on heal.
    pub fn next_retry_at(&self, net: &Network) -> Option<u64> {
        let pubs = self
            .outbox
            .iter()
            .filter(|((lmr, _), _)| !net.is_down(lmr))
            .map(|(_, o)| o.next_retry_ms);
        let repls = self
            .repl_outbox
            .iter()
            .filter(|((peer, _), _)| !net.is_down(peer))
            .map(|(_, o)| o.next_retry_ms);
        pubs.chain(repls).min()
    }

    /// Retransmits every outbox entry whose retry timer is due; returns
    /// whether anything was resent. Backoff doubles per attempt up to the
    /// configured cap. Entries targeting a down node are skipped.
    pub fn retransmit_due(&mut self, net: &Network) -> Result<bool> {
        let now = net.now_ms();
        let max = net.config().retry_max_ms;
        let mut resent = false;
        for ((lmr, _), out) in self.outbox.iter_mut() {
            if net.is_down(lmr) {
                continue;
            }
            if out.next_retry_ms <= now {
                net.send_retry(&self.name, lmr, Message::Publish(out.msg.clone()))?;
                out.backoff_ms = (out.backoff_ms * 2).min(max);
                out.next_retry_ms = now + out.backoff_ms;
                resent = true;
            }
        }
        for ((peer, seq), out) in self.repl_outbox.iter_mut() {
            if net.is_down(peer) {
                continue;
            }
            if out.next_retry_ms <= now {
                net.send_retry(&self.name, peer, out.op.clone().into_message(*seq))?;
                out.backoff_ms = (out.backoff_ms * 2).min(max);
                out.next_retry_ms = now + out.backoff_ms;
                resent = true;
            }
        }
        Ok(resent)
    }

    pub(crate) fn build_publish(
        &mut self,
        lmr_rule: u64,
        added: &[String],
        updated: &[String],
        removed: &[String],
    ) -> Result<PublishMsg> {
        let resolve = |engine: &ShardedFilterEngine<S>, uri: &String| -> Result<Resource> {
            engine
                .resource(uri)?
                .ok_or_else(|| Error::Topology(format!("published resource '{uri}' vanished")))
        };
        let matched: Vec<Resource> = added
            .iter()
            .map(|u| resolve(&self.engine, u))
            .collect::<Result<_>>()?;
        let updated_res: Vec<Resource> = updated
            .iter()
            .map(|u| resolve(&self.engine, u))
            .collect::<Result<_>>()?;
        // companions: the strong closure of everything shipped, minus the
        // shipped resources themselves
        let mut seeds: Vec<String> = added.to_vec();
        seeds.extend(updated.iter().cloned());
        let shipped: BTreeSet<&String> = added.iter().chain(updated.iter()).collect();
        let companions: Vec<Resource> = self
            .engine
            .strong_closure(&seeds)?
            .into_iter()
            .filter(|u| !shipped.contains(u))
            .map(|u| resolve(&self.engine, &u))
            .collect::<Result<_>>()?;
        Ok(PublishMsg {
            // assigned on send by `send_publication`
            seq: 0,
            lmr_rule,
            matched,
            companions,
            updated: updated_res,
            removed: removed.to_vec(),
            snapshot: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{NetConfig, Network};
    use mdv_rdf::{Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn doc(i: usize, host: &str, memory: i64) -> Document {
        let uri = format!("doc{i}.rdf");
        Document::new(uri.clone())
            .with_resource(
                Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                    .with("serverHost", Term::literal(host))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new(&uri, "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                    .with("memory", Term::literal(memory.to_string()))
                    .with("cpu", Term::literal("600")),
            )
    }

    fn subscribe_env(rule: &str) -> Envelope {
        Envelope {
            from: "lmr1".into(),
            to: "mdp1".into(),
            message: Message::Subscribe {
                lmr_rule: 0,
                rule_text: rule.into(),
            },
            deliver_at_ms: 0,
        }
    }

    #[test]
    fn subscribe_publish_flow() {
        let net = Network::new(NetConfig::default());
        let _rx = net.register("lmr1").unwrap();
        let mut mdp = Mdp::new("mdp1", schema());
        mdp.handle(
            subscribe_env(
                "search CycleProvider c register c where c.serverInformation.memory > 64",
            ),
            &net,
        )
        .unwrap();
        mdp.register_document(&doc(1, "a.org", 128), &net, false)
            .unwrap();
        let kinds = net.traffic_by_kind();
        assert_eq!(kinds["subscribe-ack"], 1);
        assert_eq!(kinds["publish"], 1);
        // the publish carries the matched host plus its companion info
        let log = net.log();
        let publish = log.iter().find(|r| r.kind == "publish").unwrap();
        assert_eq!(publish.to, "lmr1");
    }

    #[test]
    fn bad_rule_gets_error_ack() {
        let net = Network::new(NetConfig::default());
        let _rx = net.register("lmr1").unwrap();
        let mut mdp = Mdp::new("mdp1", schema());
        mdp.handle(subscribe_env("search Nope n register n"), &net)
            .unwrap();
        assert_eq!(net.traffic_by_kind()["subscribe-ack"], 1);
    }

    #[test]
    fn replication_to_peers() {
        let net = Network::new(NetConfig::default());
        let _rx2 = net.register("mdp2").unwrap();
        let _rx3 = net.register("mdp3").unwrap();
        let mut mdp = Mdp::new("mdp1", schema());
        mdp.set_peers(vec!["mdp2".into(), "mdp3".into()]);
        mdp.register_document(&doc(1, "a.org", 1), &net, true)
            .unwrap();
        assert_eq!(net.traffic_by_kind()["replicate-register"], 2);
        mdp.update_document(&doc(1, "a.org", 2), &net, true)
            .unwrap();
        assert_eq!(net.traffic_by_kind()["replicate-update"], 2);
        mdp.delete_document("doc1.rdf", &net, true).unwrap();
        assert_eq!(net.traffic_by_kind()["replicate-delete"], 2);
    }

    #[test]
    fn replicated_registration_does_not_re_replicate() {
        let net = Network::new(NetConfig::default());
        let _rx = net.register("mdp1").unwrap();
        let mut mdp2 = Mdp::new("mdp2", schema());
        mdp2.set_peers(vec!["mdp1".into()]);
        let xml = write_document(&doc(1, "a.org", 1));
        mdp2.handle(
            Envelope {
                from: "mdp1".into(),
                to: "mdp2".into(),
                message: Message::ReplicateRegister {
                    seq: 0,
                    version: 1,
                    document_uri: "doc1.rdf".into(),
                    xml,
                },
                deliver_at_ms: 0,
            },
            &net,
        )
        .unwrap();
        // no replicate-register went back out, only the ack
        assert!(!net.traffic_by_kind().contains_key("replicate-register"));
        assert_eq!(net.traffic_by_kind()["replicate-ack"], 1);
        assert!(mdp2.engine().document("doc1.rdf").is_some());
    }

    fn replicate_env(seq: u64, message: Message) -> Envelope {
        let _ = seq;
        Envelope {
            from: "mdp1".into(),
            to: "mdp2".into(),
            message,
            deliver_at_ms: 0,
        }
    }

    #[test]
    fn duplicated_delete_then_recreate_is_idempotent() {
        // the delete/recreate race across the backbone: a ReplicateDelete
        // delivered twice, interleaved with the re-registration of the same
        // URI, must leave exactly the recreated document behind
        let net = Network::new(NetConfig::default());
        let _rx = net.register("mdp1").unwrap();
        let mut mdp2 = Mdp::new("mdp2", schema());
        let v1 = write_document(&doc(1, "a.org", 1));
        let v3 = write_document(&doc(1, "b.org", 9));
        let register = |seq, version, xml: &str| {
            replicate_env(
                seq,
                Message::ReplicateRegister {
                    seq,
                    version,
                    document_uri: "doc1.rdf".into(),
                    xml: xml.to_owned(),
                },
            )
        };
        let delete = |seq, version| {
            replicate_env(
                seq,
                Message::ReplicateDelete {
                    seq,
                    version,
                    document_uri: "doc1.rdf".into(),
                },
            )
        };
        mdp2.handle(register(0, 1, &v1), &net).unwrap();
        mdp2.handle(delete(1, 2), &net).unwrap();
        // duplicate of the delete (below the floor): acked, not re-applied
        mdp2.handle(delete(1, 2), &net).unwrap();
        // recreation of the same URI wins over the tombstone
        mdp2.handle(register(2, 3, &v3), &net).unwrap();
        // late duplicate of the delete again, after the recreation
        mdp2.handle(delete(1, 2), &net).unwrap();
        let doc = mdp2.engine().document("doc1.rdf").expect("doc recreated");
        assert_eq!(write_document(doc), v3);
        assert_eq!(mdp2.local_doc_key("doc1.rdf").0, 3);
        assert_eq!(net.traffic_by_kind()["replicate-ack"], 5);
        assert_eq!(mdp2.unacked_replications(), 0);
    }

    #[test]
    fn out_of_order_replication_is_parked_until_the_floor_closes() {
        let net = Network::new(NetConfig::default());
        let _rx = net.register("mdp1").unwrap();
        let mut mdp2 = Mdp::new("mdp2", schema());
        let xml = write_document(&doc(1, "a.org", 1));
        // seq 1 (an update) arrives before seq 0 (the registration)
        mdp2.handle(
            replicate_env(
                1,
                Message::ReplicateUpdate {
                    seq: 1,
                    version: 2,
                    document_uri: "doc1.rdf".into(),
                    xml: write_document(&doc(1, "b.org", 2)),
                },
            ),
            &net,
        )
        .unwrap();
        assert!(mdp2.engine().document("doc1.rdf").is_none());
        mdp2.handle(
            replicate_env(
                0,
                Message::ReplicateRegister {
                    seq: 0,
                    version: 1,
                    document_uri: "doc1.rdf".into(),
                    xml,
                },
            ),
            &net,
        )
        .unwrap();
        // both applied, in order: the update's content won
        let doc1 = mdp2.engine().document("doc1.rdf").unwrap();
        assert_eq!(write_document(doc1), write_document(&doc(1, "b.org", 2)));
        assert_eq!(mdp2.local_doc_key("doc1.rdf").0, 2);
    }

    #[test]
    fn browse_apis() {
        let net = Network::new(NetConfig::default());
        let mut mdp = Mdp::new("mdp1", schema());
        mdp.register_document(&doc(1, "a.org", 1), &net, false)
            .unwrap();
        assert_eq!(
            mdp.browse_classes(),
            vec!["CycleProvider", "ServerInformation"]
        );
        let cps = mdp.browse_resources("CycleProvider").unwrap();
        assert_eq!(cps.len(), 1);
        assert_eq!(cps[0].uri().as_str(), "doc1.rdf#host");
        assert_eq!(
            mdp.class_of_resource("doc1.rdf#info").unwrap().as_deref(),
            Some("ServerInformation")
        );
    }

    #[test]
    fn unsubscribe_unknown_is_acked_and_retired() {
        // failover cleanup unsubscribes can reach an MDP that never saw the
        // subscription; the retraction must be idempotent, and the
        // tombstone must keep a later duplicate Subscribe from resurrecting
        let net = Network::new(NetConfig::default());
        let _rx = net.register("lmr1").unwrap();
        let mut mdp = Mdp::new("mdp1", schema());
        mdp.handle(
            Envelope {
                from: "lmr1".into(),
                to: "mdp1".into(),
                message: Message::Unsubscribe { lmr_rule: 9 },
                deliver_at_ms: 0,
            },
            &net,
        )
        .unwrap();
        assert_eq!(net.traffic_by_kind()["unsubscribe-ack"], 1);
        mdp.handle(
            Envelope {
                from: "lmr1".into(),
                to: "mdp1".into(),
                message: Message::Subscribe {
                    lmr_rule: 9,
                    rule_text: "search CycleProvider c register c".into(),
                },
                deliver_at_ms: 0,
            },
            &net,
        )
        .unwrap();
        // re-acked without registering (rule 9 stays retired)
        assert_eq!(net.traffic_by_kind()["subscribe-ack"], 1);
        assert!(mdp.subscribers.is_empty());
    }
}
