//! Single-group Raft consensus for the MDP backbone (DESIGN.md §9).
//!
//! The paper calls the MDP tier "globally consistent"; the LWW backbone of
//! DESIGN.md §7 is only eventually convergent. [`ReplicationMode::Raft`]
//! replaces it with a single Raft group spanning every MDP: document
//! registration/update/delete and subscription placement are proposed to
//! the elected leader, committed through the replicated log, and applied
//! deterministically on every voter's `StorageEngine`. The module runs
//! entirely over the fault-injecting simulated transport and logical
//! clock, which is what makes the safety properties (election safety, log
//! matching, leader completeness, state-machine safety) *property-testable*
//! under seeded fault schedules (`tests/raft_safety.rs`).
//!
//! Election timeouts are drawn from a PRNG seeded by `(raft seed, node
//! name, term)`, so a crash-restarted voter re-derives exactly the
//! schedule it would have used — no volatile timer state to lose. Hard
//! state (term, vote, applied index, hash chain), the log, and the
//! snapshot anchor are mirrored into WAL-logged tables via the PR-4
//! mirror machinery; `crash_and_restart_mdp` recovers a voter without
//! ever violating election safety.

use std::collections::{BTreeMap, BTreeSet};

use mdv_rdf::parse_document;
use mdv_relstore::{ColumnDef, DataType, Database, StorageEngine};
use mdv_runtime::rng::Prng;

use crate::error::{Error, Result};
use crate::mdp::{fnv1a64, Mdp};
use crate::message::{escape, unescape, Message};
use crate::mirror::{self, i, s};
use crate::transport::Network;

/// Durable Raft tables. Created only when a node is switched into Raft
/// mode on a mirror-enabled backend, so the LWW durable layout stays
/// byte-identical to PR 6.
const T_RAFT_HARD: &str = "SysRaftHard"; // key, num, txt
const T_RAFT_LOG: &str = "SysRaftLog"; // idx, term, cmd
const T_RAFT_SNAP: &str = "SysRaftSnap"; // idx, term, data

/// Leader heartbeat / replication retry interval (logical ms).
pub const HEARTBEAT_MS: u64 = 50;
/// Election timeouts are drawn uniformly from `[MIN, MIN + SPREAD)`.
const ELECTION_MIN_MS: u64 = 150;
const ELECTION_SPREAD_MS: u64 = 150;
/// Log entries retained below the snapshot anchor after a compaction, so
/// recent indices stay addressable for consistency checks.
const COMPACT_KEEP: u64 = 8;
/// Default compaction trigger: compact once `applied - offset` exceeds it.
pub(crate) const DEFAULT_COMPACT_THRESHOLD: u64 = 64;

/// How the MDP backbone replicates state (`MdvSystem` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationMode {
    /// Version-gated last-writer-wins replication with anti-entropy repair
    /// and manually configured LMR failover (DESIGN.md §7). The default.
    #[default]
    Lww,
    /// Single-group Raft: linearizable writes through an elected leader,
    /// automatic LMR re-homing to the leader (DESIGN.md §9).
    Raft,
}

/// A voter's current role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaftRole {
    Follower,
    Candidate,
    Leader,
}

/// One replicated state-machine command. Everything that mutates MDP
/// state in Raft mode — including subscription placement, because a
/// subscription changes which publications every future write generates —
/// rides the log (DESIGN.md §9).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RaftCmd {
    /// Appended by a fresh leader to commit entries from earlier terms
    /// (Raft §5.4.2).
    Noop,
    Register {
        uri: String,
        xml: String,
    },
    Update {
        uri: String,
        xml: String,
    },
    Delete {
        uri: String,
    },
    Subscribe {
        lmr: String,
        lmr_rule: u64,
        rule_text: String,
    },
    Resubscribe {
        lmr: String,
        lmr_rule: u64,
        rule_text: String,
        last_seq: u64,
    },
    Unsubscribe {
        lmr: String,
        lmr_rule: u64,
    },
    /// Installs a placement table on every voter (DESIGN.md §11). The
    /// payload is [`crate::placement::PlacementTable::to_wire`] output.
    /// Bookkeeping only under Raft: storage stays fully replicated through
    /// the log; the table drives write routing at the system tier.
    Placement {
        table: String,
    },
}

impl RaftCmd {
    /// Tab-separated, escaped wire form — one line per command — used for
    /// both the durable log mirror and the cross-node apply hash chain.
    pub(crate) fn to_wire(&self) -> String {
        match self {
            RaftCmd::Noop => "noop".to_owned(),
            RaftCmd::Register { uri, xml } => format!("reg\t{}\t{}", escape(uri), escape(xml)),
            RaftCmd::Update { uri, xml } => format!("upd\t{}\t{}", escape(uri), escape(xml)),
            RaftCmd::Delete { uri } => format!("del\t{}", escape(uri)),
            RaftCmd::Subscribe {
                lmr,
                lmr_rule,
                rule_text,
            } => format!("sub\t{}\t{lmr_rule}\t{}", escape(lmr), escape(rule_text)),
            RaftCmd::Resubscribe {
                lmr,
                lmr_rule,
                rule_text,
                last_seq,
            } => format!(
                "resub\t{}\t{lmr_rule}\t{last_seq}\t{}",
                escape(lmr),
                escape(rule_text)
            ),
            RaftCmd::Unsubscribe { lmr, lmr_rule } => {
                format!("unsub\t{}\t{lmr_rule}", escape(lmr))
            }
            RaftCmd::Placement { table } => format!("place\t{}", escape(table)),
        }
    }

    pub(crate) fn from_wire(wire: &str) -> Result<RaftCmd> {
        let bad = || Error::Topology(format!("corrupt raft command '{wire}'"));
        let mut parts = wire.split('\t');
        let tag = parts.next().ok_or_else(bad)?;
        let field = |p: &mut std::str::Split<'_, char>| p.next().map(unescape).ok_or_else(bad);
        let num = |p: &mut std::str::Split<'_, char>| -> Result<u64> {
            p.next().and_then(|v| v.parse().ok()).ok_or_else(bad)
        };
        Ok(match tag {
            "noop" => RaftCmd::Noop,
            "reg" => RaftCmd::Register {
                uri: field(&mut parts)?,
                xml: field(&mut parts)?,
            },
            "upd" => RaftCmd::Update {
                uri: field(&mut parts)?,
                xml: field(&mut parts)?,
            },
            "del" => RaftCmd::Delete {
                uri: field(&mut parts)?,
            },
            "sub" => RaftCmd::Subscribe {
                lmr: field(&mut parts)?,
                lmr_rule: num(&mut parts)?,
                rule_text: field(&mut parts)?,
            },
            "resub" => {
                let lmr = field(&mut parts)?;
                let lmr_rule = num(&mut parts)?;
                let last_seq = num(&mut parts)?;
                RaftCmd::Resubscribe {
                    lmr,
                    lmr_rule,
                    rule_text: field(&mut parts)?,
                    last_seq,
                }
            }
            "unsub" => RaftCmd::Unsubscribe {
                lmr: field(&mut parts)?,
                lmr_rule: num(&mut parts)?,
            },
            "place" => RaftCmd::Placement {
                table: field(&mut parts)?,
            },
            _ => return Err(bad()),
        })
    }
}

/// The election timeout of `(node, term)`: a pure function of the seeded
/// PRNG, so it is identical before and after a crash-restart.
pub(crate) fn election_timeout_ms(seed: u64, name: &str, term: u64) -> u64 {
    let mix = seed ^ fnv1a64(name.as_bytes()) ^ term.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut rng = Prng::seed_from_u64(mix);
    ELECTION_MIN_MS + rng.below(ELECTION_SPREAD_MS)
}

/// Extends the apply hash chain by one command wire form (state-machine
/// safety instrumentation: equal chains ⇒ identical applied prefixes).
fn chain_hash(prev: u64, wire: &str) -> u64 {
    let mut bytes = prev.to_le_bytes().to_vec();
    bytes.extend_from_slice(wire.as_bytes());
    fnv1a64(&bytes)
}

/// Per-voter Raft state. The log vector covers indices `(offset, last]`;
/// `offset`/`offset_term` anchor the consistency check for the first
/// retained entry, and `(snap_index, snap_term, snap_data)` is the latest
/// state-machine snapshot (`snap_index >= offset` would hold only right
/// after an install; in steady state `snap_index <= offset + KEEP`).
#[derive(Debug)]
pub(crate) struct RaftState {
    pub seed: u64,
    pub term: u64,
    pub voted_for: Option<String>,
    pub role: RaftRole,
    /// `(term, command wire form)`; `log[k]` holds index `offset + 1 + k`.
    pub log: Vec<(u64, String)>,
    pub offset: u64,
    pub offset_term: u64,
    pub snap_index: u64,
    pub snap_term: u64,
    pub snap_data: String,
    pub commit: u64,
    pub applied: u64,
    /// Apply hash chain value at `applied`.
    pub cum_hash: u64,
    /// Volatile `(index, chain value)` record of every apply since this
    /// process (re)started; the safety tests compare common prefixes.
    pub applied_chain: Vec<(u64, u64)>,
    pub next_index: BTreeMap<String, u64>,
    pub match_index: BTreeMap<String, u64>,
    pub votes: BTreeSet<String>,
    pub heartbeat_due_ms: u64,
    pub election_deadline_ms: u64,
    /// Terms in which this node ever became leader (persisted): the
    /// election-safety property checks these sets pairwise disjoint.
    pub led_terms: BTreeSet<u64>,
    pub compact_threshold: u64,
}

impl RaftState {
    fn new(seed: u64, name: &str, now_ms: u64) -> Self {
        RaftState {
            seed,
            term: 0,
            voted_for: None,
            role: RaftRole::Follower,
            log: Vec::new(),
            offset: 0,
            offset_term: 0,
            snap_index: 0,
            snap_term: 0,
            snap_data: String::new(),
            commit: 0,
            applied: 0,
            cum_hash: 0,
            applied_chain: Vec::new(),
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            votes: BTreeSet::new(),
            heartbeat_due_ms: 0,
            election_deadline_ms: now_ms + election_timeout_ms(seed, name, 0),
            led_terms: BTreeSet::new(),
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
        }
    }

    pub fn last_index(&self) -> u64 {
        self.offset + self.log.len() as u64
    }

    pub fn last_term(&self) -> u64 {
        self.log.last().map_or(self.offset_term, |(t, _)| *t)
    }

    /// Term of the entry at `index`, when still addressable.
    pub fn term_at(&self, index: u64) -> Option<u64> {
        if index == self.offset {
            Some(self.offset_term)
        } else if index > self.offset && index <= self.last_index() {
            Some(self.log[(index - self.offset - 1) as usize].0)
        } else {
            None
        }
    }

    fn entry_wire(&self, index: u64) -> Option<&str> {
        if index > self.offset && index <= self.last_index() {
            Some(self.log[(index - self.offset - 1) as usize].1.as_str())
        } else {
            None
        }
    }
}

/// Read-only view of a voter's Raft state for tests and orchestration.
#[derive(Debug, Clone)]
pub struct RaftProbe {
    pub term: u64,
    pub role: RaftRole,
    pub voted_for: Option<String>,
    pub commit: u64,
    pub applied: u64,
    /// Index of the entry preceding the first retained log entry.
    pub offset: u64,
    /// Latest snapshot anchor index (0 when no snapshot was taken).
    pub snap_index: u64,
    /// Retained entries as `(index, term, command wire form)`.
    pub log: Vec<(u64, u64, String)>,
    /// Every term this node ever led (persisted across crash-restarts).
    pub led_terms: Vec<u64>,
    /// Apply hash chain value at `applied`.
    pub cum_hash: u64,
    /// `(index, chain value)` for every apply since process (re)start.
    pub applied_chain: Vec<(u64, u64)>,
}

impl<S: StorageEngine + Send + Sync> Mdp<S> {
    /// Switches this node into Raft mode. On a mirror-enabled backend the
    /// Raft tables are created here — never in `with_storages` — so LWW
    /// durable layouts stay byte-identical to the pre-Raft format.
    pub(crate) fn raft_enable(&mut self, seed: u64, now_ms: u64) -> Result<()> {
        if self.mirror {
            self.with_group(|this| {
                let store = this.engine.storage_mut();
                mirror::create_table(
                    store,
                    T_RAFT_HARD,
                    vec![
                        ColumnDef::new("key", DataType::Str),
                        ColumnDef::new("num", DataType::Int),
                        ColumnDef::new("txt", DataType::Str),
                    ],
                )?;
                mirror::create_table(
                    store,
                    T_RAFT_LOG,
                    vec![
                        ColumnDef::new("idx", DataType::Int),
                        ColumnDef::new("term", DataType::Int),
                        ColumnDef::new("cmd", DataType::Str),
                    ],
                )?;
                mirror::create_table(
                    store,
                    T_RAFT_SNAP,
                    vec![
                        ColumnDef::new("idx", DataType::Int),
                        ColumnDef::new("term", DataType::Int),
                        ColumnDef::new("data", DataType::Str),
                    ],
                )?;
                Ok(())
            })?;
        }
        self.raft = Some(RaftState::new(seed, &self.name, now_ms));
        Ok(())
    }

    pub(crate) fn raft_set_compact_threshold(&mut self, threshold: u64) {
        if let Some(r) = self.raft.as_mut() {
            r.compact_threshold = threshold.max(1);
        }
    }

    pub(crate) fn raft_is_leader(&self) -> bool {
        self.raft
            .as_ref()
            .is_some_and(|r| r.role == RaftRole::Leader)
    }

    /// Read-only probe of this voter's Raft state (None in LWW mode).
    pub fn raft_probe(&self) -> Option<RaftProbe> {
        let r = self.raft.as_ref()?;
        Some(RaftProbe {
            term: r.term,
            role: r.role,
            voted_for: r.voted_for.clone(),
            commit: r.commit,
            applied: r.applied,
            offset: r.offset,
            snap_index: r.snap_index,
            log: r
                .log
                .iter()
                .enumerate()
                .map(|(k, (t, c))| (r.offset + 1 + k as u64, *t, c.clone()))
                .collect(),
            led_terms: r.led_terms.iter().copied().collect(),
            cum_hash: r.cum_hash,
            applied_chain: r.applied_chain.clone(),
        })
    }

    // ---- durable mirrors of the Raft state -------------------------------

    fn raft_hard_upsert(&mut self, key: &str, num: u64, txt: &str) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::upsert_where(
            self.engine.storage_mut(),
            T_RAFT_HARD,
            |r| r[0].as_str() == Some(key),
            vec![s(key), i(num), s(txt)],
        )
    }

    /// Persists term, vote, and led-terms (the election-safety hard state).
    fn raft_persist_vote(&mut self) -> Result<()> {
        let Some(r) = self.raft.as_ref() else {
            return Ok(());
        };
        let term = r.term;
        let voted = r.voted_for.clone().unwrap_or_default();
        let led = r
            .led_terms
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        self.raft_hard_upsert("term", term, "")?;
        self.raft_hard_upsert("voted", 0, &voted)?;
        self.raft_hard_upsert("led", 0, &led)
    }

    /// Persists the apply cursor and hash chain, in the same commit group
    /// as the state-machine mutation it records.
    fn raft_persist_applied(&mut self) -> Result<()> {
        let Some(r) = self.raft.as_ref() else {
            return Ok(());
        };
        let (applied, cum) = (r.applied, r.cum_hash);
        self.raft_hard_upsert("applied", applied, "")?;
        self.raft_hard_upsert("cum", cum, "")
    }

    fn raft_persist_anchor(&mut self) -> Result<()> {
        let Some(r) = self.raft.as_ref() else {
            return Ok(());
        };
        let (offset, offset_term) = (r.offset, r.offset_term);
        let (si, st, data) = (r.snap_index, r.snap_term, r.snap_data.clone());
        self.raft_hard_upsert("offset", offset, "")?;
        self.raft_hard_upsert("offset_term", offset_term, "")?;
        if !self.mirror || si == 0 {
            return Ok(());
        }
        mirror::upsert_where(
            self.engine.storage_mut(),
            T_RAFT_SNAP,
            |_| true,
            vec![i(si), i(st), s(&data)],
        )
    }

    fn raft_log_insert(&mut self, idx: u64, term: u64, cmd: &str) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::insert(
            self.engine.storage_mut(),
            T_RAFT_LOG,
            vec![i(idx), i(term), s(cmd)],
        )
    }

    fn raft_log_delete_where(&mut self, pred: impl Fn(u64) -> bool) -> Result<()> {
        if !self.mirror {
            return Ok(());
        }
        mirror::delete_where(self.engine.storage_mut(), T_RAFT_LOG, |r| {
            r[0].as_int().is_some_and(|v| pred(v as u64))
        })?;
        Ok(())
    }

    /// Rebuilds the Raft hard state, log, and snapshot anchor from the
    /// recovered database of a crashed voter. Called after
    /// `rebuild_from_tables` restored the applied state machine; the
    /// commit index conservatively restarts at `applied` and the node
    /// comes back as a follower (a restart never extends leadership).
    pub(crate) fn raft_restore_from_tables(
        &mut self,
        src: &Database,
        seed: u64,
        now_ms: u64,
    ) -> Result<()> {
        let corrupt = |t: &str| Error::Topology(format!("corrupt raft mirror row in {t}"));
        let mut state = RaftState::new(seed, &self.name, now_ms);
        for row in mirror::rows_sorted(src, T_RAFT_HARD) {
            let (Some(key), Some(num), Some(txt)) =
                (row[0].as_str(), row[1].as_int(), row[2].as_str())
            else {
                return Err(corrupt(T_RAFT_HARD));
            };
            let num = num as u64;
            match key {
                "term" => state.term = num,
                "voted" => state.voted_for = (!txt.is_empty()).then(|| txt.to_owned()),
                "led" => {
                    state.led_terms = txt
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| p.parse().map_err(|_| corrupt(T_RAFT_HARD)))
                        .collect::<Result<_>>()?;
                }
                "applied" => state.applied = num,
                "cum" => state.cum_hash = num,
                "offset" => state.offset = num,
                "offset_term" => state.offset_term = num,
                _ => return Err(corrupt(T_RAFT_HARD)),
            }
        }
        for row in mirror::rows_sorted(src, T_RAFT_SNAP) {
            let (Some(idx), Some(term), Some(data)) =
                (row[0].as_int(), row[1].as_int(), row[2].as_str())
            else {
                return Err(corrupt(T_RAFT_SNAP));
            };
            state.snap_index = idx as u64;
            state.snap_term = term as u64;
            state.snap_data = data.to_owned();
        }
        let mut entries: Vec<(u64, u64, String)> = Vec::new();
        for row in mirror::rows_sorted(src, T_RAFT_LOG) {
            let (Some(idx), Some(term), Some(cmd)) =
                (row[0].as_int(), row[1].as_int(), row[2].as_str())
            else {
                return Err(corrupt(T_RAFT_LOG));
            };
            entries.push((idx as u64, term as u64, cmd.to_owned()));
        }
        // rows_sorted orders Value-wise; re-sort numerically by index
        entries.sort_by_key(|(idx, _, _)| *idx);
        for (idx, term, cmd) in entries {
            if idx != state.offset + state.log.len() as u64 + 1 {
                return Err(corrupt(T_RAFT_LOG));
            }
            state.log.push((term, cmd));
        }
        // the applied prefix is already durable; commit restarts there
        state.commit = state.applied;
        state.election_deadline_ms = now_ms + election_timeout_ms(seed, &self.name, state.term);
        // re-mirror into this (fresh) node's own store
        self.raft = Some(state);
        self.with_group(|this| {
            this.raft_persist_vote()?;
            this.raft_persist_applied()?;
            this.raft_persist_anchor()?;
            let rows: Vec<(u64, u64, String)> = {
                let r = this.raft.as_ref().unwrap();
                r.log
                    .iter()
                    .enumerate()
                    .map(|(k, (t, c))| (r.offset + 1 + k as u64, *t, c.clone()))
                    .collect()
            };
            for (idx, term, cmd) in rows {
                this.raft_log_insert(idx, term, &cmd)?;
            }
            Ok(())
        })
    }

    // ---- elections -------------------------------------------------------

    /// Steps down into the follower role of `term` (persisting the vote
    /// reset when the term advanced).
    fn raft_step_down(&mut self, term: u64, now_ms: u64) -> Result<()> {
        let (changed, deadline) = {
            let r = self.raft.as_mut().unwrap();
            let changed = term > r.term;
            if changed {
                r.term = term;
                r.voted_for = None;
            }
            r.role = RaftRole::Follower;
            r.votes.clear();
            let deadline = now_ms + election_timeout_ms(r.seed, &self.name, r.term);
            (changed, deadline)
        };
        self.raft.as_mut().unwrap().election_deadline_ms = deadline;
        if changed {
            self.raft_persist_vote()?;
        }
        Ok(())
    }

    /// Starts an election: bump the term, vote for self, solicit votes.
    pub(crate) fn raft_start_election(&mut self, net: &Network) -> Result<()> {
        let now = net.now_ms();
        let name = self.name.clone();
        let (term, last_index, last_term, peers) = {
            let r = self.raft.as_mut().unwrap();
            r.term += 1;
            r.role = RaftRole::Candidate;
            r.voted_for = Some(name.clone());
            r.votes = BTreeSet::from([name.clone()]);
            r.election_deadline_ms = now + election_timeout_ms(r.seed, &name, r.term);
            (r.term, r.last_index(), r.last_term(), self.peers.clone())
        };
        self.raft_persist_vote()?;
        for peer in &peers {
            net.send(
                &name,
                peer,
                Message::RequestVote {
                    term,
                    last_log_index: last_index,
                    last_log_term: last_term,
                },
            )?;
        }
        // single-node cluster: the self-vote is already a majority
        self.raft_try_win(net)
    }

    fn raft_majority(&self) -> usize {
        // cluster size = peers + self; a majority is floor(size / 2) + 1
        self.peers.len().div_ceil(2) + 1
    }

    /// Promotes a candidate holding a majority of votes to leader.
    fn raft_try_win(&mut self, net: &Network) -> Result<()> {
        let majority = self.raft_majority();
        let won = {
            let r = self.raft.as_ref().unwrap();
            r.role == RaftRole::Candidate && r.votes.len() >= majority
        };
        if !won {
            return Ok(());
        }
        {
            let r = self.raft.as_mut().unwrap();
            r.role = RaftRole::Leader;
            let term = r.term;
            r.led_terms.insert(term);
            let next = r.last_index() + 1;
            r.next_index = self.peers.iter().map(|p| (p.clone(), next)).collect();
            r.match_index = self.peers.iter().map(|p| (p.clone(), 0)).collect();
            r.heartbeat_due_ms = net.now_ms() + HEARTBEAT_MS;
        }
        self.raft_persist_vote()?;
        // committing a no-op entry of the new term commits every earlier
        // entry with it (leader completeness, Raft §5.4.2)
        self.raft_propose(RaftCmd::Noop, net).map(|_| ())
    }

    /// Appends a command to the leader's log and ships it to every peer;
    /// returns the `(index, term)` the caller can later check for commit.
    pub(crate) fn raft_propose(&mut self, cmd: RaftCmd, net: &Network) -> Result<(u64, u64)> {
        if !self.raft_is_leader() {
            return Err(Error::Unavailable(format!(
                "MDP '{}' is not the raft leader",
                self.name
            )));
        }
        let wire = cmd.to_wire();
        let (index, term, peers) = {
            let r = self.raft.as_mut().unwrap();
            let term = r.term;
            r.log.push((term, wire.clone()));
            (r.last_index(), term, self.peers.clone())
        };
        self.with_group(|this| {
            this.raft_log_insert(index, term, &wire)?;
            for peer in peers {
                this.raft_send_append(&peer, net)?;
            }
            // a single-node cluster commits immediately
            this.raft_advance_commit(net)
        })?;
        Ok((index, term))
    }

    /// Sends the peer everything past its `next_index` — an AppendEntries
    /// when the entries are still in the log, an InstallSnapshot when the
    /// peer lags behind the compacted tail.
    pub(crate) fn raft_send_append(&mut self, peer: &str, net: &Network) -> Result<()> {
        let name = self.name.clone();
        let msg = {
            let r = self.raft.as_ref().unwrap();
            let next = r
                .next_index
                .get(peer)
                .copied()
                .unwrap_or(r.last_index() + 1);
            if next <= r.offset {
                Message::InstallSnapshot {
                    term: r.term,
                    last_index: r.snap_index,
                    last_term: r.snap_term,
                    data: r.snap_data.clone(),
                }
            } else {
                let prev = next - 1;
                let entries: Vec<(u64, String)> = r.log[(prev - r.offset) as usize..].to_vec();
                Message::AppendEntries {
                    term: r.term,
                    prev_log_index: prev,
                    prev_log_term: r.term_at(prev).unwrap_or(0),
                    leader_commit: r.commit,
                    entries,
                }
            }
        };
        net.send(&name, peer, msg)
    }

    /// Leader-side commit advancement: the highest index replicated on a
    /// majority whose entry is of the current term becomes committed
    /// (Raft §5.4.2), and committed entries are applied at once.
    fn raft_advance_commit(&mut self, net: &Network) -> Result<bool> {
        let advanced = {
            let r = self.raft.as_mut().unwrap();
            if r.role != RaftRole::Leader {
                false
            } else {
                let mut matches: Vec<u64> = r.match_index.values().copied().collect();
                matches.push(r.last_index());
                matches.sort_unstable_by(|a, b| b.cmp(a));
                let majority = (matches.len()) / 2 + 1;
                let candidate = matches[majority - 1];
                if candidate > r.commit && r.term_at(candidate) == Some(r.term) {
                    r.commit = candidate;
                    true
                } else {
                    false
                }
            }
        };
        if advanced {
            self.raft_apply_committed(net)?;
            // followers learn the new commit index immediately, so the
            // system converges without waiting for a heartbeat tick
            let peers = self.peers.clone();
            for peer in peers {
                self.raft_send_append(&peer, net)?;
            }
        }
        Ok(advanced)
    }

    // ---- RPC handlers ----------------------------------------------------

    /// Dispatches one Raft RPC (`handle_inner` routes the new message
    /// variants here; the caller already opened a commit group).
    pub(crate) fn raft_handle(&mut self, from: &str, msg: Message, net: &Network) -> Result<()> {
        match msg {
            Message::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => self.raft_on_request_vote(from, term, last_log_index, last_log_term, net),
            Message::RequestVoteReply { term, granted } => {
                self.raft_on_vote_reply(from, term, granted, net)
            }
            Message::AppendEntries {
                term,
                prev_log_index,
                prev_log_term,
                leader_commit,
                entries,
            } => self.raft_on_append(
                from,
                term,
                prev_log_index,
                prev_log_term,
                leader_commit,
                entries,
                net,
            ),
            Message::AppendEntriesReply {
                term,
                success,
                match_index,
            } => self.raft_on_append_reply(from, term, success, match_index, net),
            Message::InstallSnapshot {
                term,
                last_index,
                last_term,
                data,
            } => self.raft_on_install(from, term, last_index, last_term, &data, net),
            Message::InstallSnapshotReply { term, match_index } => {
                self.raft_on_install_reply(from, term, match_index, net)
            }
            other => Err(Error::Topology(format!(
                "raft dispatcher got non-raft message '{}'",
                other.kind()
            ))),
        }
    }

    fn raft_on_request_vote(
        &mut self,
        from: &str,
        term: u64,
        last_log_index: u64,
        last_log_term: u64,
        net: &Network,
    ) -> Result<()> {
        let now = net.now_ms();
        if term > self.raft.as_ref().unwrap().term {
            self.raft_step_down(term, now)?;
        }
        let (granted, my_term) = {
            let r = self.raft.as_mut().unwrap();
            if term < r.term {
                (false, r.term)
            } else {
                let up_to_date = last_log_term > r.last_term()
                    || (last_log_term == r.last_term() && last_log_index >= r.last_index());
                let free = r.voted_for.is_none() || r.voted_for.as_deref() == Some(from);
                if up_to_date && free && r.role != RaftRole::Leader {
                    r.voted_for = Some(from.to_owned());
                    (true, r.term)
                } else {
                    (false, r.term)
                }
            }
        };
        if granted {
            let r = self.raft.as_mut().unwrap();
            r.election_deadline_ms = now + election_timeout_ms(r.seed, &self.name, r.term);
            self.raft_persist_vote()?;
        }
        net.send(
            &self.name.clone(),
            from,
            Message::RequestVoteReply {
                term: my_term,
                granted,
            },
        )
    }

    fn raft_on_vote_reply(
        &mut self,
        from: &str,
        term: u64,
        granted: bool,
        net: &Network,
    ) -> Result<()> {
        let my_term = self.raft.as_ref().unwrap().term;
        if term > my_term {
            return self.raft_step_down(term, net.now_ms());
        }
        if granted && term == my_term {
            let r = self.raft.as_mut().unwrap();
            if r.role == RaftRole::Candidate {
                r.votes.insert(from.to_owned());
            }
            return self.raft_try_win(net);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn raft_on_append(
        &mut self,
        from: &str,
        term: u64,
        prev_log_index: u64,
        prev_log_term: u64,
        leader_commit: u64,
        entries: Vec<(u64, String)>,
        net: &Network,
    ) -> Result<()> {
        let name = self.name.clone();
        let now = net.now_ms();
        let my_term = self.raft.as_ref().unwrap().term;
        if term < my_term {
            return net.send(
                &name,
                from,
                Message::AppendEntriesReply {
                    term: my_term,
                    success: false,
                    match_index: 0,
                },
            );
        }
        // a current leader exists: follow it (a candidate of the same term
        // abandons its election)
        self.raft_step_down(term, now)?;
        let (success, match_index, new_entries) = {
            let r = self.raft.as_mut().unwrap();
            match r.term_at(prev_log_index) {
                // consistency check failed: tell the leader how far our
                // log actually reaches so it can back off next_index
                None => (false, r.last_index().min(prev_log_index), Vec::new()),
                Some(t) if t != prev_log_term => (
                    false,
                    prev_log_index.saturating_sub(1).min(r.last_index()),
                    Vec::new(),
                ),
                Some(_) => {
                    // find the first slot where our log diverges from the
                    // leader's entries; everything before it is already
                    // stored with matching terms (log matching), everything
                    // from it on replaces our tail wholesale
                    let mut divergent: Option<usize> = None;
                    for (k, (e_term, _)) in entries.iter().enumerate() {
                        let idx = prev_log_index + 1 + k as u64;
                        if idx <= r.offset {
                            continue; // covered by our snapshot
                        }
                        match r.term_at(idx) {
                            Some(t) if t == *e_term => continue,
                            _ => {
                                divergent = Some(k);
                                break;
                            }
                        }
                    }
                    let mut keep: Vec<(u64, u64, String)> = Vec::new();
                    if let Some(k0) = divergent {
                        let cut = prev_log_index + 1 + k0 as u64;
                        if cut <= r.last_index() {
                            r.log.truncate((cut - r.offset - 1) as usize);
                        }
                        for (k, (e_term, wire)) in entries.iter().enumerate().skip(k0) {
                            let idx = prev_log_index + 1 + k as u64;
                            debug_assert_eq!(idx, r.last_index() + 1);
                            r.log.push((*e_term, wire.clone()));
                            keep.push((idx, *e_term, wire.clone()));
                        }
                    }
                    let matched = prev_log_index + entries.len() as u64;
                    let matched = matched.min(r.last_index());
                    r.commit = r.commit.max(leader_commit.min(r.last_index()));
                    (true, matched, keep)
                }
            }
        };
        if success {
            // mirror the log mutation: drop every row at or past the first
            // replaced index, then insert the appended suffix
            if let Some((first, _, _)) = new_entries.first() {
                let first = *first;
                self.raft_log_delete_where(move |idx| idx >= first)?;
                for (idx, e_term, wire) in &new_entries {
                    self.raft_log_insert(*idx, *e_term, wire)?;
                }
            }
            self.raft_apply_committed(net)?;
        }
        let my_term = self.raft.as_ref().unwrap().term;
        net.send(
            &name,
            from,
            Message::AppendEntriesReply {
                term: my_term,
                success,
                match_index,
            },
        )
    }

    fn raft_on_append_reply(
        &mut self,
        from: &str,
        term: u64,
        success: bool,
        match_index: u64,
        net: &Network,
    ) -> Result<()> {
        let my_term = self.raft.as_ref().unwrap().term;
        if term > my_term {
            return self.raft_step_down(term, net.now_ms());
        }
        if !self.raft_is_leader() || term != my_term {
            return Ok(());
        }
        let lagging = {
            let r = self.raft.as_mut().unwrap();
            if success {
                let m = r.match_index.entry(from.to_owned()).or_insert(0);
                *m = (*m).max(match_index);
                let m = *m;
                r.next_index.insert(from.to_owned(), m + 1);
                false
            } else {
                // follower told us how far its log reaches; resend from there
                let next = r.next_index.entry(from.to_owned()).or_insert(1);
                *next = (*next).min(match_index + 1).max(1);
                true
            }
        };
        if lagging {
            self.raft_send_append(from, net)?;
        }
        self.raft_advance_commit(net)?;
        Ok(())
    }

    fn raft_on_install(
        &mut self,
        from: &str,
        term: u64,
        last_index: u64,
        last_term: u64,
        data: &str,
        net: &Network,
    ) -> Result<()> {
        let name = self.name.clone();
        let my_term = self.raft.as_ref().unwrap().term;
        if term < my_term {
            return net.send(
                &name,
                from,
                Message::InstallSnapshotReply {
                    term: my_term,
                    match_index: 0,
                },
            );
        }
        self.raft_step_down(term, net.now_ms())?;
        let stale = {
            let r = self.raft.as_ref().unwrap();
            last_index <= r.applied
        };
        if !stale {
            self.raft_install_state(data, last_index, last_term, net)?;
        }
        let (my_term, match_index) = {
            let r = self.raft.as_ref().unwrap();
            (r.term, r.applied)
        };
        net.send(
            &name,
            from,
            Message::InstallSnapshotReply {
                term: my_term,
                match_index,
            },
        )
    }

    fn raft_on_install_reply(
        &mut self,
        from: &str,
        term: u64,
        match_index: u64,
        net: &Network,
    ) -> Result<()> {
        let my_term = self.raft.as_ref().unwrap().term;
        if term > my_term {
            return self.raft_step_down(term, net.now_ms());
        }
        if !self.raft_is_leader() || term != my_term {
            return Ok(());
        }
        {
            let r = self.raft.as_mut().unwrap();
            let m = r.match_index.entry(from.to_owned()).or_insert(0);
            *m = (*m).max(match_index);
            let m = *m;
            r.next_index.insert(from.to_owned(), m + 1);
        }
        self.raft_advance_commit(net)?;
        Ok(())
    }

    // ---- the replicated state machine ------------------------------------

    /// Applies every committed-but-unapplied entry, in order, extending the
    /// hash chain and persisting the apply cursor with each mutation.
    fn raft_apply_committed(&mut self, net: &Network) -> Result<()> {
        loop {
            let next = {
                let r = self.raft.as_ref().unwrap();
                if r.applied >= r.commit {
                    break;
                }
                let idx = r.applied + 1;
                r.entry_wire(idx).map(|w| (idx, w.to_owned()))
            };
            let Some((idx, wire)) = next else {
                // committed entries below our log offset were applied via a
                // snapshot install; nothing to replay
                break;
            };
            let cmd = RaftCmd::from_wire(&wire)?;
            let is_leader = self.raft_is_leader();
            self.with_group(|this| {
                this.raft_apply_cmd(&cmd, is_leader, net)?;
                {
                    let r = this.raft.as_mut().unwrap();
                    r.cum_hash = chain_hash(r.cum_hash, &wire);
                    r.applied = idx;
                    let h = r.cum_hash;
                    r.applied_chain.push((idx, h));
                }
                this.raft_persist_applied()
            })?;
        }
        self.raft_maybe_compact()
    }

    /// Applies one command to the local state machine. Every branch is a
    /// deterministic function of the applied prefix, so all voters stay
    /// byte-identical; only the leader talks to LMRs (followers advance
    /// their per-LMR publication counters silently, so sequence numbering
    /// survives leader changes).
    fn raft_apply_cmd(&mut self, cmd: &RaftCmd, is_leader: bool, net: &Network) -> Result<()> {
        match cmd {
            RaftCmd::Noop => Ok(()),
            RaftCmd::Register { uri, xml } | RaftCmd::Update { uri, xml } => {
                let doc = parse_document(uri, xml).map_err(mdv_filter::Error::from)?;
                let known = self.engine.document(uri).is_some();
                // a register racing a delete degrades to an update and
                // vice versa, exactly like the LWW apply path
                let pubs = if known {
                    self.engine.update_document(&doc)?
                } else {
                    self.engine.register_document(&doc)?
                };
                self.mirror_doc_upsert(&doc)?;
                self.raft_publish(pubs, is_leader, net)
            }
            RaftCmd::Delete { uri } => {
                if self.engine.document(uri).is_none() {
                    return Ok(()); // deleting the absent is a no-op
                }
                let pubs = self.engine.delete_document(uri)?;
                self.mirror_doc_delete(uri)?;
                self.raft_publish(pubs, is_leader, net)
            }
            RaftCmd::Subscribe {
                lmr,
                lmr_rule,
                rule_text,
            } => {
                let key = (lmr.clone(), *lmr_rule);
                if self.retired.contains(&key) || self.subscribers.values().any(|v| *v == key) {
                    // duplicate proposal of an existing/retired rule
                    if is_leader {
                        return net.send(
                            &self.name.clone(),
                            lmr,
                            Message::SubscribeAck {
                                lmr_rule: *lmr_rule,
                                error: None,
                            },
                        );
                    }
                    return Ok(());
                }
                match self.engine.register_subscription(rule_text) {
                    Ok((sub, initial)) => {
                        self.subscribers.insert(sub, key);
                        self.mirror_sub_insert(lmr, *lmr_rule, rule_text)?;
                        if is_leader {
                            net.send(
                                &self.name.clone(),
                                lmr,
                                Message::SubscribeAck {
                                    lmr_rule: *lmr_rule,
                                    error: None,
                                },
                            )?;
                        }
                        if !initial.is_empty() {
                            let msg = self.build_publish(*lmr_rule, &initial, &[], &[])?;
                            self.raft_emit(lmr, msg, is_leader, net)?;
                        }
                        Ok(())
                    }
                    // a rejected rule changes no state on any voter; the
                    // leader carries the error back
                    Err(e) => {
                        if is_leader {
                            net.send(
                                &self.name.clone(),
                                lmr,
                                Message::SubscribeAck {
                                    lmr_rule: *lmr_rule,
                                    error: Some(e.to_string()),
                                },
                            )?;
                        }
                        Ok(())
                    }
                }
            }
            RaftCmd::Resubscribe {
                lmr,
                lmr_rule,
                rule_text,
                last_seq,
            } => {
                let key = (lmr.clone(), *lmr_rule);
                let existing = self
                    .subscribers
                    .iter()
                    .find(|(_, v)| **v == key)
                    .map(|(sub, _)| *sub);
                let cur = self.next_pub_seq.get(lmr).copied().unwrap_or(0);
                if existing.is_some() && *last_seq == cur {
                    // already registered and provably caught up
                    if is_leader {
                        return net.send(
                            &self.name.clone(),
                            lmr,
                            Message::SubscribeAck {
                                lmr_rule: *lmr_rule,
                                error: None,
                            },
                        );
                    }
                    return Ok(());
                }
                if let Some(sub) = existing {
                    self.subscribers.remove(&sub);
                    self.engine.unregister_subscription(sub)?;
                }
                if self.retired.remove(&key) {
                    self.mirror_sub_unretire(lmr, *lmr_rule)?;
                }
                match self.engine.register_subscription(rule_text) {
                    Err(e) => {
                        if is_leader {
                            net.send(
                                &self.name.clone(),
                                lmr,
                                Message::SubscribeAck {
                                    lmr_rule: *lmr_rule,
                                    error: Some(e.to_string()),
                                },
                            )?;
                        }
                        Ok(())
                    }
                    Ok((sub, initial)) => {
                        self.subscribers.insert(sub, key);
                        if existing.is_none() {
                            self.mirror_sub_insert(lmr, *lmr_rule, rule_text)?;
                        }
                        if is_leader {
                            net.send(
                                &self.name.clone(),
                                lmr,
                                Message::SubscribeAck {
                                    lmr_rule: *lmr_rule,
                                    error: None,
                                },
                            )?;
                        }
                        let mut msg = self.build_publish(*lmr_rule, &initial, &[], &[])?;
                        // the reconciling snapshot ships (and numbers) even
                        // when empty, exactly like the LWW failover path
                        msg.snapshot = true;
                        self.raft_emit_always(lmr, msg, is_leader, net)
                    }
                }
            }
            RaftCmd::Unsubscribe { lmr, lmr_rule } => {
                let key = (lmr.clone(), *lmr_rule);
                let existing = self
                    .subscribers
                    .iter()
                    .find(|(_, v)| **v == key)
                    .map(|(sub, _)| *sub);
                if let Some(sub) = existing {
                    self.subscribers.remove(&sub);
                    self.engine.unregister_subscription(sub)?;
                }
                if !self.retired.contains(&key) {
                    self.retired.insert(key.clone());
                    self.mirror_sub_retire(lmr, *lmr_rule)?;
                }
                if is_leader {
                    return net.send(
                        &self.name.clone(),
                        lmr,
                        Message::UnsubscribeAck {
                            lmr_rule: *lmr_rule,
                        },
                    );
                }
                Ok(())
            }
            RaftCmd::Placement { table } => {
                let table = crate::placement::PlacementTable::from_wire(table)?;
                self.set_placement(Some(table))
            }
        }
    }

    /// Converts filter publications into publish messages; the leader
    /// ships them, every other voter just advances the counters.
    fn raft_publish(
        &mut self,
        pubs: Vec<mdv_filter::Publication>,
        is_leader: bool,
        net: &Network,
    ) -> Result<()> {
        for p in pubs {
            let Some((lmr, lmr_rule)) = self.subscribers.get(&p.subscription).cloned() else {
                continue;
            };
            let msg = self.build_publish(lmr_rule, &p.added, &p.updated, &p.removed)?;
            if !msg.is_empty() {
                self.raft_emit(&lmr, msg, is_leader, net)?;
            }
        }
        Ok(())
    }

    fn raft_emit(
        &mut self,
        lmr: &str,
        msg: crate::message::PublishMsg,
        is_leader: bool,
        net: &Network,
    ) -> Result<()> {
        self.raft_emit_always(lmr, msg, is_leader, net)
    }

    /// Ships (leader) or silently numbers (follower) one publication.
    fn raft_emit_always(
        &mut self,
        lmr: &str,
        msg: crate::message::PublishMsg,
        is_leader: bool,
        net: &Network,
    ) -> Result<()> {
        if is_leader {
            return self.send_publication(lmr, msg, net);
        }
        let seq = self.next_pub_seq.entry(lmr.to_owned()).or_insert(0);
        *seq += 1;
        let next = *seq;
        self.mirror_pub_seq(lmr, next)
    }

    // ---- snapshots -------------------------------------------------------

    /// Serializes the applied state machine: documents, live
    /// subscriptions, retired-rule tombstones, and per-LMR publication
    /// counters — everything a later apply reads.
    fn raft_build_snapshot(&self) -> String {
        let mut out = String::new();
        let mut docs: Vec<&mdv_rdf::Document> = self.engine.documents().collect();
        docs.sort_by(|a, b| a.uri().cmp(b.uri()));
        for doc in docs {
            out.push_str(&format!(
                "d {}\t{}\n",
                escape(doc.uri()),
                escape(&mdv_rdf::write_document(doc))
            ));
        }
        for (sub, (lmr, rule)) in self.subscribers_sorted() {
            let text = self
                .engine
                .subscription(sub)
                .map(|s| s.rule_text.clone())
                .unwrap_or_default();
            out.push_str(&format!("s {}\t{rule}\t{}\n", escape(&lmr), escape(&text)));
        }
        let mut retired: Vec<&(String, u64)> = self.retired.iter().collect();
        retired.sort();
        for (lmr, rule) in retired {
            out.push_str(&format!("r {}\t{rule}\n", escape(lmr)));
        }
        for (lmr, seq) in self.pub_seqs_sorted() {
            out.push_str(&format!("q {}\t{seq}\n", escape(&lmr)));
        }
        let r = self.raft.as_ref().unwrap();
        out.push_str(&format!("h {}\n", r.cum_hash));
        out
    }

    /// Replaces the whole local state machine with a snapshot: the lagging
    /// follower wipes its engine and mirrors, loads the snapshot state,
    /// and restarts its log empty at the snapshot anchor.
    fn raft_install_state(
        &mut self,
        data: &str,
        last_index: u64,
        last_term: u64,
        net: &Network,
    ) -> Result<()> {
        let _ = net;
        self.with_group(|this| {
            // tear down: subscriptions first so document removal publishes
            // nothing, then documents, counters, and tombstones
            let subs: Vec<_> = this.subscribers.keys().copied().collect();
            for sub in subs {
                this.subscribers.remove(&sub);
                this.engine.unregister_subscription(sub)?;
            }
            let uris: Vec<String> = this
                .engine
                .documents()
                .map(|d| d.uri().to_owned())
                .collect();
            for uri in uris {
                let _ = this.engine.delete_document(&uri)?;
                this.mirror_doc_delete(&uri)?;
            }
            if this.mirror {
                for table in [
                    crate::mdp::T_SUBS,
                    crate::mdp::T_RETIRED,
                    crate::mdp::T_PUBSEQ,
                ] {
                    mirror::delete_where(this.engine.storage_mut(), table, |_| true)?;
                }
            }
            this.retired.clear();
            this.next_pub_seq.clear();

            let mut cum_hash = 0;
            for line in data.lines() {
                let bad = || Error::Topology(format!("corrupt raft snapshot line '{line}'"));
                let (tag, rest) = line.split_once(' ').ok_or_else(bad)?;
                match tag {
                    "d" => {
                        let (uri, xml) = rest.split_once('\t').ok_or_else(bad)?;
                        let (uri, xml) = (unescape(uri), unescape(xml));
                        let doc = parse_document(&uri, &xml).map_err(mdv_filter::Error::from)?;
                        let _ = this.engine.register_document(&doc)?;
                        this.mirror_doc_upsert(&doc)?;
                    }
                    "s" => {
                        let mut f = rest.splitn(3, '\t');
                        let (Some(lmr), Some(rule), Some(text)) = (f.next(), f.next(), f.next())
                        else {
                            return Err(bad());
                        };
                        let rule: u64 = rule.parse().map_err(|_| bad())?;
                        let (lmr, text) = (unescape(lmr), unescape(text));
                        let (sub, _initial) = this.engine.register_subscription(&text)?;
                        this.subscribers.insert(sub, (lmr.clone(), rule));
                        this.mirror_sub_insert(&lmr, rule, &text)?;
                    }
                    "r" => {
                        let (lmr, rule) = rest.split_once('\t').ok_or_else(bad)?;
                        let rule: u64 = rule.parse().map_err(|_| bad())?;
                        let lmr = unescape(lmr);
                        this.retired.insert((lmr.clone(), rule));
                        this.mirror_sub_retire(&lmr, rule)?;
                    }
                    "q" => {
                        let (lmr, seq) = rest.split_once('\t').ok_or_else(bad)?;
                        let seq: u64 = seq.parse().map_err(|_| bad())?;
                        let lmr = unescape(lmr);
                        this.next_pub_seq.insert(lmr.clone(), seq);
                        this.mirror_pub_seq(&lmr, seq)?;
                    }
                    "h" => cum_hash = rest.parse().map_err(|_| bad())?,
                    _ => return Err(bad()),
                }
            }
            {
                let r = this.raft.as_mut().unwrap();
                r.log.clear();
                r.offset = last_index;
                r.offset_term = last_term;
                r.snap_index = last_index;
                r.snap_term = last_term;
                r.snap_data = data.to_owned();
                r.commit = last_index;
                r.applied = last_index;
                r.cum_hash = cum_hash;
                r.applied_chain.push((last_index, cum_hash));
            }
            this.raft_log_delete_where(|_| true)?;
            this.raft_persist_applied()?;
            this.raft_persist_anchor()
        })
    }

    /// Compacts the log once the applied prefix outgrows the threshold:
    /// snapshot the state machine at `applied`, keep the last
    /// [`COMPACT_KEEP`] applied entries for consistency checks, drop the
    /// rest.
    fn raft_maybe_compact(&mut self) -> Result<()> {
        let due = {
            let r = self.raft.as_ref().unwrap();
            r.applied.saturating_sub(r.offset) > r.compact_threshold
        };
        if !due {
            return Ok(());
        }
        let data = self.raft_build_snapshot();
        self.with_group(|this| {
            let new_offset = {
                let r = this.raft.as_mut().unwrap();
                let applied = r.applied;
                r.snap_index = applied;
                r.snap_term = r.term_at(applied).unwrap_or(r.offset_term);
                r.snap_data = data.clone();
                let new_offset = applied.saturating_sub(COMPACT_KEEP).max(r.offset);
                if new_offset > r.offset {
                    r.offset_term = r.term_at(new_offset).unwrap_or(0);
                    r.log.drain(..(new_offset - r.offset) as usize);
                    r.offset = new_offset;
                }
                new_offset
            };
            this.raft_log_delete_where(move |idx| idx <= new_offset)?;
            this.raft_persist_anchor()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_wire_roundtrip() {
        let cmds = [
            RaftCmd::Noop,
            RaftCmd::Register {
                uri: "a.rdf".into(),
                xml: "<x>\ttab</x>".into(),
            },
            RaftCmd::Update {
                uri: "a.rdf".into(),
                xml: "line\nbreak".into(),
            },
            RaftCmd::Delete {
                uri: "a.rdf".into(),
            },
            RaftCmd::Subscribe {
                lmr: "l1".into(),
                lmr_rule: 7,
                rule_text: "search C c register c".into(),
            },
            RaftCmd::Resubscribe {
                lmr: "l1".into(),
                lmr_rule: 7,
                rule_text: "search C c register c".into(),
                last_seq: 12,
            },
            RaftCmd::Unsubscribe {
                lmr: "l1".into(),
                lmr_rule: 7,
            },
            RaftCmd::Placement {
                table: "1\t2\t64\tm1\tm2\tm3".into(),
            },
        ];
        for cmd in cmds {
            assert_eq!(RaftCmd::from_wire(&cmd.to_wire()).unwrap(), cmd);
        }
        assert!(RaftCmd::from_wire("bogus\tx").is_err());
        assert!(RaftCmd::from_wire("sub\tl1\tnotanumber\ttext").is_err());
    }

    #[test]
    fn election_timeouts_are_deterministic_and_spread() {
        let a = election_timeout_ms(1, "m1", 3);
        assert_eq!(a, election_timeout_ms(1, "m1", 3));
        assert!((ELECTION_MIN_MS..ELECTION_MIN_MS + ELECTION_SPREAD_MS).contains(&a));
        // different nodes and terms draw different timeouts (overwhelmingly)
        let draws: BTreeSet<u64> = (0..8)
            .flat_map(|t| ["m1", "m2", "m3"].map(|n| election_timeout_ms(1, n, t)))
            .collect();
        assert!(draws.len() > 8, "timeouts should spread: {draws:?}");
    }

    #[test]
    fn hash_chain_orders_and_separates() {
        let a = chain_hash(chain_hash(0, "x"), "y");
        let b = chain_hash(chain_hash(0, "y"), "x");
        assert_ne!(a, b);
        assert_eq!(a, chain_hash(chain_hash(0, "x"), "y"));
    }
}
