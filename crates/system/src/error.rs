//! Errors of the system tier.

use std::fmt;

pub type Result<T> = std::result::Result<T, Error>;

#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Bubbled up from the filter engine (which wraps store/rdf/rule errors).
    Filter(mdv_filter::Error),
    /// Unknown node name, duplicate registration, or wiring mistakes.
    Topology(String),
    /// A subscription failed at the MDP (carried back in the ack).
    Subscription(String),
    /// Local metadata management errors at an LMR.
    Local(String),
    /// A consensus-mode write could not commit (no leader, or the leader
    /// cannot reach a quorum of voters). The operation may be retried once
    /// connectivity is restored; it has not taken effect.
    Unavailable(String),
    /// A deployment-level configuration request was rejected (e.g. changing
    /// the filter shard count after nodes exist, or combining placement
    /// with an incompatible mode).
    Config(String),
    /// A durability fault from the storage backend (I/O error, torn write,
    /// detected corruption, wedged engine) — the disk misbehaved, not the
    /// caller. Carried as the typed relstore error so callers can
    /// distinguish e.g. `Corrupt` from `Io` (DESIGN.md §12).
    Storage(mdv_relstore::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Filter(e) => write!(f, "filter error: {e}"),
            Error::Topology(msg) => write!(f, "topology error: {msg}"),
            Error::Subscription(msg) => write!(f, "subscription error: {msg}"),
            Error::Local(msg) => write!(f, "local metadata error: {msg}"),
            Error::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Storage(e) => write!(f, "storage fault: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<mdv_filter::Error> for Error {
    fn from(e: mdv_filter::Error) -> Self {
        Error::Filter(e)
    }
}

impl From<mdv_rdf::Error> for Error {
    fn from(e: mdv_rdf::Error) -> Self {
        Error::Filter(mdv_filter::Error::Rdf(e))
    }
}

impl From<mdv_rulelang::Error> for Error {
    fn from(e: mdv_rulelang::Error) -> Self {
        Error::Filter(mdv_filter::Error::Rule(e))
    }
}

impl From<mdv_relstore::Error> for Error {
    fn from(e: mdv_relstore::Error) -> Self {
        use mdv_relstore::Error as E;
        match e {
            // durability faults keep their typed identity; logic errors
            // (schema misuse etc.) stay on the filter path as before
            E::Io(_) | E::Corrupt(_) | E::TornWrite(_) | E::Wedged(_) => Error::Storage(e),
            other => Error::Filter(mdv_filter::Error::Store(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_chain() {
        let e: Error = mdv_rulelang::Error::Unsatisfiable.into();
        assert!(e.to_string().contains("filter error"));
        assert!(Error::Topology("no such node".into())
            .to_string()
            .contains("topology"));
    }
}
