//! Errors of the system tier.

use std::fmt;

pub type Result<T> = std::result::Result<T, Error>;

#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Bubbled up from the filter engine (which wraps store/rdf/rule errors).
    Filter(mdv_filter::Error),
    /// Unknown node name, duplicate registration, or wiring mistakes.
    Topology(String),
    /// A subscription failed at the MDP (carried back in the ack).
    Subscription(String),
    /// Local metadata management errors at an LMR.
    Local(String),
    /// A consensus-mode write could not commit (no leader, or the leader
    /// cannot reach a quorum of voters). The operation may be retried once
    /// connectivity is restored; it has not taken effect.
    Unavailable(String),
    /// A deployment-level configuration request was rejected (e.g. changing
    /// the filter shard count after nodes exist, or combining placement
    /// with an incompatible mode).
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Filter(e) => write!(f, "filter error: {e}"),
            Error::Topology(msg) => write!(f, "topology error: {msg}"),
            Error::Subscription(msg) => write!(f, "subscription error: {msg}"),
            Error::Local(msg) => write!(f, "local metadata error: {msg}"),
            Error::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<mdv_filter::Error> for Error {
    fn from(e: mdv_filter::Error) -> Self {
        Error::Filter(e)
    }
}

impl From<mdv_rdf::Error> for Error {
    fn from(e: mdv_rdf::Error) -> Self {
        Error::Filter(mdv_filter::Error::Rdf(e))
    }
}

impl From<mdv_rulelang::Error> for Error {
    fn from(e: mdv_rulelang::Error) -> Self {
        Error::Filter(mdv_filter::Error::Rule(e))
    }
}

impl From<mdv_relstore::Error> for Error {
    fn from(e: mdv_relstore::Error) -> Self {
        Error::Filter(mdv_filter::Error::Store(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_chain() {
        let e: Error = mdv_rulelang::Error::Unsatisfiable.into();
        assert!(e.to_string().contains("filter error"));
        assert!(Error::Topology("no such node".into())
            .to_string()
            .contains("topology"));
    }
}
