//! The MDV system orchestrator: wires MDPs, LMRs, and the simulated network
//! into the 3-tier architecture of Figure 2, and drives message delivery
//! deterministically.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

use mdv_filter::FilterConfig;
use mdv_rdf::{write_document, Document, RdfSchema, Resource};
use mdv_relstore::{write_database, Database, DurableEngine, StdFs, StorageEngine, Vfs};
use mdv_runtime::channel::Receiver;

use crate::error::{Error, Result};
use crate::lmr::{Lmr, RuleStatus};
use crate::mdp::{doc_uri_of, Mdp};
use crate::mirror;
use crate::placement::{PlacementConfig, PlacementTable, DEFAULT_PLACEMENT_SHARDS};
use crate::raft::{
    RaftCmd, RaftProbe, RaftRole, ReplicationMode, DEFAULT_COMPACT_THRESHOLD, HEARTBEAT_MS,
};
use crate::transport::{Envelope, NetConfig, NetStats, Network};

/// Consecutive quiescence rounds without a single mailbox delivery before
/// the loop declares the remaining work parked and returns (DESIGN.md §9):
/// a permanently partitioned minority can retransmit forever, and without
/// this cap [`MdvSystem::run_to_quiescence`] would spin on it.
const STALL_ROUND_BUDGET: u32 = 256;
/// Per-quiescence-call caps on consensus activity, so a leader that can
/// never reach a quorum (or a candidate that can never win) stops driving
/// the clock instead of heartbeating/campaigning forever.
const PUMP_BUDGET: u32 = 256;
const ELECTION_BUDGET: u32 = 64;

/// A complete MDV deployment: backbone MDPs, mid-tier LMRs, network. The
/// node tier is generic over the storage backend: in-memory [`Database`]
/// nodes by default, or WAL-durable nodes via
/// [`MdvSystem::<DurableEngine>::new_durable`] — a deployment is uniform, so
/// crash/restart semantics hold for every node (DESIGN.md §6).
pub struct MdvSystem<S: StorageEngine = Database> {
    schema: RdfSchema,
    network: Network,
    receivers: HashMap<String, Receiver<Envelope>>,
    mdps: BTreeMap<String, Mdp<S>>,
    lmrs: BTreeMap<String, Lmr<S>>,
    filter_config: FilterConfig,
    /// How the backbone replicates: LWW gossip (default) or single-group
    /// Raft (DESIGN.md §9). Fixed before the first node is added.
    mode: ReplicationMode,
    raft_seed: u64,
    raft_compact_threshold: u64,
    /// System-tier placement (DESIGN.md §11): `None` (the default) keeps
    /// the backbone fully replicated, byte-identical to the pre-placement
    /// system; `Some` partitions the document space over the MDPs with
    /// `factor` replicas per shard. Once enabled it cannot be disabled.
    placement: Option<PlacementConfig>,
    /// Monotone epoch of the installed placement table; bumped on every
    /// topology change (enable, add, fail, heal) in LWW mode.
    placement_epoch: u64,
}

impl MdvSystem {
    pub fn new(schema: RdfSchema) -> Self {
        Self::with_net_config(schema, NetConfig::default())
    }

    pub fn with_net_config(schema: RdfSchema, config: NetConfig) -> Self {
        Self::empty(schema, config)
    }

    /// Adds a Metadata Provider to the backbone. All MDPs are made peers of
    /// each other (flat hierarchy, full replication — paper §2.2).
    pub fn add_mdp(&mut self, name: &str) -> Result<()> {
        let mdp = Mdp::with_filter_config(name, self.schema.clone(), self.filter_config);
        self.install_mdp(name, mdp)
    }

    /// Adds a Local Metadata Repository connected to `mdp`.
    pub fn add_lmr(&mut self, name: &str, mdp: &str) -> Result<()> {
        self.check_lmr_slot(name, mdp)?;
        let lmr = Lmr::new(name, mdp, self.schema.clone());
        self.install_lmr(name, lmr)
    }

    /// Replays exported MDP state (see [`crate::state`]) into a freshly
    /// added MDP node.
    pub fn restore_mdp_state(&mut self, mdp: &str, state: &str) -> Result<(usize, usize)> {
        self.mdps
            .get_mut(mdp)
            .ok_or_else(|| Error::Topology(format!("unknown MDP '{mdp}'")))?
            .import_state(state)
    }

    /// Replays exported LMR state into a freshly added LMR node.
    pub fn restore_lmr_state(&mut self, lmr: &str, state: &str) -> Result<()> {
        self.lmrs
            .get_mut(lmr)
            .ok_or_else(|| Error::Topology(format!("unknown LMR '{lmr}'")))?
            .import_state(state)
    }
}

impl MdvSystem<DurableEngine> {
    /// A deployment whose nodes all run on the durable WAL+snapshot backend.
    pub fn new_durable(schema: RdfSchema) -> Self {
        Self::durable_with_net_config(schema, NetConfig::default())
    }

    pub fn durable_with_net_config(schema: RdfSchema, config: NetConfig) -> Self {
        Self::empty(schema, config)
    }

    /// Adds an MDP persisting to `dir` on the real filesystem.
    pub fn add_mdp_durable(&mut self, name: &str, dir: impl Into<PathBuf>) -> Result<()> {
        self.add_mdp_durable_on(name, dir, StdFs)
    }

    /// Adds an LMR connected to `mdp`, persisting its cache to `dir` on the
    /// real filesystem.
    pub fn add_lmr_durable(
        &mut self,
        name: &str,
        mdp: &str,
        dir: impl Into<PathBuf>,
    ) -> Result<()> {
        self.add_lmr_durable_on(name, mdp, dir, StdFs)
    }
}

impl<V: Vfs + Clone + Send + Sync> MdvSystem<DurableEngine<V>> {
    /// A durable deployment over an explicit [`Vfs`] backend — the storage
    /// torture tests run whole systems on a seeded `FaultVfs` this way
    /// (DESIGN.md §12). `MdvSystem::<DurableEngine<FaultVfs>>::durable_on(..)`.
    pub fn durable_on(schema: RdfSchema, config: NetConfig) -> Self {
        Self::empty(schema, config)
    }

    /// Adds an MDP persisting to `dir` (created fresh; must not hold an
    /// existing store). With `filter_config.shards = N > 1` (see
    /// [`MdvSystem::set_filter_shards`]) the node gets one store — and one
    /// WAL — per filter shard: shard 0 at `dir` itself, shard k at the
    /// `<dir>-s<k>` sibling. All shards persist through clones of `vfs`,
    /// i.e. one failure domain per node.
    pub fn add_mdp_durable_on(
        &mut self,
        name: &str,
        dir: impl Into<PathBuf>,
        vfs: V,
    ) -> Result<()> {
        let dir = dir.into();
        let shards = self.filter_config.shards.max(1);
        let mut stores = Vec::with_capacity(shards);
        for shard in 0..shards {
            stores.push(
                DurableEngine::create_with(vfs.clone(), shard_dir(&dir, shard))
                    .map_err(mirror::store_err)?,
            );
        }
        let mdp = Mdp::with_storages(name, stores, self.schema.clone(), self.filter_config)?;
        self.install_mdp(name, mdp)
    }

    /// Adds an LMR connected to `mdp`, persisting its cache to `dir`
    /// through `vfs`.
    pub fn add_lmr_durable_on(
        &mut self,
        name: &str,
        mdp: &str,
        dir: impl Into<PathBuf>,
        vfs: V,
    ) -> Result<()> {
        self.check_lmr_slot(name, mdp)?;
        let store = DurableEngine::create_with(vfs, dir).map_err(mirror::store_err)?;
        let lmr = Lmr::with_storage(name, mdp, self.schema.clone(), store)?;
        self.install_lmr(name, lmr)
    }

    /// Sets the auto-checkpoint threshold on every durable store of every
    /// node, present and (not) future — the torture harness sets this low
    /// to force compaction windows into its fault schedules.
    pub fn set_checkpoint_every(&mut self, every: Option<u64>) {
        for mdp in self.mdps.values_mut() {
            for store in mdp.engine_mut().shard_storages_mut() {
                store.set_checkpoint_every(every);
            }
        }
        for lmr in self.lmrs.values_mut() {
            lmr.storage_mut().set_checkpoint_every(every);
        }
    }

    /// Crashes an MDP — dropping every byte of in-memory state and any mail
    /// in its inbox — and restarts it from its durable store alone.
    ///
    /// Recovery is checked twice over: *every* filter shard's snapshot+WAL
    /// replay must reproduce that shard's pre-crash database byte-for-byte
    /// (the node is assumed quiescent, i.e. no commit group open), and the
    /// node rebuilt from the `Sys*` mirror tables (shard 0's store) must
    /// carry logically identical base tables in every shard. Because
    /// re-registration reassigns rule and row ids, the rebuilt node starts
    /// *fresh* sibling stores (`<dir>-r1`, `-r2`, …, plus their `-s<k>`
    /// shard siblings) instead of appending to the recovered logs. The
    /// restarted node keeps the shard count it crashed with, and the
    /// rule-text hash re-routes every subscription to the shard that owned
    /// it before the crash. Batch mode resets to immediate filtering, like
    /// a freshly added node.
    pub fn crash_and_restart_mdp(&mut self, name: &str) -> Result<()> {
        let old = self
            .mdps
            .remove(name)
            .ok_or_else(|| Error::Topology(format!("unknown MDP '{name}'")))?;
        let vfs = old.engine().shard(0).storage().vfs().clone();
        let dirs: Vec<PathBuf> = old
            .engine()
            .shard_storages()
            .map(|s| s.dir().to_path_buf())
            .collect();
        // a degraded (wedged) engine's in-memory state may be ahead of its
        // durable state, so the byte-compare oracle only applies to shards
        // whose every acked write actually reached the disk
        let references: Vec<Option<String>> = old
            .engine()
            .shard_storages()
            .map(|s| (!s.is_degraded()).then(|| write_database(s.database())))
            .collect();
        drop(old); // the crash: all volatile state gone
        self.drain_mailbox(name);

        let mut recovered = Vec::with_capacity(dirs.len());
        for (shard, (dir, reference)) in dirs.iter().zip(&references).enumerate() {
            let store = DurableEngine::open_with(vfs.clone(), dir).map_err(mirror::store_err)?;
            if let Some(reference) = reference {
                if write_database(store.database()) != *reference {
                    return Err(Error::Topology(format!(
                        "MDP '{name}': recovered shard {shard} diverges from pre-crash state"
                    )));
                }
            }
            recovered.push(store);
        }

        let base = sibling_dir_on(&vfs, &dirs[0]);
        let mut fresh = Vec::with_capacity(dirs.len());
        for shard in 0..dirs.len() {
            fresh.push(
                DurableEngine::create_with(vfs.clone(), shard_dir(&base, shard))
                    .map_err(mirror::store_err)?,
            );
        }
        let mut mdp = Mdp::with_storages(name, fresh, self.schema.clone(), self.filter_config)?;
        let retry_ms = self.network.config().retry_initial_ms;
        mdp.rebuild_from_tables(recovered[0].database(), retry_ms)?;
        if self.mode == ReplicationMode::Raft {
            mdp.raft_enable(self.raft_seed, self.network.now_ms())?;
            mdp.raft_set_compact_threshold(self.raft_compact_threshold);
            // the persisted term/vote/led-terms/log come back exactly, so a
            // restarted voter cannot double-vote in a term it already voted in
            mdp.raft_restore_from_tables(
                recovered[0].database(),
                self.raft_seed,
                self.network.now_ms(),
            )?;
        }
        for (shard, store) in recovered.iter().enumerate() {
            for table in ["Resources", "Statements"] {
                let want = logical_rows(store.database(), table);
                let got = logical_rows(mdp.engine().shard(shard).storage().database(), table);
                if want != got {
                    return Err(Error::Topology(format!(
                        "MDP '{name}': rebuilt {table} table diverges from recovered shard {shard}"
                    )));
                }
            }
        }
        self.mdps.insert(name.to_owned(), mdp);
        self.rewire_peers();
        Ok(())
    }

    /// Checkpoints an MDP's store: snapshot + WAL truncation.
    pub fn compact_mdp(&mut self, name: &str) -> Result<()> {
        self.mdps
            .get_mut(name)
            .ok_or_else(|| Error::Topology(format!("unknown MDP '{name}'")))?
            .compact()
    }

    /// Checkpoints an LMR's store: snapshot + WAL truncation. Together with
    /// the WAL-logged GC deletions this is the durable tier's compaction
    /// story — a post-GC snapshot simply no longer contains collected rows.
    pub fn compact_lmr(&mut self, name: &str) -> Result<()> {
        self.lmrs
            .get_mut(name)
            .ok_or_else(|| Error::Topology(format!("unknown LMR '{name}'")))?
            .compact()
    }

    /// Crashes an LMR and restarts it from its durable store, which keeps
    /// serving as the node's log: cache rows carry no reassigned ids, so the
    /// reopened engine appends where the crashed one stopped. In-flight
    /// Subscribe/Unsubscribe handshakes are re-armed; everything else
    /// reconverges through the at-least-once publication protocol.
    pub fn crash_and_restart_lmr(&mut self, name: &str) -> Result<()> {
        let old = self
            .lmrs
            .remove(name)
            .ok_or_else(|| Error::Topology(format!("unknown LMR '{name}'")))?;
        let vfs = old.storage().vfs().clone();
        let dir = old.storage().dir().to_path_buf();
        let mdp = old.mdp().to_owned();
        let reference =
            (!old.storage().is_degraded()).then(|| write_database(old.storage().database()));
        drop(old);
        self.drain_mailbox(name);

        let recovered = DurableEngine::open_with(vfs, &dir).map_err(mirror::store_err)?;
        if let Some(reference) = reference {
            if write_database(recovered.database()) != reference {
                return Err(Error::Topology(format!(
                    "LMR '{name}': recovered database diverges from pre-crash state"
                )));
            }
        }
        let mut lmr = Lmr::reopen(name, &mdp, self.schema.clone(), recovered)?;
        lmr.rearm_after_recovery(&self.network)?;
        self.lmrs.insert(name.to_owned(), lmr);
        Ok(())
    }
}

/// Shard `k`'s store directory: shard 0 owns `dir` itself (single-shard
/// layouts are byte-identical to the unsharded on-disk layout), shard
/// k ≥ 1 the `<dir>-s<k>` sibling.
fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    if shard == 0 {
        dir.to_path_buf()
    } else {
        PathBuf::from(format!("{}-s{shard}", dir.as_os_str().to_string_lossy()))
    }
}

/// First nonexistent `<dir>-r<k>` sibling: the home of a rebuilt MDP store.
/// Existence is probed through the node's [`Vfs`], so simulated-disk
/// deployments see the same layout as real ones.
fn sibling_dir_on<V: Vfs>(vfs: &V, dir: &Path) -> PathBuf {
    let base = dir.as_os_str().to_string_lossy().into_owned();
    let mut k = 1u32;
    loop {
        let candidate = PathBuf::from(format!("{base}-r{k}"));
        match vfs.read_dir(&candidate) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return candidate,
            _ => k += 1,
        }
    }
}

/// A table's rows without their engine-assigned row ids, sorted.
fn logical_rows(db: &Database, table: &str) -> Vec<Vec<mdv_relstore::Value>> {
    mirror::rows_sorted(db, table)
}

impl<S: StorageEngine + Send + Sync> MdvSystem<S> {
    fn empty(schema: RdfSchema, config: NetConfig) -> Self {
        MdvSystem {
            schema,
            network: Network::new(config),
            receivers: HashMap::new(),
            mdps: BTreeMap::new(),
            lmrs: BTreeMap::new(),
            filter_config: FilterConfig::default(),
            mode: ReplicationMode::default(),
            raft_seed: 0,
            raft_compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            placement: None,
            placement_epoch: 0,
        }
    }

    /// Switches the backbone into Raft mode (DESIGN.md §9). Must be called
    /// before any node is added: every MDP joins the consensus group as a
    /// voter at install time. `seed` drives the deterministic election
    /// timeouts, so whole fault schedules replay bit-identically.
    pub fn enable_raft(&mut self, seed: u64) -> Result<()> {
        if !self.mdps.is_empty() || !self.lmrs.is_empty() {
            return Err(Error::Topology(
                "enable_raft must be called before nodes are added".into(),
            ));
        }
        self.mode = ReplicationMode::Raft;
        self.raft_seed = seed;
        Ok(())
    }

    pub fn replication_mode(&self) -> ReplicationMode {
        self.mode
    }

    /// Sets how many applied log entries a voter accumulates before it
    /// snapshots and compacts (small values exercise the InstallSnapshot
    /// path in tests). Applies to existing and future MDPs.
    pub fn set_raft_compact_threshold(&mut self, threshold: u64) {
        self.raft_compact_threshold = threshold.max(1);
        for mdp in self.mdps.values_mut() {
            mdp.raft_set_compact_threshold(self.raft_compact_threshold);
        }
    }

    /// The live leader of the highest term, if any voter currently leads.
    pub fn raft_leader(&self) -> Option<String> {
        self.mdps
            .iter()
            .filter(|(n, m)| !self.network.is_down(n) && m.raft_is_leader())
            .max_by_key(|(_, m)| m.raft.as_ref().map_or(0, |r| r.term))
            .map(|(n, _)| n.clone())
    }

    /// Read-only view of one voter's Raft state (`None` in LWW mode).
    pub fn raft_probe(&self, mdp: &str) -> Result<Option<RaftProbe>> {
        Ok(self.mdp(mdp)?.raft_probe())
    }

    fn install_mdp(&mut self, name: &str, mut mdp: Mdp<S>) -> Result<()> {
        if self.lmrs.contains_key(name) {
            return Err(Error::Topology(format!("'{name}' is already an LMR")));
        }
        if self.mode == ReplicationMode::Raft {
            mdp.raft_enable(self.raft_seed, self.network.now_ms())?;
            mdp.raft_set_compact_threshold(self.raft_compact_threshold);
        }
        let rx = self.network.register(name)?;
        self.network.mark_backbone(name);
        self.receivers.insert(name.to_owned(), rx);
        self.mdps.insert(name.to_owned(), mdp);
        self.rewire_peers();
        // joining a partitioned backbone moves the shards the new node now
        // owns onto it (LWW; the Raft table is fixed by the log — §11)
        if self.placement.is_some() && self.mode == ReplicationMode::Lww {
            self.rebalance_placement(true)?;
        }
        Ok(())
    }

    fn rewire_peers(&mut self) {
        let names: Vec<String> = self.mdps.keys().cloned().collect();
        for (mdp_name, mdp) in self.mdps.iter_mut() {
            mdp.set_peers(names.iter().filter(|n| *n != mdp_name).cloned().collect());
        }
    }

    /// A failed MDP accepts no administration requests.
    fn check_mdp_up(&self, mdp: &str) -> Result<()> {
        if self.network.is_down(mdp) {
            return Err(Error::Topology(format!("MDP '{mdp}' is down")));
        }
        Ok(())
    }

    fn check_lmr_slot(&self, name: &str, mdp: &str) -> Result<()> {
        if !self.mdps.contains_key(mdp) {
            return Err(Error::Topology(format!("unknown MDP '{mdp}'")));
        }
        if self.mdps.contains_key(name) {
            return Err(Error::Topology(format!("'{name}' is already an MDP")));
        }
        Ok(())
    }

    fn install_lmr(&mut self, name: &str, mut lmr: Lmr<S>) -> Result<()> {
        if self.placement.is_some() && self.mode == ReplicationMode::Lww {
            lmr.set_placement(true)?;
        }
        let rx = self.network.register(name)?;
        self.receivers.insert(name.to_owned(), rx);
        self.lmrs.insert(name.to_owned(), lmr);
        Ok(())
    }

    fn drain_mailbox(&mut self, name: &str) {
        if let Some(rx) = self.receivers.get(name) {
            while rx.try_recv().is_ok() {}
        }
    }

    /// Sets the worker-thread count MDP filter engines use for batch runs
    /// (DESIGN.md §5). Applies to every existing MDP and to MDPs added
    /// later. Publications are thread-count invariant, so this only affects
    /// wall-clock time — seeded fault scenarios replay identically.
    pub fn set_filter_threads(&mut self, threads: usize) {
        self.filter_config.threads = threads.max(1);
        for mdp in self.mdps.values_mut() {
            mdp.set_filter_threads(threads);
        }
    }

    /// Sets the filter shard count MDPs are built with (DESIGN.md §8).
    /// A node's shard topology — and, on the durable backend, its
    /// one-WAL-per-shard layout — is fixed when the node is built, so this
    /// must be called before the first MDP is added; a mid-run change is
    /// rejected with [`Error::Config`] (it would silently leave the
    /// deployment mixed and make crash-recovered nodes rebuild under a
    /// different topology than they were created with).
    pub fn set_filter_shards(&mut self, shards: usize) -> Result<()> {
        if !self.mdps.is_empty() {
            return Err(Error::Config(format!(
                "filter shard count is fixed once MDPs exist ({} registered); \
                 call set_filter_shards before add_mdp",
                self.mdps.len()
            )));
        }
        self.filter_config.shards = shards.max(1);
        Ok(())
    }

    pub fn schema(&self) -> &RdfSchema {
        &self.schema
    }

    pub fn mdp(&self, name: &str) -> Result<&Mdp<S>> {
        self.mdps
            .get(name)
            .ok_or_else(|| Error::Topology(format!("unknown MDP '{name}'")))
    }

    pub fn lmr(&self, name: &str) -> Result<&Lmr<S>> {
        self.lmrs
            .get(name)
            .ok_or_else(|| Error::Topology(format!("unknown LMR '{name}'")))
    }

    pub fn mdp_names(&self) -> Vec<&str> {
        self.mdps.keys().map(|s| s.as_str()).collect()
    }

    pub fn lmr_names(&self) -> Vec<&str> {
        self.lmrs.keys().map(|s| s.as_str()).collect()
    }

    pub fn network_stats(&self) -> NetStats {
        self.network.stats()
    }

    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Marks an MDP as failed: every message to or from it is black-holed
    /// and the mail already sitting in its inbox is lost, exactly as if the
    /// process had died with the machine. Its durable store (if any) is
    /// untouched — a failed MDP still holds its pre-failure state and serves
    /// it again after [`MdvSystem::heal_mdp`].
    pub fn fail_mdp(&mut self, name: &str) -> Result<()> {
        if !self.mdps.contains_key(name) {
            return Err(Error::Topology(format!("unknown MDP '{name}'")));
        }
        self.network.set_down(name, true);
        self.drain_mailbox(name);
        // under placement the survivors immediately re-cover the failed
        // node's shards (epoch bump + repair); survivors keep any extra
        // copies they hold — pruning waits until the topology heals, so a
        // flapping node never triggers destructive churn (§11). Raft mode
        // keeps its log-fixed table: every voter holds everything anyway.
        if self.placement.is_some() && self.mode == ReplicationMode::Lww {
            self.rebalance_placement(false)?;
        }
        Ok(())
    }

    /// Brings a failed MDP back: parked retransmissions against it resume,
    /// the system runs to quiescence, and the backbone is then repaired by
    /// anti-entropy rounds until every live MDP holds a byte-identical
    /// document set (messages lost while the node was down cannot be
    /// retransmitted out of its wiped mailbox — only the digest exchange
    /// recovers those).
    pub fn heal_mdp(&mut self, name: &str) -> Result<()> {
        if !self.mdps.contains_key(name) {
            return Err(Error::Topology(format!("unknown MDP '{name}'")));
        }
        self.network.set_down(name, false);
        self.run_to_quiescence()?;
        // in Raft mode the leader's log/snapshot shipping is the repair
        // mechanism; anti-entropy digests are LWW machinery
        if self.mode == ReplicationMode::Lww {
            if self.placement.is_some() {
                // fold the healed node back into the table, hand its shards
                // back via repair, then prune the copies nobody owns anymore
                self.rebalance_placement(true)?;
            } else {
                self.repair_backbone(64)?;
            }
        }
        Ok(())
    }

    /// True when the network currently black-holes this node.
    pub fn is_down(&self, name: &str) -> bool {
        self.network.is_down(name)
    }

    /// Configures the MDP an LMR fails over to when its home goes silent
    /// (retransmission-budget exhaustion, DESIGN.md §7).
    pub fn set_backup_mdp(&mut self, lmr: &str, backup: &str) -> Result<()> {
        if self.placement.is_some() {
            return Err(Error::Config(
                "LMR backup failover is not supported with placement: a \
                 failover snapshot would clobber the per-sender alternate \
                 publication streams (§11)"
                    .into(),
            ));
        }
        if !self.mdps.contains_key(backup) {
            return Err(Error::Topology(format!("unknown MDP '{backup}'")));
        }
        self.lmrs
            .get_mut(lmr)
            .ok_or_else(|| Error::Topology(format!("unknown LMR '{lmr}'")))?
            .set_backup(Some(backup))
    }

    /// Partitions the document space over the backbone with `factor` copies
    /// per shard (DESIGN.md §11), replacing full replication. Shorthand for
    /// [`MdvSystem::configure_placement`] with the default shard-space size.
    pub fn set_replication_factor(&mut self, factor: usize) -> Result<()> {
        self.configure_placement(PlacementConfig::new(factor))
    }

    /// Enables placement: document shards (FNV-1a of the subject URI over
    /// `config.shards` buckets) are rendezvous-hashed onto `config.factor`
    /// MDPs each; document operations route to the shard's primary,
    /// replication fans out only to the shard's replica set, and
    /// subscriptions are mirrored on every MDP so rule tables stay fully
    /// replicated. `factor >= mdp count` keeps every node a full replica.
    ///
    /// Raising or lowering the factor later recomputes and re-installs the
    /// table (in Raft mode: proposes it through the replicated log); going
    /// back to placement-off full replication is not supported. The shard
    /// space is fixed at the first call.
    pub fn configure_placement(&mut self, config: PlacementConfig) -> Result<()> {
        if config.factor == 0 {
            return Err(Error::Config(
                "replication factor must be at least 1".into(),
            ));
        }
        if config.shards == 0 {
            return Err(Error::Config(
                "placement shard count must be at least 1".into(),
            ));
        }
        if self.mdps.is_empty() {
            return Err(Error::Config(
                "placement needs at least one MDP; call add_mdp first".into(),
            ));
        }
        if let Some(cur) = self.placement {
            if cur.shards != config.shards {
                return Err(Error::Config(format!(
                    "the placement shard space is fixed once enabled (currently {}, requested {})",
                    cur.shards, config.shards
                )));
            }
        }
        for (name, m) in &self.mdps {
            if m.batch_size().is_some() {
                return Err(Error::Config(format!(
                    "MDP '{name}' uses periodic batch filtering, incompatible with placement"
                )));
            }
        }
        for (name, l) in &self.lmrs {
            if l.backup().is_some() {
                return Err(Error::Config(format!(
                    "LMR '{name}' has backup failover configured, unsupported with placement"
                )));
            }
        }
        if self.mode == ReplicationMode::Raft {
            // the table is itself replicated state: compute it over the full
            // voter set (storage stays fully replicated through the log, so
            // liveness never moves shards) and propose it as a log entry
            let names: Vec<String> = self.mdps.keys().cloned().collect();
            let entry = names
                .iter()
                .find(|n| !self.network.is_down(n))
                .cloned()
                .ok_or_else(|| Error::Unavailable("no live MDP to propose through".into()))?;
            self.placement_epoch += 1;
            let table =
                PlacementTable::compute(&names, config.shards, config.factor, self.placement_epoch);
            self.raft_submit(
                &entry,
                RaftCmd::Placement {
                    table: table.to_wire(),
                },
            )?;
            self.placement = Some(config);
            return Ok(());
        }
        // flip the LMRs first: the subscription mirroring below makes remote
        // MDPs publish to them, which must already ride per-sender
        // alternate streams
        for lmr in self.lmrs.values_mut() {
            lmr.set_placement(true)?;
        }
        self.placement = Some(config);
        self.rebalance_placement(true)
    }

    /// The active placement configuration (`None`: classic full replication).
    pub fn placement_config(&self) -> Option<PlacementConfig> {
        self.placement
    }

    /// The placement table currently installed on the live backbone.
    pub fn placement_table(&self) -> Option<&PlacementTable> {
        self.mdps
            .iter()
            .filter(|(n, _)| !self.network.is_down(n))
            .find_map(|(_, m)| m.placement())
    }

    /// Epoch of the current placement table (0 before placement is enabled).
    pub fn placement_epoch(&self) -> u64 {
        self.placement_epoch
    }

    /// The MDP a resource URI routes to. With placement enabled this is the
    /// primary of the URI's document shard — the node whose registration
    /// path avoids a forwarding hop. Without placement every MDP holds
    /// everything; the same rendezvous hash over the full backbone then
    /// serves as a deterministic load-spreading suggestion.
    pub fn mdp_for_uri(&self, uri: &str) -> Result<&str> {
        if self.mdps.is_empty() {
            return Err(Error::Topology("no MDPs in the system".into()));
        }
        let doc = doc_uri_of(uri);
        let primary = match self.placement_table() {
            Some(table) => table.primary_for(doc).to_owned(),
            None => {
                let names: Vec<&String> = self.mdps.keys().collect();
                let factor = names.len();
                PlacementTable::compute(&names, DEFAULT_PLACEMENT_SHARDS, factor, 0)
                    .primary_for(doc)
                    .to_owned()
            }
        };
        self.mdps
            .get_key_value(&primary)
            .map(|(k, _)| k.as_str())
            .ok_or_else(|| Error::Topology(format!("unknown MDP '{primary}'")))
    }

    fn live_mdps(&self) -> Vec<String> {
        self.mdps
            .keys()
            .filter(|n| !self.network.is_down(n))
            .cloned()
            .collect()
    }

    /// Recomputes the placement table over the live MDP set at a fresh
    /// epoch, installs it, mirrors subscriptions everywhere, and repairs the
    /// backbone so every owner holds its shards. With `prune`, copies on
    /// nodes outside their shard's replica set are then erased — done after
    /// heals and joins, never after a failure (no-prune-on-fail keeps a
    /// flapping node from shedding data the survivors may still need).
    fn rebalance_placement(&mut self, prune: bool) -> Result<()> {
        let Some(config) = self.placement else {
            return Ok(());
        };
        let live = self.live_mdps();
        if live.is_empty() {
            return Ok(());
        }
        self.placement_epoch += 1;
        let table =
            PlacementTable::compute(&live, config.shards, config.factor, self.placement_epoch);
        for name in &live {
            self.mdps
                .get_mut(name)
                .expect("live name from self.mdps")
                .set_placement(Some(table.clone()))?;
        }
        self.sync_remote_subscriptions()?;
        self.run_to_quiescence()?;
        self.repair_backbone(64)?;
        if prune {
            for name in &live {
                self.mdps
                    .get_mut(name)
                    .expect("live name from self.mdps")
                    .prune_unowned()?;
            }
        }
        Ok(())
    }

    /// Mirrors every active subscription rule onto every live MDP
    /// (idempotent). Rule tables stay fully replicated under placement —
    /// only the document space partitions.
    fn sync_remote_subscriptions(&mut self) -> Result<()> {
        let subs: Vec<(String, u64, String)> = self
            .lmrs
            .iter()
            .flat_map(|(name, l)| {
                l.rules()
                    .filter(|(_, r)| matches!(r.status, RuleStatus::Active))
                    .map(|(id, r)| (name.clone(), id, r.text.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for name in self.live_mdps() {
            for (lmr, id, text) in &subs {
                self.mdps
                    .get_mut(&name)
                    .expect("live name from self.mdps")
                    .register_remote_subscription(lmr, *id, text, &self.network)?;
            }
        }
        Ok(())
    }

    /// LWW administration routing: without placement the op lands on the
    /// caller-named entry MDP; with placement it routes to the primary of
    /// the document's shard (the entry MDP still must exist and be up — it
    /// is the node the client talks to).
    fn placement_route(&self, entry: &str, resource_uri: &str) -> Result<String> {
        if !self.mdps.contains_key(entry) {
            return Err(Error::Topology(format!("unknown MDP '{entry}'")));
        }
        self.check_mdp_up(entry)?;
        if self.placement.is_none() {
            return Ok(entry.to_owned());
        }
        let table = self.placement_table().ok_or_else(|| {
            Error::Topology("placement configured but no live MDP holds a table".into())
        })?;
        let primary = table.primary_for(doc_uri_of(resource_uri)).to_owned();
        self.check_mdp_up(&primary)?;
        Ok(primary)
    }

    /// One anti-entropy round: every live MDP sends its document digest to
    /// every other live MDP; receivers pull what they are missing via
    /// RepairRequest/RepairDocs (DESIGN.md §7). Runs to quiescence. The
    /// round itself is best-effort — under an active fault plan its messages
    /// can drop; [`MdvSystem::repair_backbone`] loops rounds to convergence.
    pub fn anti_entropy_round(&mut self) -> Result<()> {
        if self.mode == ReplicationMode::Raft {
            // digest/repair would bypass the replicated log; the leader's
            // AppendEntries/InstallSnapshot pump replaces it wholesale
            return self.run_to_quiescence();
        }
        let alive: Vec<String> = self
            .mdps
            .keys()
            .filter(|n| !self.network.is_down(n))
            .cloned()
            .collect();
        if alive.len() > 1 {
            self.network.note_anti_entropy_round();
            let digests: Vec<(String, Vec<crate::message::DigestEntry>)> = alive
                .iter()
                .map(|n| (n.clone(), self.mdps[n].digest()))
                .collect();
            // under placement the legacy full-replication digest would make
            // a pruned node re-pull documents it no longer owns; the
            // placement digest carries the table epoch and receivers pull
            // only what the table assigns to them (§11)
            let epoch = self.placement.map(|_| self.placement_epoch);
            for (from, entries) in &digests {
                for to in &alive {
                    if to == from {
                        continue;
                    }
                    let msg = match epoch {
                        Some(epoch) => crate::message::Message::PlacementDigest {
                            epoch,
                            entries: entries.clone(),
                        },
                        None => crate::message::Message::ReplicaDigest {
                            entries: entries.clone(),
                        },
                    };
                    self.network.send(from, to, msg)?;
                }
            }
        }
        self.run_to_quiescence()
    }

    /// Runs anti-entropy rounds until every live MDP holds a byte-identical
    /// document set, up to `max_rounds`; returns how many rounds it took.
    pub fn repair_backbone(&mut self, max_rounds: usize) -> Result<usize> {
        if self.mode == ReplicationMode::Raft {
            self.run_to_quiescence()?;
            return Ok(0);
        }
        for round in 0..max_rounds {
            if self.backbone_converged() {
                return Ok(round);
            }
            self.anti_entropy_round()?;
        }
        if self.backbone_converged() {
            Ok(max_rounds)
        } else {
            Err(Error::Topology(format!(
                "backbone still divergent after {max_rounds} anti-entropy rounds"
            )))
        }
    }

    /// True when the live backbone is fully replicated: without placement,
    /// all live MDPs serialize to identical document sets; with placement,
    /// every live owner of a document's shard holds that document at the
    /// globally newest version (non-owners are free to hold stale or no
    /// copies — they are outside the shard's replica set).
    pub fn backbone_converged(&self) -> bool {
        if self.placement.is_some() {
            return self.backbone_converged_placement();
        }
        let mut reference: Option<BTreeMap<String, String>> = None;
        for (name, mdp) in &self.mdps {
            if self.network.is_down(name) {
                continue;
            }
            let docs: BTreeMap<String, String> = mdp
                .engine()
                .documents()
                .map(|d| (d.uri().to_owned(), write_document(d)))
                .collect();
            match &reference {
                None => reference = Some(docs),
                Some(r) => {
                    if *r != docs {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn backbone_converged_placement(&self) -> bool {
        let live: Vec<&String> = self
            .mdps
            .keys()
            .filter(|n| !self.network.is_down(n))
            .collect();
        let Some(table) = live.iter().find_map(|n| self.mdps[n.as_str()].placement()) else {
            return true; // configured but not yet installed anywhere
        };
        // same `(version, deleted, hash)` total order the LWW merge uses
        let digests: BTreeMap<&str, BTreeMap<String, (u64, u8, u64)>> = live
            .iter()
            .map(|n| {
                let keys = self.mdps[n.as_str()]
                    .digest()
                    .into_iter()
                    .map(|e| (e.uri, (e.version, u8::from(e.deleted), e.hash)))
                    .collect();
                (n.as_str(), keys)
            })
            .collect();
        let mut newest: BTreeMap<&str, (u64, u8, u64)> = BTreeMap::new();
        for keys in digests.values() {
            for (uri, key) in keys {
                let entry = newest.entry(uri.as_str()).or_insert(*key);
                if *key > *entry {
                    *entry = *key;
                }
            }
        }
        for (uri, key) in &newest {
            for owner in table.owners(table.shard_of(uri)) {
                if self.network.is_down(owner) {
                    continue;
                }
                if digests
                    .get(owner)
                    .is_none_or(|keys| keys.get(*uri) != Some(key))
                {
                    return false;
                }
            }
        }
        true
    }

    /// Registers a subscription rule at an LMR (which forwards it to its
    /// MDP) and runs the system to quiescence. Fails when the MDP rejected
    /// the rule.
    pub fn subscribe(&mut self, lmr: &str, rule_text: &str) -> Result<u64> {
        let id = {
            let l = self
                .lmrs
                .get_mut(lmr)
                .ok_or_else(|| Error::Topology(format!("unknown LMR '{lmr}'")))?;
            l.subscribe(rule_text, &self.network)?
        };
        self.run_to_quiescence()?;
        match &self.lmr(lmr)?.rule(id).expect("rule just created").status {
            RuleStatus::Active => {
                // rule tables stay fully replicated under placement: mirror
                // the accepted rule on every other live MDP so each shard
                // primary publishes its own matches to the LMR (§11)
                if self.placement.is_some() && self.mode == ReplicationMode::Lww {
                    self.sync_remote_subscriptions()?;
                    self.run_to_quiescence()?;
                }
                Ok(id)
            }
            RuleStatus::Failed(e) => Err(Error::Subscription(e.clone())),
            RuleStatus::Pending => Err(Error::Subscription(
                "subscription still pending after quiescence".into(),
            )),
        }
    }

    /// Retracts a subscription.
    pub fn unsubscribe(&mut self, lmr: &str, rule: u64) -> Result<()> {
        {
            let l = self
                .lmrs
                .get_mut(lmr)
                .ok_or_else(|| Error::Topology(format!("unknown LMR '{lmr}'")))?;
            l.unsubscribe(rule, &self.network)?;
        }
        // retract the mirror copies; the home MDP also hears the regular
        // Unsubscribe message, which lands idempotently after this
        if self.placement.is_some() && self.mode == ReplicationMode::Lww {
            let live: Vec<String> = self.live_mdps();
            for name in live {
                self.mdps
                    .get_mut(&name)
                    .expect("live name from self.mdps")
                    .remove_remote_subscription(lmr, rule)?;
            }
        }
        self.run_to_quiescence()
    }

    /// Registers a document at an MDP (metadata administration, §2.2); the
    /// MDP filters, publishes, and replicates across the backbone.
    pub fn register_document(&mut self, mdp: &str, doc: &Document) -> Result<()> {
        if self.mode == ReplicationMode::Raft {
            self.check_raft_entry(mdp)?;
            return self.raft_submit(
                mdp,
                RaftCmd::Register {
                    uri: doc.uri().to_owned(),
                    xml: write_document(doc),
                },
            );
        }
        {
            let target = self.placement_route(mdp, doc.uri())?;
            let m = self
                .mdps
                .get_mut(&target)
                .ok_or_else(|| Error::Topology(format!("unknown MDP '{target}'")))?;
            m.register_document(doc, &self.network, true)?;
        }
        self.run_to_quiescence()
    }

    /// Re-registers a modified document.
    pub fn update_document(&mut self, mdp: &str, doc: &Document) -> Result<()> {
        if self.mode == ReplicationMode::Raft {
            self.check_raft_entry(mdp)?;
            return self.raft_submit(
                mdp,
                RaftCmd::Update {
                    uri: doc.uri().to_owned(),
                    xml: write_document(doc),
                },
            );
        }
        {
            let target = self.placement_route(mdp, doc.uri())?;
            let m = self
                .mdps
                .get_mut(&target)
                .ok_or_else(|| Error::Topology(format!("unknown MDP '{target}'")))?;
            m.update_document(doc, &self.network, true)?;
        }
        self.run_to_quiescence()
    }

    /// Deletes a document everywhere.
    pub fn delete_document(&mut self, mdp: &str, uri: &str) -> Result<()> {
        if self.mode == ReplicationMode::Raft {
            self.check_raft_entry(mdp)?;
            return self.raft_submit(
                mdp,
                RaftCmd::Delete {
                    uri: uri.to_owned(),
                },
            );
        }
        {
            let target = self.placement_route(mdp, uri)?;
            let m = self
                .mdps
                .get_mut(&target)
                .ok_or_else(|| Error::Topology(format!("unknown MDP '{target}'")))?;
            m.delete_document(uri, &self.network, true)?;
        }
        self.run_to_quiescence()
    }

    /// Raft-mode administration entry check: the named MDP must exist and
    /// be up (it is the administration endpoint the client talks to; the
    /// write itself is forwarded to the leader).
    fn check_raft_entry(&self, mdp: &str) -> Result<()> {
        if !self.mdps.contains_key(mdp) {
            return Err(Error::Topology(format!("unknown MDP '{mdp}'")));
        }
        self.check_mdp_up(mdp)
    }

    /// Proposes one command through the replicated log: settle elections,
    /// forward the command from the entry MDP to the current leader, and
    /// drive the system until the entry commits (or provably cannot). An
    /// `Unavailable` error means the write has *not* taken effect and may be
    /// retried after connectivity returns.
    fn raft_submit(&mut self, entry: &str, cmd: RaftCmd) -> Result<()> {
        self.run_to_quiescence()?;
        let leader = self.raft_leader().ok_or_else(|| {
            Error::Unavailable("no raft leader (quorum unreachable or election pending)".into())
        })?;
        // the administration request travels through its entry MDP: a
        // partitioned entry cannot forward to the leader, so the client
        // sees unavailability rather than a silently rerouted write
        if entry != leader && self.network.link_blocked_until(entry, &leader).is_some() {
            return Err(Error::Unavailable(format!(
                "entry MDP '{entry}' cannot reach the leader '{leader}'"
            )));
        }
        let (index, term) = self
            .mdps
            .get_mut(&leader)
            .expect("leader exists")
            .raft_propose(cmd, &self.network)?;
        self.run_to_quiescence()?;
        let committed = self.mdps.iter().any(|(name, m)| {
            !self.network.is_down(name)
                && m.raft
                    .as_ref()
                    .is_some_and(|r| r.commit >= index && r.term_at(index) == Some(term))
        });
        if committed {
            Ok(())
        } else {
            Err(Error::Unavailable(format!(
                "write at log index {index} (term {term}) did not reach a quorum"
            )))
        }
    }

    /// Switches an MDP between immediate filtering (the default) and
    /// periodic batch filtering (paper §4): with `Some(n)`, registrations
    /// queue and the filter runs once every `n` documents or on
    /// [`MdvSystem::flush`].
    pub fn set_batch_size(&mut self, mdp: &str, batch_size: Option<usize>) -> Result<()> {
        if self.mode == ReplicationMode::Raft && batch_size.is_some() {
            return Err(Error::Topology(
                "periodic batch filtering bypasses the replicated log; unavailable in Raft mode"
                    .into(),
            ));
        }
        if self.placement.is_some() && batch_size.is_some() {
            return Err(Error::Config(
                "periodic batch filtering is incompatible with placement: a \
                 queued batch would flush after a rebalance moved its shard \
                 (§11)"
                    .into(),
            ));
        }
        self.mdps
            .get_mut(mdp)
            .ok_or_else(|| Error::Topology(format!("unknown MDP '{mdp}'")))?
            .set_batch_size(batch_size);
        Ok(())
    }

    /// Filters and publishes an MDP's pending document batch.
    pub fn flush(&mut self, mdp: &str) -> Result<()> {
        {
            self.check_mdp_up(mdp)?;
            let m = self
                .mdps
                .get_mut(mdp)
                .ok_or_else(|| Error::Topology(format!("unknown MDP '{mdp}'")))?;
            m.flush(&self.network)?;
        }
        self.run_to_quiescence()
    }

    /// Runs an LMR's reference-counting garbage collector; returns how many
    /// resources it evicted.
    pub fn collect_garbage_at(&mut self, lmr: &str) -> Result<usize> {
        self.lmrs
            .get_mut(lmr)
            .ok_or_else(|| Error::Topology(format!("unknown LMR '{lmr}'")))?
            .collect_garbage()
    }

    /// Registers metadata that stays local to one LMR.
    pub fn register_local_metadata(&mut self, lmr: &str, doc: &Document) -> Result<()> {
        let l = self
            .lmrs
            .get_mut(lmr)
            .ok_or_else(|| Error::Topology(format!("unknown LMR '{lmr}'")))?;
        l.register_local_metadata(doc)
    }

    /// Evaluates a query at an LMR against its local cache.
    pub fn query(&self, lmr: &str, query_text: &str) -> Result<Vec<Resource>> {
        self.lmr(lmr)?.query(query_text)
    }

    /// Delivers queued messages until no node has pending mail *and* no
    /// protocol message is awaiting an ack. Nodes are drained in name order
    /// and each mailbox batch is processed in delivery-time order, so runs
    /// are deterministic (and injected jitter actually reorders handling).
    ///
    /// When every mailbox is empty but unacked protocol messages remain
    /// (their originals were dropped by the fault plan), the loop fires due
    /// retransmissions — advancing the logical clock to the next retry
    /// deadline when needed — until the at-least-once handshakes complete.
    /// With an inert fault plan nothing is ever unacked at drain time, so
    /// no retransmission fires and the schedule matches the fault-free
    /// transport exactly.
    pub fn run_to_quiescence(&mut self) -> Result<()> {
        let mode = self.mode;
        let MdvSystem {
            network,
            receivers,
            mdps,
            lmrs,
            ..
        } = self;
        let mut names: Vec<String> = receivers.keys().cloned().collect();
        names.sort();
        // Per-call budgets: a partitioned minority keeps retransmitting (and,
        // in Raft mode, a minority leader keeps heartbeating) forever, so
        // rounds that only resend — never deliver — are capped. With the
        // inert fault plan nothing is ever unacked at drain time and these
        // counters stay untouched, keeping the fault-free schedule
        // byte-identical.
        let mut election_budget = ELECTION_BUDGET;
        let mut pump_budget = PUMP_BUDGET;
        let mut stall_rounds: u32 = 0;
        loop {
            let mut progressed = false;
            for name in &names {
                if network.is_down(name) {
                    continue; // a failed node executes nothing
                }
                let rx = &receivers[name];
                let mut batch = Vec::new();
                while let Ok(env) = rx.try_recv() {
                    batch.push(env);
                }
                // stable: equal delivery times keep their send order, which
                // is the pre-fault-plan behaviour
                batch.sort_by_key(|env| env.deliver_at_ms);
                for env in batch {
                    network.advance_clock(env.deliver_at_ms);
                    // a name can linger in `receivers` after its node is gone
                    // (a crash_and_restart that failed its recovery oracle
                    // removes the handler but keeps the mailbox). Drained mail
                    // for such a ghost is discarded and does NOT count as
                    // progress — otherwise a peer retransmitting to the dead
                    // node would reset the stall budget forever.
                    if let Some(mdp) = mdps.get_mut(name) {
                        progressed = true;
                        mdp.handle(env, network)?;
                    } else if let Some(lmr) = lmrs.get_mut(name) {
                        progressed = true;
                        lmr.handle(env, network)?;
                    }
                }
            }
            if progressed {
                stall_rounds = 0;
                continue;
            }
            let mut resent = false;
            for (name, mdp) in mdps.iter_mut() {
                if network.is_down(name) {
                    continue;
                }
                resent |= mdp.retransmit_due(network)?;
            }
            for lmr in lmrs.values_mut() {
                resent |= lmr.retransmit_due(network)?;
            }
            let mut raft_wake = None;
            if mode == ReplicationMode::Raft {
                let (acted, wake) =
                    Self::raft_pump(network, mdps, lmrs, &mut election_budget, &mut pump_budget)?;
                resent |= acted;
                raft_wake = wake;
            }
            if resent {
                stall_rounds += 1;
                if stall_rounds > STALL_ROUND_BUDGET {
                    // every resend is being eaten by a (permanent) partition;
                    // declare quiescence — the unacked entries stay queued
                    // and go out again after the next heal
                    return Ok(());
                }
                continue;
            }
            let next_retry = mdps
                .iter()
                .filter(|(name, _)| !network.is_down(name))
                .filter_map(|(_, m)| m.next_retry_at(network))
                .chain(lmrs.values().filter_map(|l| l.next_retry_at(network)))
                .chain(raft_wake)
                .min();
            match next_retry {
                // nothing in flight, nothing unacked (entries parked against
                // a down peer don't count — they cannot progress until a
                // heal): quiescent
                None => return Ok(()),
                // jump the logical clock to the next retry deadline
                Some(at) => {
                    stall_rounds += 1;
                    if stall_rounds > STALL_ROUND_BUDGET {
                        return Ok(());
                    }
                    network.advance_clock(at);
                }
            }
        }
    }

    /// One idle-time Raft driving step: leader heartbeats/log shipping to
    /// lagging reachable peers, elections on expired deadlines (gated on a
    /// reachable quorum so hopeless candidacies don't churn terms), and LMR
    /// re-homing to the current leader. Returns `(acted, wake_at)`:
    /// `acted` when any message was sent or state stepped, else the earliest
    /// logical-clock deadline that would unblock more work.
    fn raft_pump(
        network: &Network,
        mdps: &mut BTreeMap<String, Mdp<S>>,
        lmrs: &mut BTreeMap<String, Lmr<S>>,
        election_budget: &mut u32,
        pump_budget: &mut u32,
    ) -> Result<(bool, Option<u64>)> {
        let now = network.now_ms();
        let majority = mdps.len() / 2 + 1;
        let open = |a: &str, b: &str| network.link_blocked_until(a, b).is_none();

        struct View {
            term: u64,
            role: RaftRole,
            last_index: u64,
            commit: u64,
            heartbeat_due_ms: u64,
            election_deadline_ms: u64,
            down: bool,
        }
        let views: BTreeMap<String, View> = mdps
            .iter()
            .filter_map(|(name, m)| {
                m.raft.as_ref().map(|r| {
                    (
                        name.clone(),
                        View {
                            term: r.term,
                            role: r.role,
                            last_index: r.last_index(),
                            commit: r.commit,
                            heartbeat_due_ms: r.heartbeat_due_ms,
                            election_deadline_ms: r.election_deadline_ms,
                            down: network.is_down(name),
                        },
                    )
                })
            })
            .collect();

        let mut acted = false;
        let mut wake: Option<u64> = None;
        let bump = |w: &mut Option<u64>, at: u64| {
            *w = Some(w.map_or(at, |cur| cur.min(at)));
        };

        // 1. leader pump: ship heartbeats / missing entries / commit index
        //    to reachable peers that still lag
        for (name, v) in &views {
            if v.down || v.role != RaftRole::Leader {
                continue;
            }
            let uncommitted = v.commit < v.last_index;
            let lagging: Vec<String> = views
                .iter()
                .filter(|(peer, pv)| {
                    *peer != name
                        && !pv.down
                        && open(name, peer)
                        && (uncommitted
                            || pv.term != v.term
                            || pv.last_index != v.last_index
                            || pv.commit != v.commit)
                })
                .map(|(peer, _)| peer.clone())
                .collect();
            if lagging.is_empty() {
                // peers that lag behind a finite partition window will become
                // reachable later: wake when the earliest window lifts
                for (peer, pv) in &views {
                    if peer == name || pv.down {
                        continue;
                    }
                    let lags = uncommitted
                        || pv.term != v.term
                        || pv.last_index != v.last_index
                        || pv.commit != v.commit;
                    if let (true, Some(until)) = (lags, network.link_blocked_until(name, peer)) {
                        if until != u64::MAX {
                            bump(&mut wake, until);
                        }
                    }
                }
                continue;
            }
            if *pump_budget == 0 {
                continue; // minority leader spinning against a wall: give up
            }
            if now < v.heartbeat_due_ms {
                bump(&mut wake, v.heartbeat_due_ms);
                continue;
            }
            *pump_budget -= 1;
            let mdp = mdps.get_mut(name).expect("view key");
            for peer in &lagging {
                mdp.raft_send_append(peer, network)?;
            }
            if let Some(r) = mdp.raft.as_mut() {
                r.heartbeat_due_ms = now + HEARTBEAT_MS;
            }
            acted = true;
        }

        // 2. elections: a live non-leader whose deadline passed starts one,
        //    but only if no live leader of an adequate term can reach it and
        //    a quorum is reachable from it (hopeless candidacies would churn
        //    terms without ever winning)
        if !acted {
            for (name, v) in &views {
                if v.down || v.role == RaftRole::Leader || *election_budget == 0 {
                    continue;
                }
                let led = views.iter().any(|(peer, pv)| {
                    peer != name
                        && !pv.down
                        && pv.role == RaftRole::Leader
                        && pv.term >= v.term
                        && open(peer, name)
                });
                if led {
                    continue;
                }
                let reachable = 1 + views
                    .iter()
                    .filter(|(peer, pv)| {
                        *peer != name && !pv.down && open(name, peer) && open(peer, name)
                    })
                    .count();
                if reachable < majority {
                    // a finite partition window may restore quorum later
                    let lifts: Vec<u64> = views
                        .keys()
                        .filter(|peer| *peer != name)
                        .filter_map(|peer| {
                            match (
                                network.link_blocked_until(name, peer),
                                network.link_blocked_until(peer, name),
                            ) {
                                (None, None) => None,
                                (a, b) => {
                                    let until = a.unwrap_or(0).max(b.unwrap_or(0));
                                    (until != u64::MAX).then_some(until)
                                }
                            }
                        })
                        .collect();
                    if let Some(&at) = lifts.iter().min() {
                        bump(&mut wake, at);
                    }
                    continue;
                }
                if now < v.election_deadline_ms {
                    bump(&mut wake, v.election_deadline_ms);
                    continue;
                }
                *election_budget -= 1;
                mdps.get_mut(name)
                    .expect("view key")
                    .raft_start_election(network)?;
                acted = true;
                break; // one candidacy per round keeps elections serial
            }
        }

        // 3. LMR homing: with a unique live leader settled, re-home every
        //    reachable LMR whose configured MDP isn't it
        if !acted {
            let leaders: Vec<(&String, u64)> = views
                .iter()
                .filter(|(_, v)| !v.down && v.role == RaftRole::Leader)
                .map(|(name, v)| (name, v.term))
                .collect();
            let max_term = leaders.iter().map(|(_, t)| *t).max();
            let at_max: Vec<&String> = leaders
                .iter()
                .filter(|(_, t)| Some(*t) == max_term)
                .map(|(n, _)| *n)
                .collect();
            if let [leader] = at_max[..] {
                let leader = leader.clone();
                for (name, lmr) in lmrs.iter_mut() {
                    if network.is_down(name)
                        || lmr.mdp() == leader
                        || lmr.failing_over()
                        || !open(name, &leader)
                        || !open(&leader, name)
                    {
                        continue;
                    }
                    lmr.rehome_to(&leader, network)?;
                    acted = true;
                }
            }
        }

        Ok((acted, wake))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::{Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn doc(i: usize, host: &str, memory: i64) -> Document {
        let uri = format!("doc{i}.rdf");
        Document::new(uri.clone())
            .with_resource(
                Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                    .with("serverHost", Term::literal(host))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new(&uri, "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                    .with("memory", Term::literal(memory.to_string()))
                    .with("cpu", Term::literal("600")),
            )
    }

    fn two_tier() -> MdvSystem {
        let mut sys = MdvSystem::new(schema());
        sys.add_mdp("mdp1").unwrap();
        sys.add_lmr("lmr1", "mdp1").unwrap();
        sys
    }

    const RULE: &str = "search CycleProvider c register c where c.serverInformation.memory > 64";

    #[test]
    fn end_to_end_subscribe_register_query() {
        let mut sys = two_tier();
        sys.subscribe("lmr1", RULE).unwrap();
        sys.register_document("mdp1", &doc(1, "a.uni-passau.de", 128))
            .unwrap();
        sys.register_document("mdp1", &doc(2, "b.org", 32)).unwrap();
        // the matching provider and its companion arrived in the cache
        assert!(sys.lmr("lmr1").unwrap().is_cached("doc1.rdf#host"));
        assert!(sys.lmr("lmr1").unwrap().is_cached("doc1.rdf#info"));
        assert!(!sys.lmr("lmr1").unwrap().is_cached("doc2.rdf#host"));
        // local query over the cache answers without the MDP
        let hits = sys
            .query("lmr1", "search CycleProvider c register c")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].uri().as_str(), "doc1.rdf#host");
    }

    #[test]
    fn initial_backfill_on_late_subscription() {
        let mut sys = two_tier();
        sys.register_document("mdp1", &doc(1, "a.org", 128))
            .unwrap();
        sys.subscribe("lmr1", RULE).unwrap();
        assert!(sys.lmr("lmr1").unwrap().is_cached("doc1.rdf#host"));
    }

    #[test]
    fn bad_rule_surfaces_error() {
        let mut sys = two_tier();
        let err = sys
            .subscribe("lmr1", "search Unknown u register u")
            .unwrap_err();
        assert!(matches!(err, Error::Subscription(_)));
    }

    #[test]
    fn update_propagates_to_cache() {
        let mut sys = two_tier();
        sys.subscribe("lmr1", RULE).unwrap();
        sys.register_document("mdp1", &doc(1, "a.org", 128))
            .unwrap();
        // update: memory drops to 32 → cache evicts host and companion
        sys.update_document("mdp1", &doc(1, "a.org", 32)).unwrap();
        assert!(!sys.lmr("lmr1").unwrap().is_cached("doc1.rdf#host"));
        assert!(!sys.lmr("lmr1").unwrap().is_cached("doc1.rdf#info"));
        // update back: re-added
        sys.update_document("mdp1", &doc(1, "a.org", 256)).unwrap();
        assert!(sys.lmr("lmr1").unwrap().is_cached("doc1.rdf#host"));
        let cached = sys
            .lmr("lmr1")
            .unwrap()
            .cached_resource("doc1.rdf#info")
            .unwrap()
            .unwrap();
        assert_eq!(cached.property("memory").unwrap().as_int(), Some(256));
    }

    #[test]
    fn still_matching_update_refreshes_companion_copy() {
        let mut sys = two_tier();
        sys.subscribe("lmr1", RULE).unwrap();
        sys.register_document("mdp1", &doc(1, "a.org", 128))
            .unwrap();
        sys.update_document("mdp1", &doc(1, "a.org", 512)).unwrap();
        let cached = sys
            .lmr("lmr1")
            .unwrap()
            .cached_resource("doc1.rdf#info")
            .unwrap()
            .unwrap();
        assert_eq!(cached.property("memory").unwrap().as_int(), Some(512));
    }

    #[test]
    fn delete_document_clears_cache() {
        let mut sys = two_tier();
        sys.subscribe("lmr1", RULE).unwrap();
        sys.register_document("mdp1", &doc(1, "a.org", 128))
            .unwrap();
        sys.delete_document("mdp1", "doc1.rdf").unwrap();
        assert!(sys.lmr("lmr1").unwrap().cached_uris().is_empty());
    }

    #[test]
    fn backbone_replication_reaches_remote_lmr() {
        let mut sys = MdvSystem::new(schema());
        sys.add_mdp("mdp-eu").unwrap();
        sys.add_mdp("mdp-us").unwrap();
        sys.add_lmr("lmr-us", "mdp-us").unwrap();
        sys.subscribe("lmr-us", RULE).unwrap();
        // registered in Europe, delivered in the US through replication
        sys.register_document("mdp-eu", &doc(1, "a.org", 128))
            .unwrap();
        assert!(sys
            .mdp("mdp-us")
            .unwrap()
            .engine()
            .document("doc1.rdf")
            .is_some());
        assert!(sys.lmr("lmr-us").unwrap().is_cached("doc1.rdf#host"));
        // update + delete also replicate
        sys.update_document("mdp-eu", &doc(1, "a.org", 16)).unwrap();
        assert!(!sys.lmr("lmr-us").unwrap().is_cached("doc1.rdf#host"));
        sys.delete_document("mdp-eu", "doc1.rdf").unwrap();
        assert!(sys
            .mdp("mdp-us")
            .unwrap()
            .engine()
            .document("doc1.rdf")
            .is_none());
    }

    #[test]
    fn three_mdps_replicate_exactly_once_each() {
        let mut sys = MdvSystem::new(schema());
        sys.add_mdp("m1").unwrap();
        sys.add_mdp("m2").unwrap();
        sys.add_mdp("m3").unwrap();
        sys.register_document("m1", &doc(1, "a.org", 1)).unwrap();
        // origin sends to 2 peers; peers do not re-replicate
        assert_eq!(sys.network().traffic_by_kind()["replicate-register"], 2);
        for m in ["m1", "m2", "m3"] {
            assert!(sys.mdp(m).unwrap().engine().document("doc1.rdf").is_some());
        }
    }

    #[test]
    fn unsubscribe_evicts_and_stops_flow() {
        let mut sys = two_tier();
        let rule = sys.subscribe("lmr1", RULE).unwrap();
        sys.register_document("mdp1", &doc(1, "a.org", 128))
            .unwrap();
        assert!(sys.lmr("lmr1").unwrap().is_cached("doc1.rdf#host"));
        sys.unsubscribe("lmr1", rule).unwrap();
        assert!(sys.lmr("lmr1").unwrap().cached_uris().is_empty());
        sys.register_document("mdp1", &doc(2, "a.org", 128))
            .unwrap();
        assert!(sys.lmr("lmr1").unwrap().cached_uris().is_empty());
    }

    #[test]
    fn local_metadata_stays_local() {
        let mut sys = MdvSystem::new(schema());
        sys.add_mdp("mdp1").unwrap();
        sys.add_lmr("lmr1", "mdp1").unwrap();
        sys.add_lmr("lmr2", "mdp1").unwrap();
        let local = Document::new("local.rdf").with_resource(
            Resource::new(UriRef::new("local.rdf", "s"), "ServerInformation")
                .with("memory", Term::literal("1"))
                .with("cpu", Term::literal("1")),
        );
        sys.register_local_metadata("lmr1", &local).unwrap();
        assert!(sys.lmr("lmr1").unwrap().is_cached("local.rdf#s"));
        // neither the MDP nor the sibling LMR ever see it
        assert!(sys
            .mdp("mdp1")
            .unwrap()
            .engine()
            .document("local.rdf")
            .is_none());
        assert!(!sys.lmr("lmr2").unwrap().is_cached("local.rdf#s"));
    }

    #[test]
    fn topology_errors() {
        let mut sys = MdvSystem::new(schema());
        sys.add_mdp("m").unwrap();
        assert!(sys.add_mdp("m").is_err());
        assert!(sys.add_lmr("l", "missing").is_err());
        sys.add_lmr("l", "m").unwrap();
        assert!(sys.add_mdp("l").is_err());
        assert!(sys.register_document("nope", &doc(1, "a", 1)).is_err());
        assert!(sys.query("nope", "search C c register c").is_err());
    }

    #[test]
    fn periodic_batch_mode_defers_publication() {
        let mut sys = two_tier();
        sys.subscribe("lmr1", RULE).unwrap();
        sys.set_batch_size("mdp1", Some(3)).unwrap();
        // two registrations queue up without filtering
        sys.register_document("mdp1", &doc(1, "a.org", 128))
            .unwrap();
        sys.register_document("mdp1", &doc(2, "a.org", 128))
            .unwrap();
        assert!(sys.lmr("lmr1").unwrap().cached_uris().is_empty());
        assert_eq!(sys.mdp("mdp1").unwrap().pending_documents(), 2);
        // the third registration reaches the batch size: filter runs
        sys.register_document("mdp1", &doc(3, "a.org", 128))
            .unwrap();
        assert_eq!(sys.mdp("mdp1").unwrap().pending_documents(), 0);
        assert_eq!(sys.lmr("lmr1").unwrap().cached_uris().len(), 6);
        // explicit flush drains a partial batch
        sys.register_document("mdp1", &doc(4, "a.org", 128))
            .unwrap();
        assert!(!sys.lmr("lmr1").unwrap().is_cached("doc4.rdf#host"));
        sys.flush("mdp1").unwrap();
        assert!(sys.lmr("lmr1").unwrap().is_cached("doc4.rdf#host"));
    }

    #[test]
    fn updates_flush_pending_batches_first() {
        let mut sys = two_tier();
        sys.subscribe("lmr1", RULE).unwrap();
        sys.set_batch_size("mdp1", Some(100)).unwrap();
        sys.register_document("mdp1", &doc(1, "a.org", 128))
            .unwrap();
        // updating the still-pending document forces the batch through
        sys.update_document("mdp1", &doc(1, "a.org", 16)).unwrap();
        assert_eq!(sys.mdp("mdp1").unwrap().pending_documents(), 0);
        assert!(!sys.lmr("lmr1").unwrap().is_cached("doc1.rdf#host"));
    }

    #[test]
    fn threaded_filtering_is_transparent_to_the_deployment() {
        let build = |threads: Option<usize>| {
            let mut sys = two_tier();
            if let Some(t) = threads {
                sys.set_filter_threads(t);
            }
            sys.add_mdp("mdp2").unwrap(); // added after the knob: inherits it
            sys.subscribe("lmr1", RULE).unwrap();
            sys.set_batch_size("mdp1", Some(4)).unwrap();
            for i in 0..4 {
                sys.register_document("mdp1", &doc(i, "a.org", 60 + i as i64 * 8))
                    .unwrap();
            }
            sys
        };
        let baseline = build(None);
        for threads in [1usize, 4] {
            let sys = build(Some(threads));
            assert_eq!(
                sys.mdp("mdp1").unwrap().engine().config().threads,
                threads.max(1)
            );
            assert_eq!(
                sys.mdp("mdp2").unwrap().engine().config().threads,
                threads.max(1)
            );
            let mut cached = sys.lmr("lmr1").unwrap().cached_uris();
            let mut expected = baseline.lmr("lmr1").unwrap().cached_uris();
            cached.sort();
            expected.sort();
            assert_eq!(cached, expected, "threads={threads} changed the cache");
            assert_eq!(
                sys.network_stats().messages,
                baseline.network_stats().messages,
                "threads={threads} changed the message schedule"
            );
        }
    }

    #[test]
    fn simulated_latency_accumulates() {
        let config = NetConfig {
            default_latency_ms: 50,
            ..NetConfig::default()
        };
        let mut sys = MdvSystem::with_net_config(schema(), config);
        sys.add_mdp("mdp1").unwrap();
        sys.add_lmr("lmr1", "mdp1").unwrap();
        sys.subscribe("lmr1", RULE).unwrap();
        sys.register_document("mdp1", &doc(1, "a.org", 128))
            .unwrap();
        let stats = sys.network_stats();
        assert!(stats.clock_ms >= 100, "subscribe + publish hops: {stats:?}");
        assert!(stats.messages >= 3);
        assert!(stats.bytes > 0);
    }

    fn raft_three(seed: u64) -> MdvSystem {
        let mut sys = MdvSystem::new(schema());
        sys.enable_raft(seed).unwrap();
        for m in ["m1", "m2", "m3"] {
            sys.add_mdp(m).unwrap();
        }
        sys
    }

    #[test]
    fn raft_end_to_end_subscribe_register_query() {
        let mut sys = raft_three(7);
        sys.add_lmr("l1", "m1").unwrap();
        sys.subscribe("l1", RULE).unwrap();
        sys.register_document("m1", &doc(1, "a.uni-passau.de", 128))
            .unwrap();
        sys.register_document("m2", &doc(2, "b.org", 32)).unwrap();
        assert_eq!(sys.replication_mode(), ReplicationMode::Raft);
        assert!(sys.raft_leader().is_some());
        // every voter applied the same committed log: identical doc sets
        assert!(sys.backbone_converged());
        for m in ["m1", "m2", "m3"] {
            assert!(sys.mdp(m).unwrap().engine().document("doc1.rdf").is_some());
        }
        // the LMR cache flows from the log apply on the leader
        assert!(sys.lmr("l1").unwrap().is_cached("doc1.rdf#host"));
        assert!(sys.lmr("l1").unwrap().is_cached("doc1.rdf#info"));
        assert!(!sys.lmr("l1").unwrap().is_cached("doc2.rdf#host"));
        let hits = sys
            .query("l1", "search CycleProvider c register c")
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn raft_committed_write_survives_leader_failure_with_lmr_rehoming() {
        let mut sys = raft_three(11);
        sys.add_lmr("l1", "m1").unwrap();
        sys.subscribe("l1", RULE).unwrap();
        sys.register_document("m1", &doc(1, "a.org", 128)).unwrap();
        let leader = sys.raft_leader().expect("leader elected");
        assert_eq!(sys.lmr("l1").unwrap().mdp(), leader, "LMR homed to leader");

        // kill the leader: a majority survives, a new leader takes over
        sys.fail_mdp(&leader).unwrap();
        sys.run_to_quiescence().unwrap();
        let new_leader = sys.raft_leader().expect("new leader after failover");
        assert_ne!(new_leader, leader);
        assert_eq!(
            sys.lmr("l1").unwrap().mdp(),
            new_leader,
            "LMR re-homed automatically"
        );
        // the committed write survived and new writes flow
        let entry = if new_leader == "m2" { "m2" } else { "m3" };
        sys.register_document(entry, &doc(2, "b.org", 96)).unwrap();
        assert!(sys.backbone_converged());
        for m in ["m1", "m2", "m3"] {
            if sys.is_down(m) {
                continue;
            }
            assert!(sys.mdp(m).unwrap().engine().document("doc1.rdf").is_some());
            assert!(sys.mdp(m).unwrap().engine().document("doc2.rdf").is_some());
        }
        assert!(sys.lmr("l1").unwrap().is_cached("doc2.rdf#host"));

        // heal: the old leader catches up from the log, no anti-entropy
        sys.heal_mdp(&leader).unwrap();
        assert!(sys.backbone_converged());
        assert_eq!(sys.network_stats().anti_entropy_rounds, 0);
        assert!(sys
            .mdp(&leader)
            .unwrap()
            .engine()
            .document("doc2.rdf")
            .is_some());
    }

    #[test]
    fn raft_writes_unavailable_without_quorum() {
        let mut sys = raft_three(13);
        sys.register_document("m1", &doc(1, "a.org", 128)).unwrap();
        sys.fail_mdp("m2").unwrap();
        sys.fail_mdp("m3").unwrap();
        let err = sys
            .register_document("m1", &doc(2, "b.org", 96))
            .unwrap_err();
        assert!(
            matches!(err, Error::Unavailable(_)),
            "minority write must fail Unavailable, got: {err}"
        );
        // the failed proposal is not half-applied anywhere live
        assert!(sys
            .mdp("m1")
            .unwrap()
            .engine()
            .document("doc2.rdf")
            .is_none());
        // quorum back: writes flow again and everyone converges
        sys.heal_mdp("m2").unwrap();
        sys.heal_mdp("m3").unwrap();
        sys.register_document("m1", &doc(3, "c.org", 80)).unwrap();
        assert!(sys.backbone_converged());
    }

    #[test]
    fn raft_quiescence_terminates_under_permanent_partition() {
        // a permanent 3-way split starting at t = 1_000_000: no quorum is
        // reachable anywhere, so elections must not churn and quiescence
        // must terminate instead of driving the clock forever
        const SPLIT_MS: u64 = 1_000_000;
        let mut config = NetConfig::default();
        for (a, b) in [("m1", "m2"), ("m1", "m3"), ("m2", "m3")] {
            config.faults.partition_both(a, b, SPLIT_MS, u64::MAX);
        }
        let mut sys = MdvSystem::with_net_config(schema(), config);
        sys.enable_raft(17).unwrap();
        for m in ["m1", "m2", "m3"] {
            sys.add_mdp(m).unwrap();
        }
        sys.register_document("m1", &doc(1, "a.org", 128)).unwrap();
        assert!(sys.raft_leader().is_some());

        sys.network().advance_clock(SPLIT_MS);
        let err = sys
            .register_document("m1", &doc(2, "b.org", 96))
            .unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "got: {err}");
        let after = sys.network_stats().clock_ms;
        assert!(
            after < SPLIT_MS + 600_000,
            "quiescence ran the clock to {after}ms under a permanent partition"
        );
        // the pre-split committed write is still served by every node
        for m in ["m1", "m2", "m3"] {
            assert!(sys.mdp(m).unwrap().engine().document("doc1.rdf").is_some());
        }
    }

    #[test]
    fn lww_quiescence_terminates_under_permanent_partition() {
        // the LWW latent gap this PR fixes: a replication to a partitioned
        // (but not down) peer is dropped at send time, so the sender
        // retransmitted forever and run_to_quiescence never returned; the
        // stall budget now caps it
        let mut config = NetConfig::default();
        config.faults.partition_both("m1", "m2", 0, u64::MAX);
        let mut sys = MdvSystem::with_net_config(schema(), config);
        sys.add_mdp("m1").unwrap();
        sys.add_mdp("m2").unwrap();
        sys.register_document("m1", &doc(1, "a.org", 128)).unwrap();
        assert!(
            sys.network_stats().clock_ms < 600_000,
            "quiescence spun on the partitioned replication"
        );
        // the write landed at the reachable node and stays queued for m2
        assert!(sys
            .mdp("m1")
            .unwrap()
            .engine()
            .document("doc1.rdf")
            .is_some());
        assert!(sys.mdp("m1").unwrap().unacked_replications() > 0);
    }

    #[test]
    fn raft_mode_rejects_batch_filtering_and_late_enable() {
        let mut sys = raft_three(19);
        assert!(sys.set_batch_size("m1", Some(4)).is_err());
        assert!(sys.set_batch_size("m1", None).is_ok());
        assert!(sys.enable_raft(1).is_err(), "enable after nodes must fail");
    }
}
