//! Logical MDP state export/import — backbone node recovery.
//!
//! An MDP's durable state is *logical*: the subscriptions it serves and the
//! documents registered with it. Export writes both in replayable form
//! (rule texts plus RDF/XML documents); import replays them through the
//! normal registration paths on a fresh node, rebuilding every filter table,
//! the dependency graph, and all materializations. Publications are
//! suppressed during import: subscribers already hold their caches.
//!
//! Format:
//!
//! ```text
//! #mdv-mdp-state v1
//! pubseq <lmr>\t<next publication sequence>
//! docver <uri>\t<version>\t<deleted 0|1>
//! replseq <peer>\t<next replication sequence>
//! replfloor <peer>\t<next expected replication sequence>
//! placement <escaped placement table wire form>
//! subscription <lmr>\t<lmr_rule>\t<escaped rule text>
//! document <uri>
//! <RDF/XML lines …>
//! .
//! ```
//!
//! The `pubseq` records carry the at-least-once publication counters (one
//! per subscriber LMR): a recovered MDP must continue the per-LMR sequence
//! numbering where it left off, otherwise live LMRs would discard its
//! publications as duplicates. The `docver` records carry the per-URI
//! convergence keys of the reliable backbone (including tombstones of
//! deleted documents), and `replseq`/`replfloor` the per-peer replication
//! stream counters, for the same reason. Unacked in-flight messages are
//! *not* part of durable state — recovery assumes a quiescent export.

use mdv_rdf::{parse_document, write_document};

use crate::error::{Error, Result};
use crate::mdp::Mdp;
use crate::message::{escape, unescape};

const HEADER: &str = "#mdv-mdp-state v1";

impl Mdp {
    /// Serializes the node's logical state.
    pub fn export_state(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (lmr, next_seq) in self.pub_seqs_sorted() {
            out.push_str(&format!("pubseq {lmr}\t{next_seq}\n"));
        }
        for (uri, meta) in self.doc_meta_sorted() {
            out.push_str(&format!(
                "docver {uri}\t{}\t{}\n",
                meta.version,
                u8::from(meta.deleted)
            ));
        }
        for (peer, next_seq) in self.repl_seqs_sorted() {
            out.push_str(&format!("replseq {peer}\t{next_seq}\n"));
        }
        for (peer, next_seq) in self.repl_floors_sorted() {
            out.push_str(&format!("replfloor {peer}\t{next_seq}\n"));
        }
        if let Some(table) = self.placement() {
            out.push_str(&format!("placement {}\n", escape(&table.to_wire())));
        }
        for (sub, (lmr, lmr_rule)) in self.subscribers_sorted() {
            let text = self
                .engine()
                .subscription(sub)
                .expect("subscriber entries reference live subscriptions")
                .rule_text
                .clone();
            out.push_str(&format!(
                "subscription {lmr}\t{lmr_rule}\t{}\n",
                escape(&text)
            ));
        }
        let mut doc_uris: Vec<&str> = self.engine().documents().map(|d| d.uri()).collect();
        doc_uris.sort_unstable();
        for uri in doc_uris {
            let doc = self.engine().document(uri).expect("listed document exists");
            out.push_str(&format!("document {uri}\n"));
            out.push_str(&write_document(doc));
            out.push_str(".\n");
        }
        out
    }

    /// Rebuilds a node's state on `self` (which must be freshly created with
    /// the same schema). Returns `(subscriptions, documents)` restored.
    pub fn import_state(&mut self, text: &str) -> Result<(usize, usize)> {
        if self.engine().document_count() > 0 || self.engine().subscriptions().next().is_some() {
            return Err(Error::Topology(
                "import_state requires a freshly created MDP".into(),
            ));
        }
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(Error::Topology("unsupported MDP state header".into()));
        }
        let mut subs = 0;
        let mut docs = 0;
        while let Some(line) = lines.next() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("pubseq ") {
                let (lmr, next_seq) = rest
                    .split_once('\t')
                    .ok_or_else(|| Error::Topology("malformed pubseq record".into()))?;
                let next_seq: u64 = next_seq
                    .parse()
                    .map_err(|_| Error::Topology("malformed pubseq counter".into()))?;
                self.restore_pub_seq(lmr, next_seq)?;
            } else if let Some(rest) = line.strip_prefix("docver ") {
                let mut fields = rest.splitn(3, '\t');
                let (Some(uri), Some(version), Some(deleted)) =
                    (fields.next(), fields.next(), fields.next())
                else {
                    return Err(Error::Topology("malformed docver record".into()));
                };
                let version: u64 = version
                    .parse()
                    .map_err(|_| Error::Topology("malformed docver version".into()))?;
                let deleted = match deleted {
                    "0" => false,
                    "1" => true,
                    _ => return Err(Error::Topology("malformed docver tombstone flag".into())),
                };
                self.restore_doc_meta(uri, version, deleted)?;
            } else if let Some(rest) = line.strip_prefix("replseq ") {
                let (peer, next_seq) = rest
                    .split_once('\t')
                    .ok_or_else(|| Error::Topology("malformed replseq record".into()))?;
                let next_seq: u64 = next_seq
                    .parse()
                    .map_err(|_| Error::Topology("malformed replseq counter".into()))?;
                self.restore_repl_seq(peer, next_seq)?;
            } else if let Some(rest) = line.strip_prefix("replfloor ") {
                let (peer, next_seq) = rest
                    .split_once('\t')
                    .ok_or_else(|| Error::Topology("malformed replfloor record".into()))?;
                let next_seq: u64 = next_seq
                    .parse()
                    .map_err(|_| Error::Topology("malformed replfloor counter".into()))?;
                self.restore_repl_floor(peer, next_seq)?;
            } else if let Some(rest) = line.strip_prefix("placement ") {
                let table = crate::placement::PlacementTable::from_wire(&unescape(rest))?;
                self.set_placement(Some(table))?;
            } else if let Some(rest) = line.strip_prefix("subscription ") {
                let mut fields = rest.splitn(3, '\t');
                let (Some(lmr), Some(rule), Some(rule_text)) =
                    (fields.next(), fields.next(), fields.next())
                else {
                    return Err(Error::Topology("malformed subscription record".into()));
                };
                let lmr_rule: u64 = rule
                    .parse()
                    .map_err(|_| Error::Topology("malformed subscription rule id".into()))?;
                self.restore_subscription(lmr, lmr_rule, &unescape(rule_text))?;
                subs += 1;
            } else if let Some(uri) = line.strip_prefix("document ") {
                let mut xml = String::new();
                loop {
                    match lines.next() {
                        Some(".") => break,
                        Some(l) => {
                            xml.push_str(l);
                            xml.push('\n');
                        }
                        None => {
                            return Err(Error::Topology(format!(
                                "unterminated document '{uri}' in state"
                            )))
                        }
                    }
                }
                let doc = parse_document(uri, &xml).map_err(mdv_filter::Error::from)?;
                self.restore_document(&doc)?;
                docs += 1;
            } else {
                return Err(Error::Topology(format!("unknown state record: {line}")));
            }
        }
        Ok((subs, docs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::transport::{Envelope, NetConfig, Network};
    use mdv_rdf::{Document, RdfSchema, Resource, Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn doc(i: usize, memory: i64) -> Document {
        let uri = format!("doc{i}.rdf");
        Document::new(uri.clone())
            .with_resource(
                Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                    .with("serverHost", Term::literal("a.org"))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new(&uri, "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                    .with("memory", Term::literal(memory.to_string()))
                    .with("cpu", Term::literal("600")),
            )
    }

    fn populated_mdp(net: &Network) -> Mdp {
        let mut mdp = Mdp::new("mdp1", schema());
        mdp.handle(
            Envelope {
                from: "lmr1".into(),
                to: "mdp1".into(),
                message: Message::Subscribe {
                    lmr_rule: 7,
                    rule_text: "search CycleProvider c register c \
                                where c.serverInformation.memory > 64"
                        .into(),
                },
                deliver_at_ms: 0,
            },
            net,
        )
        .unwrap();
        mdp.register_document(&doc(1, 128), net, false).unwrap();
        mdp.register_document(&doc(2, 16), net, false).unwrap();
        mdp
    }

    #[test]
    fn export_import_roundtrip() {
        let net = Network::new(NetConfig::default());
        let _rx = net.register("lmr1").unwrap();
        let mdp = populated_mdp(&net);
        let state = mdp.export_state();

        let mut restored = Mdp::new("mdp1-recovered", schema());
        let (subs, docs) = restored.import_state(&state).unwrap();
        assert_eq!((subs, docs), (1, 2));
        assert!(restored.engine().document("doc1.rdf").is_some());
        assert!(restored.engine().document("doc2.rdf").is_some());
        // the exported state of the restored node matches
        assert_eq!(state, restored.export_state());
        // and the rule base is live again: a new registration publishes
        let before = net.traffic_by_kind().get("publish").copied().unwrap_or(0);
        restored
            .register_document(&doc(3, 256), &net, false)
            .unwrap();
        assert_eq!(net.traffic_by_kind()["publish"], before + 1);
    }

    #[test]
    fn import_suppresses_publications() {
        let net = Network::new(NetConfig::default());
        let _rx = net.register("lmr1").unwrap();
        let state = populated_mdp(&net).export_state();
        let before = net.log().len();
        let mut restored = Mdp::new("mdp2", schema());
        restored.import_state(&state).unwrap();
        assert_eq!(net.log().len(), before, "import sends no messages");
    }

    #[test]
    fn import_requires_fresh_node() {
        let net = Network::new(NetConfig::default());
        let _rx = net.register("lmr1").unwrap();
        let mdp = populated_mdp(&net);
        let state = mdp.export_state();
        let mut not_fresh = populated_mdp(&net);
        assert!(not_fresh.import_state(&state).is_err());
    }

    #[test]
    fn corrupt_state_rejected() {
        let mut mdp = Mdp::new("m", schema());
        assert!(mdp.import_state("garbage").is_err());
        assert!(
            mdp.import_state("#mdv-mdp-state v1\ndocument d.rdf\n<rdf:RDF/>\n")
                .is_err(),
            "unterminated document"
        );
        assert!(mdp.import_state("#mdv-mdp-state v1\nwat\n").is_err());
    }

    #[test]
    fn rule_text_with_tabs_roundtrips() {
        let text = "search CycleProvider c register c\twhere c.serverHost contains 'x'";
        assert_eq!(unescape(&escape(text)), text);
    }
}

// ---------------------------------------------------------------------------
// LMR state
// ---------------------------------------------------------------------------

const LMR_HEADER: &str = "#mdv-lmr-state v1";

impl crate::lmr::Lmr {
    /// Serializes the LMR's durable state: subscription rules, local
    /// documents, rule-match anchors, and a relational snapshot of the
    /// cache. Strong-reference counts are *not* stored — they are derivable
    /// from the cache and the schema and are rebuilt on import.
    pub fn export_state(&self) -> String {
        let mut out = String::from(LMR_HEADER);
        out.push('\n');
        // the next publication sequence expected from the MDP: a recovered
        // LMR must keep the counter, or it would park all further
        // publications behind a gap that never closes
        out.push_str(&format!("pubseq {}\n", self.next_pub_seq));
        for (id, rule) in self.rules() {
            let status = match &rule.status {
                crate::lmr::RuleStatus::Pending => "pending".to_owned(),
                crate::lmr::RuleStatus::Active => "active".to_owned(),
                crate::lmr::RuleStatus::Failed(e) => format!("failed:{}", escape(e)),
            };
            out.push_str(&format!("rule {id}\t{status}\t{}\n", escape(&rule.text)));
        }
        let mut local_uris: Vec<&String> = self.local_docs.keys().collect();
        local_uris.sort();
        for uri in local_uris {
            out.push_str(&format!("local {uri}\n"));
            out.push_str(&write_document(&self.local_docs[uri]));
            out.push_str(".\n");
        }
        for uri in self.cached_uris() {
            for rule in self.tracker.matching_rules(&uri) {
                out.push_str(&format!("match {uri}\t{rule}\n"));
            }
        }
        out.push_str("cache-snapshot\n");
        out.push_str(&mdv_relstore::write_database(&self.cache));
        out
    }

    /// Rebuilds a freshly created LMR from exported state.
    pub fn import_state(&mut self, text: &str) -> Result<()> {
        if !self.cached_uris().is_empty() || self.rules().next().is_some() {
            return Err(Error::Topology("import_state requires a fresh LMR".into()));
        }
        let mut lines = text.lines();
        if lines.next() != Some(LMR_HEADER) {
            return Err(Error::Topology("unsupported LMR state header".into()));
        }
        let mut matches: Vec<(String, u64)> = Vec::new();
        while let Some(line) = lines.next() {
            if line.is_empty() {
                continue;
            }
            if let Some(next_seq) = line.strip_prefix("pubseq ") {
                self.next_pub_seq = next_seq
                    .parse()
                    .map_err(|_| Error::Topology("malformed pubseq counter".into()))?;
            } else if let Some(rest) = line.strip_prefix("rule ") {
                let mut fields = rest.splitn(3, '\t');
                let (Some(id), Some(status), Some(rule_text)) =
                    (fields.next(), fields.next(), fields.next())
                else {
                    return Err(Error::Topology("malformed rule record".into()));
                };
                let id: u64 = id
                    .parse()
                    .map_err(|_| Error::Topology("bad rule id".into()))?;
                let status = if status == "pending" {
                    crate::lmr::RuleStatus::Pending
                } else if status == "active" {
                    crate::lmr::RuleStatus::Active
                } else if let Some(e) = status.strip_prefix("failed:") {
                    crate::lmr::RuleStatus::Failed(unescape(e))
                } else {
                    return Err(Error::Topology("bad rule status".into()));
                };
                self.rules.insert(
                    id,
                    crate::lmr::LmrRule {
                        text: unescape(rule_text),
                        status,
                    },
                );
                self.next_rule = self.next_rule.max(id + 1);
            } else if let Some(uri) = line.strip_prefix("local ") {
                let mut xml = String::new();
                loop {
                    match lines.next() {
                        Some(".") => break,
                        Some(l) => {
                            xml.push_str(l);
                            xml.push('\n');
                        }
                        None => {
                            return Err(Error::Topology(format!(
                                "unterminated local document '{uri}'"
                            )))
                        }
                    }
                }
                let doc = parse_document(uri, &xml).map_err(mdv_filter::Error::from)?;
                self.local_docs.insert(uri.to_owned(), doc);
            } else if let Some(rest) = line.strip_prefix("match ") {
                let (uri, rule) = rest
                    .split_once('\t')
                    .ok_or_else(|| Error::Topology("malformed match record".into()))?;
                let rule: u64 = rule
                    .parse()
                    .map_err(|_| Error::Topology("bad match rule id".into()))?;
                matches.push((uri.to_owned(), rule));
            } else if line == "cache-snapshot" {
                let snapshot: String = lines.map(|l| format!("{l}\n")).collect();
                self.cache =
                    mdv_relstore::read_database(&snapshot).map_err(mdv_filter::Error::from)?;
                break;
            } else {
                return Err(Error::Topology(format!("unknown LMR state record: {line}")));
            }
        }
        // rebuild the tracker from cache contents + schema + match anchors
        self.rebuild_tracker(&matches)?;
        Ok(())
    }
}

#[cfg(test)]
mod lmr_state_tests {
    use crate::lmr::{Lmr, RuleStatus};
    use crate::message::{Message, PublishMsg};
    use crate::transport::{Envelope, NetConfig, Network};
    use mdv_rdf::{Document, RdfSchema, Resource, Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn populated_lmr() -> Lmr {
        let net = Network::new(NetConfig::default());
        let _rx = net.register("mdp1").unwrap();
        let mut l = Lmr::new("lmr1", "mdp1", schema());
        let id = l
            .subscribe("search CycleProvider c register c", &net)
            .unwrap();
        l.handle(
            Envelope {
                from: "mdp1".into(),
                to: "lmr1".into(),
                message: Message::SubscribeAck {
                    lmr_rule: id,
                    error: None,
                },
                deliver_at_ms: 0,
            },
            &net,
        )
        .unwrap();
        let host = Resource::new(UriRef::new("d.rdf", "host"), "CycleProvider")
            .with("serverHost", Term::literal("a.org"))
            .with(
                "serverInformation",
                Term::resource(UriRef::new("d.rdf", "info")),
            );
        let info = Resource::new(UriRef::new("d.rdf", "info"), "ServerInformation")
            .with("memory", Term::literal("92"))
            .with("cpu", Term::literal("600"));
        l.handle(
            Envelope {
                from: "mdp1".into(),
                to: "lmr1".into(),
                message: Message::Publish(PublishMsg {
                    lmr_rule: id,
                    matched: vec![host],
                    companions: vec![info],
                    ..PublishMsg::default()
                }),
                deliver_at_ms: 0,
            },
            &net,
        )
        .unwrap();
        l.register_local_metadata(
            &Document::new("local.rdf").with_resource(
                Resource::new(UriRef::new("local.rdf", "s"), "ServerInformation")
                    .with("memory", Term::literal("1"))
                    .with("cpu", Term::literal("1")),
            ),
        )
        .unwrap();
        l
    }

    #[test]
    fn lmr_state_roundtrips() {
        let l = populated_lmr();
        let state = l.export_state();
        let mut restored = Lmr::new("lmr1", "mdp1", schema());
        restored.import_state(&state).unwrap();
        assert_eq!(l.cached_uris(), restored.cached_uris());
        assert_eq!(restored.rule(0).unwrap().status, RuleStatus::Active);
        // queries work and local metadata is still protected
        assert_eq!(
            restored
                .query("search CycleProvider c register c")
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            restored.collect_garbage().unwrap(),
            0,
            "nothing spuriously collected"
        );
        // match anchors survived: removing the match evicts host + companion
        // but not the local resource
        let net = Network::new(NetConfig::default());
        let _rx = net.register("mdp1").unwrap();
        restored
            .handle(
                Envelope {
                    from: "mdp1".into(),
                    to: "lmr1".into(),
                    message: Message::Publish(PublishMsg {
                        // the restored LMR expects the sequence numbering to
                        // continue where the exported state left off
                        seq: 1,
                        lmr_rule: 0,
                        removed: vec!["d.rdf#host".into()],
                        ..PublishMsg::default()
                    }),
                    deliver_at_ms: 0,
                },
                &net,
            )
            .unwrap();
        assert_eq!(restored.cached_uris(), vec!["local.rdf#s".to_owned()]);
        // and the re-export is a fixpoint
        let l2 = populated_lmr();
        assert_eq!(l2.export_state(), {
            let mut r = Lmr::new("x", "mdp1", schema());
            r.import_state(&l2.export_state()).unwrap();
            r.export_state()
        });
    }

    #[test]
    fn lmr_import_requires_fresh() {
        let l = populated_lmr();
        let mut not_fresh = populated_lmr();
        assert!(not_fresh.import_state(&l.export_state()).is_err());
    }

    #[test]
    fn lmr_corrupt_state_rejected() {
        let mut l = Lmr::new("l", "m", schema());
        assert!(l.import_state("nope").is_err());
        assert!(l.import_state("#mdv-lmr-state v1\nwat\n").is_err());
        assert!(l
            .import_state("#mdv-lmr-state v1\nlocal d.rdf\n<rdf:RDF/>\n")
            .is_err());
    }
}

// ---------------------------------------------------------------------------
// Whole-system persistence
// ---------------------------------------------------------------------------

impl crate::system::MdvSystem {
    /// Saves the deployment to a directory: the schema (textual schema
    /// language), the topology, and per-node state files.
    pub fn save_to_dir(&self, dir: &std::path::Path) -> Result<()> {
        let io = |e: std::io::Error| Error::Topology(format!("save: {e}"));
        std::fs::create_dir_all(dir).map_err(io)?;
        std::fs::write(dir.join("schema.mdv"), mdv_rdf::write_schema(self.schema())).map_err(io)?;
        let mut topology = String::from("#mdv-system v1\n");
        for name in self.mdp_names() {
            topology.push_str(&format!("mdp {name}\n"));
            std::fs::write(
                dir.join(format!("{name}.mdp")),
                self.mdp(name).expect("listed MDP exists").export_state(),
            )
            .map_err(io)?;
        }
        for name in self.lmr_names() {
            let lmr = self.lmr(name).expect("listed LMR exists");
            topology.push_str(&format!("lmr {name} {}\n", lmr.mdp()));
            std::fs::write(dir.join(format!("{name}.lmr")), lmr.export_state()).map_err(io)?;
        }
        std::fs::write(dir.join("topology.mdv"), topology).map_err(io)
    }

    /// Loads a deployment saved with [`save_to_dir`](Self::save_to_dir). The
    /// network
    /// starts fresh (counters at zero); all node state is restored.
    pub fn load_from_dir(dir: &std::path::Path) -> Result<crate::system::MdvSystem> {
        let io = |e: std::io::Error| Error::Topology(format!("load: {e}"));
        let schema_text = std::fs::read_to_string(dir.join("schema.mdv")).map_err(io)?;
        let schema = mdv_rdf::parse_schema(&schema_text).map_err(mdv_filter::Error::from)?;
        let mut sys = crate::system::MdvSystem::new(schema);
        let topology = std::fs::read_to_string(dir.join("topology.mdv")).map_err(io)?;
        let mut lines = topology.lines();
        if lines.next() != Some("#mdv-system v1") {
            return Err(Error::Topology("unsupported topology header".into()));
        }
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("mdp ") {
                sys.add_mdp(name)?;
                let state = std::fs::read_to_string(dir.join(format!("{name}.mdp"))).map_err(io)?;
                sys.restore_mdp_state(name, &state)?;
            } else if let Some(rest) = line.strip_prefix("lmr ") {
                let (name, mdp) = rest
                    .split_once(' ')
                    .ok_or_else(|| Error::Topology("malformed lmr record".into()))?;
                sys.add_lmr(name, mdp)?;
                let state = std::fs::read_to_string(dir.join(format!("{name}.lmr"))).map_err(io)?;
                sys.restore_lmr_state(name, &state)?;
            } else {
                return Err(Error::Topology(format!("unknown topology record: {line}")));
            }
        }
        Ok(sys)
    }
}

#[cfg(test)]
mod system_state_tests {
    use crate::system::MdvSystem;
    use mdv_rdf::{Document, RdfSchema, Resource, Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn doc(i: usize, memory: i64) -> Document {
        let uri = format!("doc{i}.rdf");
        Document::new(uri.clone())
            .with_resource(
                Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                    .with("serverHost", Term::literal("a.org"))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new(&uri, "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                    .with("memory", Term::literal(memory.to_string()))
                    .with("cpu", Term::literal("600")),
            )
    }

    #[test]
    fn whole_system_save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mdv-sys-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut sys = MdvSystem::new(schema());
        sys.add_mdp("mdp-eu").unwrap();
        sys.add_mdp("mdp-us").unwrap();
        sys.add_lmr("lmr1", "mdp-eu").unwrap();
        sys.subscribe(
            "lmr1",
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .unwrap();
        sys.register_document("mdp-eu", &doc(1, 128)).unwrap();
        sys.register_document("mdp-us", &doc(2, 256)).unwrap();
        sys.save_to_dir(&dir).unwrap();

        let mut restored = MdvSystem::load_from_dir(&dir).unwrap();
        assert_eq!(restored.mdp_names(), vec!["mdp-eu", "mdp-us"]);
        assert_eq!(restored.lmr_names(), vec!["lmr1"]);
        assert_eq!(
            sys.lmr("lmr1").unwrap().cached_uris(),
            restored.lmr("lmr1").unwrap().cached_uris()
        );
        // both MDPs hold both documents (replication state survived)
        for m in ["mdp-eu", "mdp-us"] {
            assert!(restored
                .mdp(m)
                .unwrap()
                .engine()
                .document("doc1.rdf")
                .is_some());
            assert!(restored
                .mdp(m)
                .unwrap()
                .engine()
                .document("doc2.rdf")
                .is_some());
        }
        // the restored system keeps working end to end: a new registration
        // replicates and reaches the restored LMR's cache
        restored.register_document("mdp-us", &doc(3, 512)).unwrap();
        assert!(restored.lmr("lmr1").unwrap().is_cached("doc3.rdf#host"));
        // and updates/removals drive the restored cache correctly
        restored.update_document("mdp-eu", &doc(1, 8)).unwrap();
        assert!(!restored.lmr("lmr1").unwrap().is_cached("doc1.rdf#host"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_dir_fails_cleanly() {
        let err = match MdvSystem::load_from_dir(std::path::Path::new("/nonexistent/mdv")) {
            Err(e) => e,
            Ok(_) => panic!("loading a missing directory must fail"),
        };
        assert!(err.to_string().contains("load:"));
    }
}
