//! `mdv-shell` — an interactive shell (and script runner) for an MDV
//! deployment, the kind of operator tool a downstream user would drive the
//! system with.
//!
//! ```text
//! cargo run --bin mdv-shell                 # interactive REPL
//! cargo run --bin mdv-shell script.mdv      # run a script
//! ```
//!
//! Commands (`help` lists them at runtime):
//!
//! ```text
//! schema <file>                  load the schema (textual schema language)
//! mdp <name>                     add a Metadata Provider to the backbone
//! lmr <name> <mdp>               add a Local Metadata Repository
//! register <mdp> <uri> <file>    register an RDF/XML document
//! register <mdp> <uri> <<EOF     … inline document until a line 'EOF'
//! update <mdp> <uri> <file|<<M>  re-register a modified document
//! delete <mdp> <uri>             delete a document
//! subscribe <lmr> <rule …>       register a subscription rule
//! unsubscribe <lmr> <id>         retract a subscription rule
//! query <lmr> <query …>          evaluate a query on the LMR cache
//! cache <lmr>                    list cached resource URIs
//! classes <mdp>                  list schema classes
//! browse <mdp> <class>           list resources of a class at the MDP
//! pin <lmr> <uri>                browse-and-select: cache one resource
//! graph <mdp>                    dependency graph in Graphviz DOT
//! table <mdp> <name>             render a filter table (e.g. AtomicRules)
//! stats                          network statistics
//! quit
//! ```

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

use mdv::filter::{rule_tables, to_dot};
use mdv::prelude::*;
use mdv::rdf::parse_schema;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shell = Shell::default();
    match args.first() {
        Some(path) => {
            let script = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read script '{path}': {e}");
                    std::process::exit(1);
                }
            };
            let mut lines = script
                .lines()
                .map(str::to_owned)
                .collect::<Vec<_>>()
                .into_iter();
            while let Some(line) = lines.next() {
                match shell.exec(&line, &mut lines) {
                    Ok(Some(out)) => print!("{out}"),
                    Ok(None) => return,
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        None => {
            let stdin = io::stdin();
            let mut collected: Vec<String> = Vec::new();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                collected.push(line);
            }
            let mut lines = collected.into_iter();
            print!("mdv-shell — type 'help' for commands\n> ");
            let _ = io::stdout().flush();
            while let Some(line) = lines.next() {
                match shell.exec(&line, &mut lines) {
                    Ok(Some(out)) => print!("{out}> "),
                    Ok(None) => return,
                    Err(e) => print!("error: {e}\n> "),
                }
                let _ = io::stdout().flush();
            }
        }
    }
}

/// The shell state: a system once a schema is loaded.
#[derive(Default)]
struct Shell {
    sys: Option<MdvSystem>,
}

type ShellResult = Result<Option<String>, Box<dyn std::error::Error>>;

impl Shell {
    /// Executes one command line; `lines` supplies the remaining input for
    /// heredoc-style inline documents. Returns `Ok(None)` on `quit`.
    fn exec(&mut self, line: &str, lines: &mut dyn Iterator<Item = String>) -> ShellResult {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(Some(String::new()));
        }
        let mut parts = line.split_whitespace();
        let command = parts.next().expect("non-empty line");
        let rest: Vec<&str> = parts.collect();
        match command {
            "help" => Ok(Some(HELP.to_owned())),
            "quit" | "exit" => Ok(None),
            "schema" => {
                let [path] = rest.as_slice() else {
                    return usage("schema <file>");
                };
                let text = std::fs::read_to_string(path)?;
                let schema = parse_schema(&text)?;
                let classes = schema.class_names().len();
                self.sys = Some(MdvSystem::new(schema));
                Ok(Some(format!("schema loaded: {classes} classes\n")))
            }
            "mdp" => {
                let [name] = rest.as_slice() else {
                    return usage("mdp <name>");
                };
                self.sys()?.add_mdp(name)?;
                Ok(Some(format!("mdp '{name}' added\n")))
            }
            "lmr" => {
                let [name, mdp] = rest.as_slice() else {
                    return usage("lmr <name> <mdp>");
                };
                self.sys()?.add_lmr(name, mdp)?;
                Ok(Some(format!("lmr '{name}' connected to '{mdp}'\n")))
            }
            "register" | "update" => {
                let [mdp, uri, source] = rest.as_slice() else {
                    return usage("register|update <mdp> <uri> <file | <<MARKER>");
                };
                let xml = read_source(source, lines)?;
                let doc = parse_document(uri, &xml)?;
                if command == "register" {
                    self.sys()?.register_document(mdp, &doc)?;
                } else {
                    self.sys()?.update_document(mdp, &doc)?;
                }
                Ok(Some(format!(
                    "{command}ed '{uri}' ({} resources)\n",
                    doc.resources().len()
                )))
            }
            "delete" => {
                let [mdp, uri] = rest.as_slice() else {
                    return usage("delete <mdp> <uri>");
                };
                self.sys()?.delete_document(mdp, uri)?;
                Ok(Some(format!("deleted '{uri}'\n")))
            }
            "subscribe" => {
                let Some((lmr, rule)) = rest.split_first() else {
                    return usage("subscribe <lmr> <rule text>");
                };
                let rule = rule.join(" ");
                let id = self.sys()?.subscribe(lmr, &rule)?;
                Ok(Some(format!("subscription {id} active at '{lmr}'\n")))
            }
            "unsubscribe" => {
                let [lmr, id] = rest.as_slice() else {
                    return usage("unsubscribe <lmr> <id>");
                };
                self.sys()?.unsubscribe(lmr, id.parse()?)?;
                Ok(Some(format!("subscription {id} retracted\n")))
            }
            "query" => {
                let Some((lmr, query)) = rest.split_first() else {
                    return usage("query <lmr> <query text>");
                };
                let query = query.join(" ");
                let hits = self.sys()?.query(lmr, &query)?;
                let mut out = format!("{} result(s)\n", hits.len());
                for r in hits {
                    let _ = write!(out, "{r}");
                }
                Ok(Some(out))
            }
            "cache" => {
                let [lmr] = rest.as_slice() else {
                    return usage("cache <lmr>");
                };
                let uris = self.sys()?.lmr(lmr)?.cached_uris();
                let mut out = format!("{} cached resource(s)\n", uris.len());
                for u in uris {
                    let _ = writeln!(out, "  {u}");
                }
                Ok(Some(out))
            }
            "classes" => {
                let [mdp] = rest.as_slice() else {
                    return usage("classes <mdp>");
                };
                let classes = self.sys()?.browse_classes(mdp)?;
                Ok(Some(format!("{}\n", classes.join("\n"))))
            }
            "browse" => {
                let [mdp, class] = rest.as_slice() else {
                    return usage("browse <mdp> <class>");
                };
                let resources = self.sys()?.browse_resources(mdp, class)?;
                let mut out = format!("{} resource(s) of class {class}\n", resources.len());
                for r in resources {
                    let _ = writeln!(out, "  {}", r.uri());
                }
                Ok(Some(out))
            }
            "pin" => {
                let [lmr, uri] = rest.as_slice() else {
                    return usage("pin <lmr> <uri>");
                };
                let id = self.sys()?.subscribe_to_resource(lmr, uri)?;
                Ok(Some(format!(
                    "pinned '{uri}' at '{lmr}' (subscription {id})\n"
                )))
            }
            "graph" => {
                let [mdp] = rest.as_slice() else {
                    return usage("graph <mdp>");
                };
                let sys = self.sys()?;
                Ok(Some(to_dot(sys.mdp(mdp)?.engine().graph())))
            }
            "table" => {
                let [mdp, name] = rest.as_slice() else {
                    return usage("table <mdp> <name>");
                };
                let sys = self.sys()?;
                Ok(Some(rule_tables::render_table(
                    sys.mdp(mdp)?.engine().db(),
                    name,
                )?))
            }
            "explain" => {
                let Some((mdp, rule)) = rest.split_first() else {
                    return usage("explain <mdp> <rule text>");
                };
                let rule = rule.join(" ");
                let sys = self.sys()?;
                Ok(Some(sys.mdp(mdp)?.engine().explain_rule(&rule)?))
            }
            "save" => {
                let [mdp, path] = rest.as_slice() else {
                    return usage("save <mdp> <file>");
                };
                let sys = self.sys()?;
                let state = sys.mdp(mdp)?.export_state();
                std::fs::write(path, &state)?;
                Ok(Some(format!(
                    "saved state of '{mdp}' ({} bytes)\n",
                    state.len()
                )))
            }
            "restore" => {
                let [mdp, path] = rest.as_slice() else {
                    return usage("restore <mdp> <file>");
                };
                let state = std::fs::read_to_string(path)?;
                let sys = self.sys.as_mut().ok_or("no schema loaded")?;
                // the MDP must exist and be fresh (added via 'mdp <name>')
                let (subs, docs) = sys.restore_mdp_state(mdp, &state)?;
                Ok(Some(format!(
                    "restored '{mdp}': {subs} subscriptions, {docs} documents\n"
                )))
            }
            "stats" => {
                let stats = self.sys()?.network_stats();
                Ok(Some(format!(
                    "messages: {}, bytes: {}, simulated latency: {} ms\n",
                    stats.messages, stats.bytes, stats.clock_ms
                )))
            }
            other => Err(format!("unknown command '{other}' (try 'help')").into()),
        }
    }

    fn sys(&mut self) -> Result<&mut MdvSystem, Box<dyn std::error::Error>> {
        self.sys
            .as_mut()
            .ok_or_else(|| "no schema loaded (use 'schema <file>')".into())
    }
}

/// Reads a document source: a file path, or `<<MARKER` heredoc from the
/// remaining input lines.
fn read_source(
    source: &str,
    lines: &mut dyn Iterator<Item = String>,
) -> Result<String, Box<dyn std::error::Error>> {
    if let Some(marker) = source.strip_prefix("<<") {
        let mut xml = String::new();
        for line in lines {
            if line.trim() == marker {
                return Ok(xml);
            }
            xml.push_str(&line);
            xml.push('\n');
        }
        Err(format!("unterminated heredoc (missing '{marker}')").into())
    } else {
        Ok(std::fs::read_to_string(source)?)
    }
}

fn usage(text: &str) -> ShellResult {
    Err(format!("usage: {text}").into())
}

const HELP: &str = "\
commands:
  schema <file>                  load the schema (textual schema language)
  mdp <name>                     add a Metadata Provider to the backbone
  lmr <name> <mdp>               add a Local Metadata Repository
  register <mdp> <uri> <file>    register an RDF/XML document (or <<MARKER heredoc)
  update <mdp> <uri> <file>      re-register a modified document
  delete <mdp> <uri>             delete a document
  subscribe <lmr> <rule ...>     register a subscription rule
  unsubscribe <lmr> <id>         retract a subscription rule
  query <lmr> <query ...>        evaluate a query on the LMR cache
  cache <lmr>                    list cached resource URIs
  classes <mdp>                  list schema classes
  browse <mdp> <class>           list resources of a class
  pin <lmr> <uri>                cache one specific resource (OID rule)
  graph <mdp>                    dependency graph in Graphviz DOT
  table <mdp> <name>             render a filter table (AtomicRules, FilterRulesGT, ...)
  explain <mdp> <rule ...>       show how a rule would decompose
  save <mdp> <file>              export an MDP's logical state
  restore <mdp> <file>           replay exported state into a fresh MDP
  stats                          network statistics
  quit
";

#[cfg(test)]
mod tests {
    use super::*;

    fn run_script(script: &str) -> Vec<String> {
        let mut shell = Shell::default();
        let mut outputs = Vec::new();
        let mut lines = script
            .lines()
            .map(str::to_owned)
            .collect::<Vec<_>>()
            .into_iter();
        while let Some(line) = lines.next() {
            match shell.exec(&line, &mut lines) {
                Ok(Some(out)) => outputs.push(out),
                Ok(None) => break,
                Err(e) => panic!("script failed at '{line}': {e}"),
            }
        }
        outputs
    }

    fn with_schema_file(f: impl FnOnce(&str)) {
        let dir = std::env::temp_dir().join(format!("mdv-shell-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schema.mdv");
        std::fs::write(
            &path,
            "class ServerInformation {\n  memory: int\n  cpu: int\n}\n\
             class CycleProvider {\n  serverHost: str\n  serverPort: int\n  \
             serverInformation: strong ServerInformation\n}\n",
        )
        .unwrap();
        f(path.to_str().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_session_via_script() {
        with_schema_file(|schema_path| {
            let script = format!(
                "# a full session\n\
                 schema {schema_path}\n\
                 mdp m1\n\
                 lmr l1 m1\n\
                 subscribe l1 search CycleProvider c register c where c.serverInformation.memory > 64\n\
                 register m1 doc.rdf <<END\n\
                 <rdf:RDF>\n\
                 <CycleProvider rdf:ID=\"host\">\n\
                 <serverHost>pirates.uni-passau.de</serverHost>\n\
                 <serverPort>5874</serverPort>\n\
                 <serverInformation rdf:resource=\"#info\"/>\n\
                 </CycleProvider>\n\
                 <ServerInformation rdf:ID=\"info\"><memory>92</memory><cpu>600</cpu></ServerInformation>\n\
                 </rdf:RDF>\n\
                 END\n\
                 cache l1\n\
                 query l1 search CycleProvider c register c\n\
                 table m1 AtomicRules\n\
                 graph m1\n\
                 stats\n\
                 quit\n"
            );
            let outputs = run_script(&script);
            let all = outputs.join("");
            assert!(all.contains("schema loaded: 2 classes"));
            assert!(all.contains("registered 'doc.rdf' (2 resources)"));
            assert!(all.contains("2 cached resource(s)"));
            assert!(all.contains("doc.rdf#host"));
            assert!(all.contains("1 result(s)"));
            assert!(all.contains("AtomicRules"));
            assert!(all.contains("digraph dependency_graph"));
            assert!(all.contains("messages:"));
        });
    }

    #[test]
    fn update_and_delete_via_script() {
        with_schema_file(|schema_path| {
            let script = format!(
                "schema {schema_path}\n\
                 mdp m1\n\
                 lmr l1 m1\n\
                 subscribe l1 search ServerInformation s register s where s.memory > 64\n\
                 register m1 d.rdf <<X\n\
                 <rdf:RDF><ServerInformation rdf:ID=\"i\"><memory>92</memory><cpu>1</cpu></ServerInformation></rdf:RDF>\n\
                 X\n\
                 update m1 d.rdf <<X\n\
                 <rdf:RDF><ServerInformation rdf:ID=\"i\"><memory>32</memory><cpu>1</cpu></ServerInformation></rdf:RDF>\n\
                 X\n\
                 cache l1\n\
                 delete m1 d.rdf\n"
            );
            let outputs = run_script(&script);
            let all = outputs.join("");
            assert!(
                all.contains("0 cached resource(s)"),
                "update evicted the resource: {all}"
            );
            assert!(all.contains("deleted 'd.rdf'"));
        });
    }

    #[test]
    fn explain_save_restore_via_script() {
        with_schema_file(|schema_path| {
            let dir = std::path::Path::new(schema_path)
                .parent()
                .unwrap()
                .to_path_buf();
            let state_path = dir.join("m1.state");
            let script = format!(
                "schema {schema_path}\n\
                 mdp m1\n\
                 lmr l1 m1\n\
                 subscribe l1 search CycleProvider c register c where c.serverInformation.memory > 64\n\
                 register m1 d.rdf <<X\n\
                 <rdf:RDF><CycleProvider rdf:ID='h'><serverHost>a</serverHost>\
                 <serverPort>1</serverPort>\
                 <serverInformation rdf:resource='#i'/></CycleProvider>\
                 <ServerInformation rdf:ID='i'><memory>92</memory><cpu>1</cpu></ServerInformation></rdf:RDF>\n\
                 X\n\
                 explain m1 search CycleProvider c register c where c.serverInformation.memory > 64\n\
                 save m1 {state}\n\
                 mdp m2\n\
                 restore m2 {state}\n",
                state = state_path.display()
            );
            let outputs = run_script(&script);
            let all = outputs.join("");
            assert!(
                all.contains("atomic rules"),
                "explain output present: {all}"
            );
            assert!(all.contains("shared with an existing subscription"));
            assert!(all.contains("saved state of 'm1'"));
            assert!(all.contains("restored 'm2': 1 subscriptions, 1 documents"));
        });
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut shell = Shell::default();
        let mut empty = Vec::<String>::new().into_iter();
        // no schema yet
        assert!(shell.exec("mdp m1", &mut empty).is_err());
        assert!(shell.exec("bogus", &mut empty).is_err());
        assert!(shell.exec("subscribe", &mut empty).is_err());
        // comments and blanks are fine
        assert_eq!(shell.exec("# comment", &mut empty).unwrap().unwrap(), "");
        assert_eq!(shell.exec("", &mut empty).unwrap().unwrap(), "");
        // help works without a schema
        assert!(shell
            .exec("help", &mut empty)
            .unwrap()
            .unwrap()
            .contains("commands:"));
    }

    #[test]
    fn browse_pin_unsubscribe_via_script() {
        with_schema_file(|schema_path| {
            let script = format!(
                "schema {schema_path}\n\
                 mdp m1\n\
                 lmr l1 m1\n\
                 register m1 d.rdf <<X\n\
                 <rdf:RDF><CycleProvider rdf:ID='h'><serverHost>a</serverHost>\
                 <serverPort>1</serverPort>\
                 <serverInformation rdf:resource='#i'/></CycleProvider>\
                 <ServerInformation rdf:ID='i'><memory>92</memory><cpu>1</cpu></ServerInformation></rdf:RDF>\n\
                 X\n\
                 classes m1\n\
                 browse m1 CycleProvider\n\
                 pin l1 d.rdf#h\n\
                 cache l1\n\
                 unsubscribe l1 0\n\
                 cache l1\n"
            );
            let outputs = run_script(&script);
            let all = outputs.join("");
            assert!(all.contains("CycleProvider\nServerInformation"));
            assert!(all.contains("1 resource(s) of class CycleProvider"));
            assert!(all.contains("pinned 'd.rdf#h'"));
            assert!(
                all.contains("2 cached resource(s)"),
                "pin pulled host + companion: {all}"
            );
            assert!(all.contains("subscription 0 retracted"));
            assert!(
                all.contains("0 cached resource(s)"),
                "unsubscribe emptied the cache: {all}"
            );
        });
    }

    #[test]
    fn heredoc_must_terminate() {
        let mut shell = Shell::default();
        with_schema_file(|schema_path| {
            let mut lines = vec!["<rdf:RDF/>".to_owned()].into_iter();
            shell
                .exec(&format!("schema {schema_path}"), &mut lines)
                .unwrap();
            shell.exec("mdp m1", &mut lines).unwrap();
            let err = shell
                .exec("register m1 d.rdf <<END", &mut lines)
                .unwrap_err();
            assert!(err.to_string().contains("unterminated"));
        });
    }
}
