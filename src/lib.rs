//! # MDV — A Publish & Subscribe Architecture for Distributed Metadata Management
//!
//! A from-scratch Rust reproduction of the MDV system (Keidl, Kreutz,
//! Kemper, Kossmann; ICDE 2002): a 3-tier distributed metadata management
//! system whose core is a scalable publish & subscribe **filter algorithm**
//! implemented on standard relational technology.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`relstore`] | `mdv-relstore` | embedded relational engine (tables, indexes, joins, transactions) |
//! | [`rdf`] | `mdv-rdf` | RDF model, RDF-Schema with strong/weak references, RDF/XML subset |
//! | [`rulelang`] | `mdv-rulelang` | the subscription/query language front end |
//! | [`filter`] | `mdv-filter` | the filter algorithm (decomposition, dependency graph, rule groups, 3-pass updates) |
//! | [`system`] | `mdv-system` | MDPs, LMRs, clients, simulated network, garbage collector |
//! | [`workload`] | `mdv-workload` | paper benchmark workloads and the ObjectGlobe marketplace generator |
//!
//! ## Quickstart
//!
//! ```
//! use mdv::prelude::*;
//!
//! // 1. schema design (strong references travel with their referrers, §2.4)
//! let schema = RdfSchema::builder()
//!     .class("ServerInformation", |c| c.int("memory").int("cpu"))
//!     .class("CycleProvider", |c| c
//!         .str("serverHost").int("serverPort")
//!         .strong_ref("serverInformation", "ServerInformation"))
//!     .build().unwrap();
//!
//! // 2. a 3-tier deployment: one backbone MDP, one LMR near the client
//! let mut sys = MdvSystem::new(schema);
//! sys.add_mdp("mdp").unwrap();
//! sys.add_lmr("lmr", "mdp").unwrap();
//!
//! // 3. subscribe with the paper's Example 1 rule
//! sys.subscribe("lmr",
//!     "search CycleProvider c register c \
//!      where c.serverHost contains 'uni-passau.de' \
//!      and c.serverInformation.memory > 64").unwrap();
//!
//! // 4. register the paper's Figure 1 document at the backbone
//! let doc = parse_document("doc.rdf", r##"
//!     <rdf:RDF>
//!       <CycleProvider rdf:ID="host">
//!         <serverHost>pirates.uni-passau.de</serverHost>
//!         <serverPort>5874</serverPort>
//!         <serverInformation rdf:resource="#info"/>
//!       </CycleProvider>
//!       <ServerInformation rdf:ID="info">
//!         <memory>92</memory><cpu>600</cpu>
//!       </ServerInformation>
//!     </rdf:RDF>"##).unwrap();
//! sys.register_document("mdp", &doc).unwrap();
//!
//! // 5. the LMR answers queries from its cache, no backbone round-trip
//! let hits = sys.query("lmr",
//!     "search CycleProvider c register c \
//!      where c.serverInformation.memory > 64").unwrap();
//! assert_eq!(hits[0].uri().as_str(), "doc.rdf#host");
//! ```
//!
//! `DESIGN.md` §4 holds the workspace-wide module map; `README.md` has the
//! crate-by-crate architecture overview.

pub use mdv_filter as filter;
pub use mdv_rdf as rdf;
pub use mdv_relstore as relstore;
pub use mdv_rulelang as rulelang;
pub use mdv_system as system;
pub use mdv_workload as workload;

/// The most common imports for working with MDV.
pub mod prelude {
    pub use mdv_filter::{FilterConfig, FilterEngine, NaiveEngine, Publication, SubscriptionId};
    pub use mdv_rdf::{
        parse_document, write_document, Document, RdfSchema, RefKind, Resource, Term, UriRef,
    };
    pub use mdv_rulelang::{normalize, parse_rule, split_or, typecheck, Rule};
    pub use mdv_system::{Lmr, Mdp, MdvSystem, NetConfig};
}
